// A chunked bump allocator whose allocations never move: growing the
// buffer allocates a new chunk instead of reallocating, so pointers handed
// out earlier stay valid. Used for Silo's thread-local read copies and
// write buffer, which must remain stable for the duration of a
// transaction's Run() while more reads/writes append to them. Reset()
// keeps the chunks for reuse by the next transaction (Silo's write-buffer
// locality argument, Section 4.2.1 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace bohm {

class StableBuffer {
 public:
  explicit StableBuffer(size_t chunk_bytes = 1u << 16)
      : chunk_bytes_(chunk_bytes) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(StableBuffer);

  /// Returns an 8-aligned allocation of `bytes` that remains valid until
  /// Reset().
  void* Allocate(size_t bytes) {
    bytes = (bytes + 7) & ~size_t{7};
    if (BOHM_UNLIKELY(chunks_.empty() || used_ + bytes > chunks_[cur_].size)) {
      Advance(bytes);
    }
    void* p = chunks_[cur_].data.get() + used_;
    used_ += bytes;
    return p;
  }

  /// Invalidates all allocations but keeps the chunks.
  void Reset() {
    cur_ = 0;
    used_ = 0;
  }

  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  void Advance(size_t min_bytes) {
    for (size_t i = chunks_.empty() ? 0 : cur_ + 1; i < chunks_.size(); ++i) {
      if (chunks_[i].size >= min_bytes) {
        cur_ = i;
        used_ = 0;
        return;
      }
    }
    size_t sz = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunks_.push_back({std::make_unique<char[]>(sz), sz});
    cur_ = chunks_.size() - 1;
    used_ = 0;
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t cur_ = 0;
  size_t used_ = 0;
};

}  // namespace bohm
