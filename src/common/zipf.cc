#include "common/zipf.h"

#include <cmath>

namespace bohm {
namespace {

// zeta(n, theta) = sum_{i=1..n} 1 / i^theta. O(n) but computed once per
// generator; workload setup cost, not steady-state cost.
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  if (theta >= 1.0) theta = 0.9999;
  if (theta < 0.0) theta = 0.0;
  theta_ = theta;
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  // Gray et al. inverse-CDF approximation.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace bohm
