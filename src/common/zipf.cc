#include "common/zipf.h"

#include <bit>
#include <cmath>
#include <mutex>
#include <unordered_map>

namespace bohm {
namespace {

// zeta(n, theta) = sum_{i=1..n} 1 / i^theta.
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

// The O(n) zeta sum used to be recomputed by every generator; with the
// paper's 1M-record tables and one generator per client thread per bench
// point, that is seconds of setup per sweep. Memoize it on (n, theta) —
// theta is keyed by bit pattern, so only exact repeats hit, which is the
// case that matters (every thread uses the same workload parameters).
double CachedZetan(uint64_t n, double theta) {
  struct Key {
    uint64_t n;
    uint64_t theta_bits;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t z = k.n ^ (k.theta_bits * 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };
  static std::mutex mu;
  static std::unordered_map<Key, double, KeyHash> cache;
  const Key key{n, std::bit_cast<uint64_t>(theta)};
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Compute outside the lock: the sum is the expensive part, and two
  // threads racing to insert the same key is harmless (same value).
  const double z = Zeta(n, theta);
  std::lock_guard<std::mutex> lock(mu);
  return cache.emplace(key, z).first->second;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n == 0 ? 1 : n) {
  // The harmonic normalization diverges at theta = 1; clamp just below so
  // theta >= 1 behaves as "maximally skewed" instead of NaN (documented in
  // the header).
  if (theta >= 1.0) theta = 0.9999;
  if (theta < 0.0) theta = 0.0;
  theta_ = theta;
  zetan_ = CachedZetan(n_, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  if (n_ <= 2) {
    // n == 1: Next() always takes the uz < 1 branch. n == 2: the first
    // two CDF branches cover [0, zetan) entirely (zeta(2) == zetan), so
    // eta_ is never read. The general formula divides by
    // 1 - zeta2/zetan == 0 here; set 0 instead of storing inf/NaN.
    eta_ = 0.0;
    return;
  }
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (n_ == 1) return 0;
  // Gray et al. inverse-CDF approximation.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace bohm
