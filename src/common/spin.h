// Busy-wait primitives.
//
// The paper's prototype runs one pinned thread per physical core and can
// afford pure spinning. This reproduction must also run correctly on
// machines where threads outnumber cores (including the single-core CI
// environment), where a pure spin can starve the very thread it is waiting
// on. Every wait loop in the codebase therefore goes through SpinWait,
// which spins with a pause instruction for a short burst and then yields
// the processor. On an uncontended multi-core box the yield path is never
// taken, so the behaviour matches the paper's.
//
// The locks here are annotated capabilities (common/thread_annotations.h):
// under Clang, -Wthread-safety statically checks that fields declared
// BOHM_GUARDED_BY one of these locks are only touched while it is held.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/macros.h"
#include "common/thread_annotations.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace bohm {

/// Emit a CPU pause/yield hint appropriate for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Bounded-spin-then-yield helper. Usage:
///
///   SpinWait wait;
///   while (!condition()) wait.Pause();
class SpinWait {
 public:
  /// Number of pause iterations before falling back to yield.
  static constexpr uint32_t kSpinLimit = 128;

  void Pause() {
    if (count_ < kSpinLimit) {
      ++count_;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { count_ = 0; }

 private:
  uint32_t count_ = 0;
};

/// Minimal test-and-test-and-set spinlock with yielding back-off. Satisfies
/// the C++ Lockable requirements so it can be used with std::lock_guard —
/// but prefer SpinLockGuard below, which Clang's thread-safety analysis
/// understands (libstdc++'s std::lock_guard carries no annotations).
class BOHM_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(SpinLock);

  void lock() BOHM_ACQUIRE() {
    SpinWait wait;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // relaxed: pure read-side spin; the acquire exchange above is the
      // one that orders the critical section.
      while (locked_.load(std::memory_order_relaxed)) wait.Pause();
    }
  }

  bool try_lock() BOHM_TRY_ACQUIRE(true) {
    // relaxed: advisory peek only; the acquire exchange decides.
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() BOHM_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for SpinLock, annotated so the thread-safety analysis knows
/// the lock is held for the guard's scope.
class BOHM_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) BOHM_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinLockGuard() BOHM_RELEASE() { lock_.unlock(); }
  BOHM_DISALLOW_COPY_AND_ASSIGN(SpinLockGuard);

 private:
  SpinLock& lock_;
};

/// Reader-writer spinlock used by the 2PL lock table. Writers have
/// priority once waiting (they set the write bit and wait for readers to
/// drain), which prevents writer starvation on read-hot records.
class BOHM_CAPABILITY("mutex") RWSpinLock {
 public:
  RWSpinLock() = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(RWSpinLock);

  void LockShared() BOHM_ACQUIRE_SHARED() {
    SpinWait wait;
    for (;;) {
      // relaxed: optimistic peek; the CAS below provides the acquire.
      uint32_t cur = state_.load(std::memory_order_relaxed);
      if ((cur & kWriteBit) == 0 &&
          state_.compare_exchange_weak(cur, cur + kReader,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      wait.Pause();
    }
  }

  bool TryLockShared() BOHM_TRY_ACQUIRE_SHARED(true) {
    // relaxed: optimistic peek; the CAS provides the acquire on success.
    uint32_t cur = state_.load(std::memory_order_relaxed);
    return (cur & kWriteBit) == 0 &&
           state_.compare_exchange_strong(cur, cur + kReader,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockShared() BOHM_RELEASE_SHARED() {
    state_.fetch_sub(kReader, std::memory_order_release);
  }

  void LockExclusive() BOHM_ACQUIRE() {
    SpinWait wait;
    // Claim the write bit first so new readers back off.
    for (;;) {
      // relaxed: optimistic peek; the CAS below provides the acquire.
      uint32_t cur = state_.load(std::memory_order_relaxed);
      if ((cur & kWriteBit) == 0 &&
          state_.compare_exchange_weak(cur, cur | kWriteBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      wait.Pause();
    }
    // Wait for in-flight readers to drain.
    wait.Reset();
    while ((state_.load(std::memory_order_acquire) & ~kWriteBit) != 0) {
      wait.Pause();
    }
  }

  bool TryLockExclusive() BOHM_TRY_ACQUIRE(true) {
    uint32_t expected = 0;
    // relaxed: failure order — a failed CAS acquires nothing, so it needs
    // no ordering; only the successful acquire CAS enters the section.
    return state_.compare_exchange_strong(expected, kWriteBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockExclusive() BOHM_RELEASE() {
    state_.fetch_and(~kWriteBit, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kWriteBit = 1u;
  static constexpr uint32_t kReader = 2u;

  std::atomic<uint32_t> state_{0};
};

}  // namespace bohm
