// Busy-wait primitives.
//
// The paper's prototype runs one pinned thread per physical core and can
// afford pure spinning. This reproduction must also run correctly on
// machines where threads outnumber cores (including the single-core CI
// environment), where a pure spin can starve the very thread it is waiting
// on. Every wait loop in the codebase therefore goes through SpinWait,
// which spins with a pause instruction for a short burst and then yields
// the processor. On an uncontended multi-core box the yield path is never
// taken, so the behaviour matches the paper's.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/macros.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace bohm {

/// Emit a CPU pause/yield hint appropriate for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// Bounded-spin-then-yield helper. Usage:
///
///   SpinWait wait;
///   while (!condition()) wait.Pause();
class SpinWait {
 public:
  /// Number of pause iterations before falling back to yield.
  static constexpr uint32_t kSpinLimit = 128;

  void Pause() {
    if (count_ < kSpinLimit) {
      ++count_;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { count_ = 0; }

 private:
  uint32_t count_ = 0;
};

/// Minimal test-and-test-and-set spinlock with yielding back-off. Satisfies
/// the C++ Lockable requirements so it can be used with std::lock_guard.
class SpinLock {
 public:
  SpinLock() = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(SpinLock);

  void lock() {
    SpinWait wait;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) wait.Pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// Reader-writer spinlock used by the 2PL lock table. Writers have
/// priority once waiting (they set the write bit and wait for readers to
/// drain), which prevents writer starvation on read-hot records.
class RWSpinLock {
 public:
  RWSpinLock() = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(RWSpinLock);

  void LockShared() {
    SpinWait wait;
    for (;;) {
      uint32_t cur = state_.load(std::memory_order_relaxed);
      if ((cur & kWriteBit) == 0 &&
          state_.compare_exchange_weak(cur, cur + kReader,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      wait.Pause();
    }
  }

  bool TryLockShared() {
    uint32_t cur = state_.load(std::memory_order_relaxed);
    return (cur & kWriteBit) == 0 &&
           state_.compare_exchange_strong(cur, cur + kReader,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockShared() { state_.fetch_sub(kReader, std::memory_order_release); }

  void LockExclusive() {
    SpinWait wait;
    // Claim the write bit first so new readers back off.
    for (;;) {
      uint32_t cur = state_.load(std::memory_order_relaxed);
      if ((cur & kWriteBit) == 0 &&
          state_.compare_exchange_weak(cur, cur | kWriteBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      wait.Pause();
    }
    // Wait for in-flight readers to drain.
    wait.Reset();
    while ((state_.load(std::memory_order_acquire) & ~kWriteBit) != 0) {
      wait.Pause();
    }
  }

  bool TryLockExclusive() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriteBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockExclusive() {
    state_.fetch_and(~kWriteBit, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kWriteBit = 1u;
  static constexpr uint32_t kReader = 2u;

  std::atomic<uint32_t> state_{0};
};

}  // namespace bohm
