#include "common/status.h"

#include "common/macros.h"

namespace bohm {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "Ok";
    case Code::kAborted:
      return "Aborted";
    case Code::kNotFound:
      return "NotFound";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kInternal:
      return "Internal";
    case Code::kRejected:
      return "Rejected";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace bohm
