// Status / Result error-handling vocabulary, in the style of RocksDB and
// Arrow: no exceptions on any hot path, explicit codes, cheap OK.
#pragma once

#include <cassert>
#include <string>
#include <utility>

namespace bohm {

/// Error codes used throughout the library. Kept deliberately small; a
/// transaction-processing engine mostly needs to distinguish "committed",
/// "aborted by concurrency control (retryable)", and programmer errors.
enum class Code : unsigned char {
  kOk = 0,
  kAborted,             // concurrency-control abort; the txn may be retried
  kNotFound,            // record or table does not exist
  kInvalidArgument,     // caller bug: malformed read/write set etc.
  kFailedPrecondition,  // engine in wrong state (e.g. Submit after Stop)
  kResourceExhausted,   // fixed-capacity structure is full
  kInternal,            // invariant violation inside the engine
  kRejected,            // engine declined the request (shut down / degraded)
};

/// Returns a stable human-readable name for a code ("Ok", "Aborted", ...).
const char* CodeName(Code code);

/// A cheap, value-semantic status. OK carries no allocation; error statuses
/// may carry a message. Follows the RocksDB convention: functions that can
/// fail return Status (or Result<T>), never throw.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Rejected(std::string msg = "") {
    return Status(Code::kRejected, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsRejected() const { return code_ == Code::kRejected; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Result<T> is a Status plus a value on success; modelled after
/// arrow::Result. Accessing the value of a failed Result is a programmer
/// error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return value_;
  }
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  T ValueOr(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace bohm

/// Propagate a non-OK Status out of the current function.
#define BOHM_RETURN_NOT_OK(expr)           \
  do {                                     \
    ::bohm::Status _st = (expr);           \
    if (BOHM_UNLIKELY(!_st.ok())) return _st; \
  } while (0)
