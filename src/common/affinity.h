// Thread-to-core pinning. The paper pins every long-running thread 1:1 to
// a CPU core (Section 4). On machines with fewer cores than engine
// threads, pinning all threads to the same few cores would serialize the
// pipeline, so pinning auto-disables when it cannot be 1:1.
#pragma once

#include <cstdint>

namespace bohm {

/// Number of CPUs available to this process.
unsigned HardwareConcurrency();

/// Pins the calling thread to `cpu` (modulo available CPUs). Returns true
/// on success. No-op (returns false) on unsupported platforms.
bool PinCurrentThreadToCpu(unsigned cpu);

/// Policy helper: returns true when an engine that wants `threads` pinned
/// threads should actually pin them (i.e. there are at least that many
/// CPUs). All engines consult this so behaviour is uniform.
bool ShouldPin(unsigned threads);

}  // namespace bohm
