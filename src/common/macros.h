// Low-level portability and convenience macros shared across the codebase.
#pragma once

#include <cstddef>

// Size of a cache line on every x86-64 / aarch64 machine we care about.
// Used to pad hot per-thread state so that logically-private fields never
// share a line (the paper's design philosophy is to eliminate coherence
// traffic; false sharing would silently reintroduce it).
inline constexpr std::size_t kCacheLineSize = 64;

#define BOHM_DISALLOW_COPY_AND_ASSIGN(T) \
  T(const T&) = delete;                  \
  T& operator=(const T&) = delete

#if defined(__GNUC__) || defined(__clang__)
#define BOHM_LIKELY(x) (__builtin_expect(!!(x), 1))
#define BOHM_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define BOHM_LIKELY(x) (x)
#define BOHM_UNLIKELY(x) (x)
#endif
