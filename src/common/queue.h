// Bounded lock-free MPMC queue (Vyukov's algorithm). Used as the input
// queue between clients and the Bohm sequencer thread, and by the harness
// drivers. Capacity must be a power of two.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/spin.h"

namespace bohm {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "capacity must be a power of two");
    for (size_t i = 0; i < capacity; ++i) {
      // relaxed: single-threaded constructor; the queue is published to
      // other threads by whatever hands them the reference.
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(MpmcQueue);

  /// Non-blocking push; returns false when the queue is full.
  bool TryPush(T value) {
    Cell* cell;
    // relaxed: tail_ is only a claim ticket; the cell's sequence word
    // (acquire below / release on publish) carries all data ordering —
    // Vyukov's protocol.
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        // relaxed: CAS success only claims the ticket; the subsequent
        // sequence release-store publishes the value.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        // relaxed: re-read of the ticket counter; same reasoning as above.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; returns false when the queue is empty.
  bool TryPop(T* out) {
    Cell* cell;
    // relaxed: head_ is only a claim ticket (see TryPush).
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        // relaxed: CAS success only claims the ticket; the sequence
        // acquire above ordered the value read.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        // relaxed: re-read of the ticket counter.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Blocking push with yielding back-off.
  void Push(T value) {
    SpinWait wait;
    while (!TryPush(std::move(value))) wait.Pause();
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
};

}  // namespace bohm
