// Bounded lock-free queues.
//
//  * MpmcQueue — Vyukov's algorithm; the input queue between clients and
//    the Bohm sequencer thread, also used by the harness drivers.
//  * SpscQueue — single-producer/single-consumer ring with cache-line-
//    padded indices and cached peer indices; the per-stage handoff rings
//    of the streamed Bohm pipeline (sequencer -> each CC thread,
//    sequencer -> each execution thread).
//
// Capacities must be powers of two.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/spin.h"

namespace bohm {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "capacity must be a power of two");
    for (size_t i = 0; i < capacity; ++i) {
      // relaxed: single-threaded constructor; the queue is published to
      // other threads by whatever hands them the reference.
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(MpmcQueue);

  /// Non-blocking push; returns false when the queue is full.
  bool TryPush(T value) {
    Cell* cell;
    // relaxed: tail_ is only a claim ticket; the cell's sequence word
    // (acquire below / release on publish) carries all data ordering —
    // Vyukov's protocol.
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        // relaxed: CAS success only claims the ticket; the subsequent
        // sequence release-store publishes the value.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        // relaxed: re-read of the ticket counter; same reasoning as above.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop; returns false when the queue is empty.
  bool TryPop(T* out) {
    Cell* cell;
    // relaxed: head_ is only a claim ticket (see TryPush).
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      size_t seq = cell->sequence.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        // relaxed: CAS success only claims the ticket; the sequence
        // acquire above ordered the value read.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        // relaxed: re-read of the ticket counter.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Blocking push with yielding back-off.
  void Push(T value) {
    SpinWait wait;
    while (!TryPush(std::move(value))) wait.Pause();
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
};

/// Bounded wait-free single-producer/single-consumer ring.
///
/// The producer owns `tail_`, the consumer owns `head_`; each side keeps a
/// cached copy of the peer's index so the common case touches only its own
/// cache line plus the slot. The release store of the owned index is the
/// only publication: everything the producer wrote into the slot (and
/// everything it wrote anywhere else beforehand) is visible to a consumer
/// whose acquire load observes the advanced tail — which is exactly the
/// property the Bohm sequencer relies on to publish sealed batches
/// (docs/CONCURRENCY.md rule R5).
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1),
        slots_(std::make_unique<T[]>(capacity)) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "capacity must be a power of two");
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(SpscQueue);

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T value) {
    // relaxed: tail_ is written only by this (the producer) thread, so it
    // reads back its own last store; ordering rides the release below.
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;  // full
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    // relaxed: head_ is written only by this (the consumer) thread, so it
    // reads back its own last store; the tail acquire below orders the
    // slot read against the producer's release publication.
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // empty
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side fullness probe (exact from the producer thread). Lets
  /// a producer wait for space without constructing the value it would
  /// push — TryPush consumes its argument even on failure.
  bool Full() const {
    // relaxed: producer-owned index (see TryPush); the acquire on head_
    // pairs with the consumer's release advance.
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) >=
           capacity_;
  }

  /// Consumer-side emptiness probe (exact from the consumer thread).
  bool Empty() const {
    // relaxed: consumer-owned index (see TryPop).
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<T[]> slots_;
  /// Producer cache line: owned tail index + cached consumer head.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;
  /// Consumer cache line: owned head index + cached producer tail.
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;
};

}  // namespace bohm
