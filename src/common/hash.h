// Key hashing. A single strong 64-bit mixer is used everywhere a key must
// be mapped to a partition or bucket so that the Bohm CC partitioning and
// the hash-table bucketing see well-scattered bits even for dense integer
// key spaces (YCSB and SmallBank keys are 0..N-1).
#pragma once

#include <cstdint>

namespace bohm {

/// Stafford's Mix13 finalizer (the splitmix64 finalizer): full-avalanche,
/// invertible 64-bit mixing.
inline uint64_t HashKey(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Combines a table id and key into one hash (used by lock tables that
/// span all tables).
inline uint64_t HashTableKey(uint32_t table, uint64_t key) {
  return HashKey(key ^ (static_cast<uint64_t>(table) << 56 ^
                        static_cast<uint64_t>(table) * 0xc2b2ae3d27d4eb4full));
}

/// Round `v` up to the next power of two (returns 1 for 0).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return 1ull << (64 - __builtin_clzll(v - 1));
}

}  // namespace bohm
