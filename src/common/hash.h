// Key hashing. A single strong 64-bit mixer is used everywhere a key must
// be mapped to a partition or bucket so that the Bohm CC partitioning and
// the hash-table bucketing see well-scattered bits even for dense integer
// key spaces (YCSB and SmallBank keys are 0..N-1).
#pragma once

#include <cstdint>

namespace bohm {

/// Stafford's Mix13 finalizer (the splitmix64 finalizer): full-avalanche,
/// invertible 64-bit mixing.
inline uint64_t HashKey(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Bucket-index hash, independent of HashKey. Structures that split by
/// HashKey(key) % P and then bucket within the split must NOT reuse the
/// same hash for the bucket index: when P shares a factor with the
/// (power-of-two) bucket count, every key in split p satisfies
/// hash ≡ p (mod P), so `hash & mask` can only reach buckets/P of the
/// slots — with P=128 physical partitions that collapses a 2048-bucket
/// partition to 16 live chains ~128x the intended length. Same mixer
/// over a tweaked input gives a fully decorrelated second index.
inline uint64_t BucketHash(uint64_t key) {
  return HashKey(key ^ 0x9ae16a3b2f90404full);
}

/// Combines a table id and key into one hash (used by lock tables that
/// span all tables).
inline uint64_t HashTableKey(uint32_t table, uint64_t key) {
  return HashKey(key ^ (static_cast<uint64_t>(table) << 56 ^
                        static_cast<uint64_t>(table) * 0xc2b2ae3d27d4eb4full));
}

/// Round `v` up to the next power of two (returns 1 for 0).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return 1ull << (64 - __builtin_clzll(v - 1));
}

}  // namespace bohm
