// Fast per-thread pseudo-random number generation for workload drivers.
// xoshiro256** — small state, excellent statistical quality, and much
// cheaper than std::mt19937_64, which matters when the generator sits on
// the critical path of a transaction-issuing loop.
#pragma once

#include <cstdint>

namespace bohm {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that any 64-bit seed (including 0)
  /// produces a well-distributed state.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift reduction (no modulo on the hot path).
  uint64_t Uniform(uint64_t bound) {
    __extension__ typedef unsigned __int128 uint128;
    return static_cast<uint64_t>((static_cast<uint128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace bohm
