#include "common/env.h"

#include <cstdlib>
#include <sstream>

namespace bohm {

int64_t EnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  return (end == v) ? def : static_cast<int64_t>(parsed);
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end == v) ? def : parsed;
}

std::vector<int> EnvIntList(const char* name, std::vector<int> def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  std::vector<int> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    long parsed = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str()) return def;
    out.push_back(static_cast<int>(parsed));
  }
  return out.empty() ? def : out;
}

std::string EnvStr(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::string(v);
}

}  // namespace bohm
