// Execution statistics collected by every engine: commits, concurrency-
// control aborts, retries. Padded per-thread counters folded on demand, so
// stats collection itself never introduces the contended shared writes the
// paper is about eliminating.
//
// Counters are single-writer (each slice belongs to one thread) but read
// concurrently by monitors (WaitForIdle, benchmark snapshots), so they are
// relaxed atomics updated with plain load+store — no lock-prefixed RMW on
// the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/macros.h"

namespace bohm {

/// Monotonic clock reading in nanoseconds. The submit→commit latency
/// stamps use this single definition so both ends of the measurement are
/// taken on the same clock.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Single-writer counter. The release/acquire pair gives monitors that
/// observe a count a happens-before edge to everything the counting
/// thread did first (e.g. WaitForIdle observing the final commit implies
/// the commit's effects are visible) — at zero cost on x86.
class RelaxedCounter {
 public:
  void Inc(uint64_t delta = 1) {
    // relaxed: single-writer counter — this thread is the only one that
    // stores, so its own last value needs no ordering; the release store
    // publishes it to monitors.
    v_.store(v_.load(std::memory_order_relaxed) + delta,
             std::memory_order_release);
  }
  uint64_t Get() const { return v_.load(std::memory_order_acquire); }
  void Reset() { v_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Per-thread slice of the engine counters.
struct alignas(kCacheLineSize) ThreadStats {
  RelaxedCounter commits;
  RelaxedCounter cc_aborts;     // aborts induced by concurrency control
  RelaxedCounter logic_aborts;  // aborts requested by transaction logic
  RelaxedCounter retries;       // re-executions after a cc abort
  RelaxedCounter reads;
  RelaxedCounter writes;
  /// Submit→commit-ack latency in microseconds, one sample per commit.
  /// Recorded by engines whose commit point is off the submitting thread
  /// (Bohm's execution stage); executor engines leave it empty and the
  /// driver measures on-thread latency instead.
  AtomicHistogram latency_us;
};

/// Aggregated view (plain values; safe to copy around — note the latency
/// histogram makes this a few KB, so avoid copying in tight loops).
struct StatsSnapshot {
  uint64_t commits = 0;
  uint64_t cc_aborts = 0;
  uint64_t logic_aborts = 0;
  uint64_t retries = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Merged per-thread commit-latency histograms. Grows monotonically
  /// with the counters, so a measurement window is Histogram::Delta of
  /// two snapshots; at quiescent snapshot points latency_us.count() ==
  /// commits exactly (one sample is recorded per commit, before the
  /// commit counter increment).
  Histogram latency_us;
  /// Per-stage stall attribution for pipelined engines (Bohm), in
  /// nanoseconds of wall-clock wait, summed over the stage's threads.
  /// Monotone like the counters, so a window is the snapshot difference.
  /// Zero for executor engines (they have no pipeline to stall).
  uint64_t seq_stall_ns = 0;   ///< sequencer waiting for slot reuse
  uint64_t cc_stall_ns = 0;    ///< CC threads waiting for sealed batches
  uint64_t exec_stall_ns = 0;  ///< exec threads waiting for feed/CC watermark
  /// Durable-log accounting (zero when durability is off). Monotone, like
  /// the stall counters, so a measurement window is the snapshot delta.
  uint64_t log_stall_ns = 0;  ///< pipeline time blocked on the log
                              ///< (sequencer handoff + durable-ack waits)
  uint64_t log_bytes = 0;     ///< bytes appended to the log
  uint64_t log_records = 0;   ///< batch records appended
  uint64_t log_fsyncs = 0;    ///< fsync calls issued by the log writer
  /// Adaptive CC repartitioning (zero for non-Bohm engines and with the
  /// feature off). Migrations are monotone like the counters; the
  /// imbalance is a gauge — the last folded max/mean CC-thread load
  /// ratio x1000 (1000 = perfectly balanced), NOT windowable by delta.
  uint64_t cc_migrations = 0;
  uint64_t cc_imbalance_x1000 = 1000;

  double AbortRate() const {
    uint64_t attempts = commits + cc_aborts;
    return attempts == 0 ? 0.0
                         : static_cast<double>(cc_aborts) /
                               static_cast<double>(attempts);
  }
  std::string ToString() const;
};

/// Fixed-size pool of per-thread stats slices.
class StatsRegistry {
 public:
  explicit StatsRegistry(uint32_t threads)
      : threads_(threads), slices_(std::make_unique<ThreadStats[]>(threads)) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(StatsRegistry);

  ThreadStats& Slice(uint32_t thread) { return slices_[thread]; }
  uint32_t threads() const { return threads_; }

  StatsSnapshot Fold() const;
  /// Sum of commits + logic_aborts only. Cheap enough for poll loops
  /// (WaitForIdle); Fold() additionally snapshots the latency histograms.
  uint64_t FoldCompleted() const;
  void Reset();

 private:
  uint32_t threads_;
  std::unique_ptr<ThreadStats[]> slices_;
};

}  // namespace bohm
