// Bump-pointer arena allocation.
//
// Both the Bohm pipeline (versions, transaction wrappers) and the
// Hekaton/SI engines (versions, transaction objects) allocate small
// objects at very high rates on thread-private paths. A per-thread arena
// turns each allocation into a pointer bump and makes deallocation a bulk
// operation, exactly the allocation discipline main-memory engines use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace bohm {

/// A growable bump allocator. NOT thread-safe: each thread owns its own
/// arena. Memory is released only on Reset()/destruction, which matches
/// the engines' batch-oriented lifetimes.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1u << 20;  // 1 MiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(Arena);

  /// Allocates `bytes` with at least `align` alignment. Never fails except
  /// by std::bad_alloc from the underlying allocator.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t cur = reinterpret_cast<size_t>(ptr_);
    size_t aligned = (cur + align - 1) & ~(align - 1);
    size_t needed = (aligned - cur) + bytes;
    if (BOHM_UNLIKELY(needed > remaining_)) {
      NewBlock(bytes + align);
      cur = reinterpret_cast<size_t>(ptr_);
      aligned = (cur + align - 1) & ~(align - 1);
      needed = (aligned - cur) + bytes;
    }
    ptr_ += needed;
    remaining_ -= needed;
    allocated_bytes_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Allocates and default-constructs a T. T must be trivially
  /// destructible (the arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Drops every allocation but keeps the first block for reuse.
  void Reset() {
    if (blocks_.size() > 1) blocks_.resize(1);
    if (!blocks_.empty()) {
      ptr_ = blocks_[0].get();
      remaining_ = block_bytes_;
    } else {
      ptr_ = nullptr;
      remaining_ = 0;
    }
    allocated_bytes_ = 0;
  }

  /// Total bytes handed out since construction/Reset (diagnostics).
  size_t allocated_bytes() const { return allocated_bytes_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  void NewBlock(size_t min_bytes) {
    size_t sz = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(std::make_unique<char[]>(sz));
    ptr_ = blocks_.back().get();
    remaining_ = sz;
  }

  size_t block_bytes_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t allocated_bytes_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace bohm
