// Reusable thread barrier used by the concurrency-control layer to
// synchronize once per *batch* of transactions (Section 3.2.4 of the
// paper), never per transaction.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/macros.h"
#include "common/spin.h"

namespace bohm {

/// A sense-reversing cyclic barrier for a fixed set of participants. All
/// waits yield under oversubscription (see spin.h). The last thread to
/// arrive returns true, which lets exactly one participant perform a
/// per-batch action (e.g. publishing the batch to the execution layer).
class CyclicBarrier {
 public:
  explicit CyclicBarrier(uint32_t participants)
      : participants_(participants), remaining_(participants) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(CyclicBarrier);

  /// Blocks until all participants have arrived. Returns true on exactly
  /// one participant per generation (the last arriver).
  bool ArriveAndWait() {
    // relaxed: sense_ only flips inside this generation's release store
    // below; every participant read its value before arriving (program
    // order), so no cross-thread ordering is needed for the read.
    const bool sense = sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // relaxed: only the last arriver writes, and waiters cannot pass
      // the barrier (and re-enter) until the sense release below — which
      // also publishes this reset.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
      return true;
    }
    SpinWait wait;
    while (sense_.load(std::memory_order_acquire) == sense) wait.Pause();
    return false;
  }

  uint32_t participants() const { return participants_; }

 private:
  const uint32_t participants_;
  alignas(kCacheLineSize) std::atomic<uint32_t> remaining_;
  alignas(kCacheLineSize) std::atomic<bool> sense_{false};
};

}  // namespace bohm
