// Inter-thread progress primitives for the batch pipeline.
//
//  * WatermarkSet — per-thread epoch watermarks with a min fold. The
//    streamed Bohm pipeline replaces its one-barrier-per-batch CC handoff
//    (Section 3.2.4 of the paper) with these: each CC thread advances its
//    own watermark as it finishes its partition slice of a batch, and the
//    execution stage starts batch b as soon as min(watermarks) >= b — no
//    thread ever parks at a barrier on the hot path.
//  * CyclicBarrier — the classic sense-reversing barrier, kept as a
//    library primitive for stop-the-world coordination off the hot path.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/spin.h"

namespace bohm {

/// Per-thread monotone epoch watermarks, folded with a min.
///
/// Each slot is written by exactly one owner thread (release) and sits on
/// its own cache line; Min() acquire-folds all slots, so an observer that
/// sees Min() >= b has a happens-before edge to everything every owner
/// thread did before advancing past b. That single property carries the
/// whole CC->execution handoff of the streamed pipeline
/// (docs/CONCURRENCY.md rule R5).
class WatermarkSet {
 public:
  explicit WatermarkSet(uint32_t threads, int64_t initial = -1)
      : threads_(threads), slots_(std::make_unique<Slot[]>(threads)) {
    for (uint32_t i = 0; i < threads; ++i) {
      // relaxed: single-threaded constructor; the set is published to
      // other threads by whatever hands them the reference.
      slots_[i].v.store(initial, std::memory_order_relaxed);
    }
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(WatermarkSet);

  /// Advances thread `tid`'s watermark to `v` (owner thread only).
  /// Watermarks are monotone: regressions are a caller bug.
  void Advance(uint32_t tid, int64_t v) {
    // relaxed: slot tid is single-writer (this owner thread), so the
    // assert reads back its own last store; publication is the release
    // below.
    assert(v >= slots_[tid].v.load(std::memory_order_relaxed) &&
           "watermark regression");
    slots_[tid].v.store(v, std::memory_order_release);
  }

  /// One thread's current watermark.
  int64_t Get(uint32_t tid) const {
    return slots_[tid].v.load(std::memory_order_acquire);
  }

  /// The set-wide low watermark: every thread has advanced to at least
  /// the returned value.
  int64_t Min() const {
    int64_t min = INT64_MAX;
    for (uint32_t i = 0; i < threads_; ++i) {
      const int64_t v = slots_[i].v.load(std::memory_order_acquire);
      if (v < min) min = v;
    }
    return min;
  }

  uint32_t threads() const { return threads_; }

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<int64_t> v;
  };

  const uint32_t threads_;
  std::unique_ptr<Slot[]> slots_;
};

/// A sense-reversing cyclic barrier for a fixed set of participants. All
/// waits yield under oversubscription (see spin.h). The last thread to
/// arrive returns true, which lets exactly one participant perform a
/// per-batch action (e.g. publishing the batch to the execution layer).
class CyclicBarrier {
 public:
  explicit CyclicBarrier(uint32_t participants)
      : participants_(participants), remaining_(participants) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(CyclicBarrier);

  /// Blocks until all participants have arrived. Returns true on exactly
  /// one participant per generation (the last arriver).
  bool ArriveAndWait() {
    // relaxed: sense_ only flips inside this generation's release store
    // below; every participant read its value before arriving (program
    // order), so no cross-thread ordering is needed for the read.
    const bool sense = sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // relaxed: only the last arriver writes, and waiters cannot pass
      // the barrier (and re-enter) until the sense release below — which
      // also publishes this reset.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
      return true;
    }
    SpinWait wait;
    while (sense_.load(std::memory_order_acquire) == sense) wait.Pause();
    return false;
  }

  uint32_t participants() const { return participants_; }

 private:
  const uint32_t participants_;
  alignas(kCacheLineSize) std::atomic<uint32_t> remaining_;
  alignas(kCacheLineSize) std::atomic<bool> sense_{false};
};

}  // namespace bohm
