// Zipfian key-distribution generator following Gray et al., "Quickly
// generating billion-record synthetic databases" (SIGMOD 1994) — the same
// citation the paper uses for its YCSB contention knob ([16], Section
// 4.2.1). theta = 0 degenerates to a uniform distribution; theta = 0.9 is
// the paper's "high contention" setting.
#pragma once

#include <cstdint>

#include "common/rand.h"

namespace bohm {

class ZipfGenerator {
 public:
  /// Items are drawn from [0, n); n == 0 is treated as 1. theta must be in
  /// [0, 1); values >= 1 are clamped to 0.9999 (the harmonic normalization
  /// diverges at 1), so theta = 1.2 behaves as "maximally skewed", not NaN.
  /// The small-n edges are exact: n == 1 always yields 0, and n == 2 never
  /// touches the eta interpolation term (whose general formula would
  /// divide by zero there). The O(n) zeta(n, theta) normalizer is memoized
  /// process-wide, so constructing many generators with the same (n,
  /// theta) — one per bench thread — pays the sum once.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws the next item rank. Rank 0 is the most popular item. Callers
  /// that want popular keys scattered across the key space should apply a
  /// hash on top (see ScrambledZipf below).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// Zipfian draw whose hot items are scattered uniformly over the key space
/// by a Fibonacci-hash scramble, matching YCSB's "scrambled zipfian"
/// behaviour so that hot keys do not cluster in one index/partition region.
class ScrambledZipf {
 public:
  ScrambledZipf(uint64_t n, double theta) : inner_(n, theta), n_(n) {}

  uint64_t Next(Rng& rng) {
    uint64_t rank = inner_.Next(rng);
    // Full-avalanche mix (rank 0 must not map to key 0).
    uint64_t z = rank + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return (z ^ (z >> 31)) % n_;
  }

 private:
  ZipfGenerator inner_;
  uint64_t n_;
};

}  // namespace bohm
