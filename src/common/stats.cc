#include "common/stats.h"

#include <sstream>

namespace bohm {

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "commits=" << commits << " cc_aborts=" << cc_aborts
     << " logic_aborts=" << logic_aborts << " retries=" << retries
     << " reads=" << reads << " writes=" << writes;
  if (seq_stall_ns != 0 || cc_stall_ns != 0 || exec_stall_ns != 0) {
    os << " seq_stall_us=" << seq_stall_ns / 1000
       << " cc_stall_us=" << cc_stall_ns / 1000
       << " exec_stall_us=" << exec_stall_ns / 1000;
  }
  return os.str();
}

// Thread-safety: safe to call concurrently with running workers — each
// slice is single-writer (its own thread), and RelaxedCounter::Get /
// Histogram::MergeInto take monotone acquire snapshots, so Fold returns a
// consistent-enough point-in-time view without stopping anyone.
StatsSnapshot StatsRegistry::Fold() const {
  StatsSnapshot out;
  for (uint32_t i = 0; i < threads_; ++i) {
    const ThreadStats& s = slices_[i];
    out.commits += s.commits.Get();
    out.cc_aborts += s.cc_aborts.Get();
    out.logic_aborts += s.logic_aborts.Get();
    out.retries += s.retries.Get();
    out.reads += s.reads.Get();
    out.writes += s.writes.Get();
    s.latency_us.MergeInto(&out.latency_us);
  }
  return out;
}

uint64_t StatsRegistry::FoldCompleted() const {
  uint64_t out = 0;
  for (uint32_t i = 0; i < threads_; ++i) {
    out += slices_[i].commits.Get() + slices_[i].logic_aborts.Get();
  }
  return out;
}

void StatsRegistry::Reset() {
  for (uint32_t i = 0; i < threads_; ++i) {
    ThreadStats& s = slices_[i];
    s.commits.Reset();
    s.cc_aborts.Reset();
    s.logic_aborts.Reset();
    s.retries.Reset();
    s.reads.Reset();
    s.writes.Reset();
    s.latency_us.Reset();
  }
}

}  // namespace bohm
