// Log-bucketed latency histogram (HdrHistogram-style, power-of-two
// buckets with linear sub-buckets). Fixed memory, constant-time record,
// approximate percentiles with bounded relative error — the standard
// instrument for OLTP latency profiles. Not thread-safe: each worker owns
// one and they are merged after the run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bohm {

class Histogram {
 public:
  static constexpr uint32_t kSubBuckets = 16;  // per power-of-two range
  static constexpr uint32_t kRanges = 40;      // up to ~2^40 units

  void Record(uint64_t value) {
    ++count_;
    total_ += value;
    if (value > max_) max_ = value;
    buckets_[BucketOf(value)] += 1;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) /
                             static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1] (upper bound of the containing
  /// bucket). Returns 0 for an empty histogram.
  uint64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) {
        uint64_t ub = BucketUpperBound(i);
        return ub > max_ ? max_ : ub;  // never report beyond observed max
      }
    }
    return max_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    total_ = 0;
    max_ = 0;
  }

 private:
  static std::size_t BucketOf(uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    // Range r covers [kSubBuckets << (r-1), kSubBuckets << r).
    uint32_t msb = 63u - static_cast<uint32_t>(__builtin_clzll(value));
    uint32_t range = msb - 3;  // log2(kSubBuckets) == 4
    uint32_t sub =
        static_cast<uint32_t>(value >> (range - 1)) & (kSubBuckets - 1);
    std::size_t idx = static_cast<std::size_t>(range) * kSubBuckets + sub;
    constexpr std::size_t kMax = kSubBuckets * kRanges - 1;
    return idx > kMax ? kMax : idx;
  }

  static uint64_t BucketUpperBound(std::size_t idx) {
    if (idx < kSubBuckets) return static_cast<uint64_t>(idx);
    uint32_t range = static_cast<uint32_t>(idx / kSubBuckets);
    uint32_t sub = static_cast<uint32_t>(idx % kSubBuckets);
    // Inverse of BucketOf: value ≈ (kSubBuckets + sub) << (range - 1).
    return (static_cast<uint64_t>(kSubBuckets + sub) << (range - 1)) +
           ((1ull << (range - 1)) - 1);
  }

  std::array<uint64_t, kSubBuckets * kRanges> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ = 0;
  uint64_t max_ = 0;
};

}  // namespace bohm
