// Log-bucketed latency histogram (HdrHistogram-style, power-of-two
// buckets with linear sub-buckets). Fixed memory, constant-time record,
// approximate percentiles with bounded relative error — the standard
// instrument for OLTP latency profiles.
//
// Two variants share the bucket geometry:
//  * Histogram — not thread-safe; each worker owns one and they are
//    merged after the run (the executor drivers' on-thread latency).
//  * AtomicHistogram — single-writer, concurrently foldable; lives in the
//    per-thread StatsRegistry slices so the Bohm execution threads can
//    record submit→commit latency while monitors snapshot mid-run.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace bohm {

class AtomicHistogram;

class Histogram {
 public:
  static constexpr uint32_t kSubBuckets = 16;  // per power-of-two range
  static constexpr uint32_t kRanges = 40;      // up to ~2^40 units

  void Record(uint64_t value) {
    ++count_;
    total_ += value;
    if (value > max_) max_ = value;
    buckets_[BucketOf(value)] += 1;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) /
                             static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1] (upper bound of the containing
  /// bucket). Returns 0 for an empty histogram.
  uint64_t Percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) {
        uint64_t ub = BucketUpperBound(i);
        return ub > max_ ? max_ : ub;  // never report beyond observed max
      }
    }
    return max_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    total_ = 0;
    max_ = 0;
  }

  /// Bucket-wise difference `later - earlier`, for windowed measurements
  /// over monotonically growing histograms: `earlier` must be a snapshot
  /// of the same histogram taken before `later` (every bucket count and
  /// the total are then <= their `later` counterparts; values that do not
  /// satisfy this are clamped to zero rather than underflowing). The max
  /// is `later`'s — the per-bucket counts cannot recover a windowed max,
  /// so it is an upper bound for the window.
  static Histogram Delta(const Histogram& later, const Histogram& earlier) {
    Histogram out;
    out.count_ = Sub(later.count_, earlier.count_);
    out.total_ = Sub(later.total_, earlier.total_);
    out.max_ = out.count_ == 0 ? 0 : later.max_;
    for (std::size_t i = 0; i < out.buckets_.size(); ++i) {
      out.buckets_[i] = Sub(later.buckets_[i], earlier.buckets_[i]);
    }
    return out;
  }

 private:
  friend class AtomicHistogram;

  static uint64_t Sub(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }

  static std::size_t BucketOf(uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    // Range r covers [kSubBuckets << (r-1), kSubBuckets << r).
    uint32_t msb = 63u - static_cast<uint32_t>(__builtin_clzll(value));
    uint32_t range = msb - 3;  // log2(kSubBuckets) == 4
    uint32_t sub =
        static_cast<uint32_t>(value >> (range - 1)) & (kSubBuckets - 1);
    std::size_t idx = static_cast<std::size_t>(range) * kSubBuckets + sub;
    constexpr std::size_t kMax = kSubBuckets * kRanges - 1;
    return idx > kMax ? kMax : idx;
  }

  static uint64_t BucketUpperBound(std::size_t idx) {
    if (idx < kSubBuckets) return static_cast<uint64_t>(idx);
    uint32_t range = static_cast<uint32_t>(idx / kSubBuckets);
    uint32_t sub = static_cast<uint32_t>(idx % kSubBuckets);
    // Inverse of BucketOf: value ≈ (kSubBuckets + sub) << (range - 1).
    return (static_cast<uint64_t>(kSubBuckets + sub) << (range - 1)) +
           ((1ull << (range - 1)) - 1);
  }

  std::array<uint64_t, kSubBuckets * kRanges> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ = 0;
  uint64_t max_ = 0;
};

/// Histogram with the same bucket geometry whose cells are single-writer
/// relaxed atomics (the RelaxedCounter pattern: plain load+store, no
/// lock-prefixed RMW on the hot path). Exactly one thread may Record();
/// any number of monitors may MergeInto() concurrently. A concurrent fold
/// may observe a sample's bucket before its count (Record publishes the
/// count last, folds read it first), never the reverse, so percentile
/// targets derived from the folded count always have backing buckets. At
/// a quiescent point (e.g. after WaitForIdle) a fold is exact.
class AtomicHistogram {
 public:
  void Record(uint64_t value) {
    // relaxed: single-writer cells — only the owning thread stores, so it
    // always sees its own latest values; the count_ release below is the
    // sole publication point (folds acquire count_ first).
    std::atomic<uint64_t>& b = buckets_[Histogram::BucketOf(value)];
    b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    // relaxed: same single-writer reasoning as the bucket cell above.
    total_.store(total_.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
    // relaxed: same single-writer reasoning as the bucket cell above.
    if (value > max_.load(std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
    // relaxed: the load side is single-writer; the release store is what
    // publishes this sample (bucket before count, never the reverse).
    count_.store(count_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
  }

  uint64_t count() const { return count_.load(std::memory_order_acquire); }

  /// Merges a snapshot of this histogram into `out`.
  void MergeInto(Histogram* out) const {
    out->count_ += count_.load(std::memory_order_acquire);
    // relaxed: the count_ acquire above already ordered every sample the
    // fold is entitled to see; later writer stores may race in but only
    // ever add samples (monotone), which Delta() tolerates.
    out->total_ += total_.load(std::memory_order_relaxed);
    // relaxed: same monotone-snapshot reasoning as total_ above.
    uint64_t m = max_.load(std::memory_order_relaxed);
    if (m > out->max_) out->max_ = m;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      // relaxed: same monotone-snapshot reasoning as total_ above.
      out->buckets_[i] += buckets_[i].load(std::memory_order_relaxed);
    }
  }

  /// Writer-side (or quiescent) reset only, like RelaxedCounter::Reset.
  void Reset() {
    // relaxed: quiescent-only operation by contract (no concurrent
    // Record/MergeInto); the final release store below publishes the
    // whole reset to whoever observes the histogram next.
    count_.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_release);
  }

 private:
  std::array<std::atomic<uint64_t>, Histogram::kSubBuckets * Histogram::kRanges>
      buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace bohm
