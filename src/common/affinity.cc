#include "common/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bohm {

unsigned HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool PinCurrentThreadToCpu(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % HardwareConcurrency(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool ShouldPin(unsigned threads) { return threads <= HardwareConcurrency(); }

}  // namespace bohm
