// Word-wise atomic memory copies for seqlock-protected payloads.
//
// A seqlock (Silo's TID-word protocol, src/occ/silo_engine.cc) lets a
// reader copy a payload that a concurrent committer may be overwriting;
// the version-word recheck discards torn copies. Implementing that copy
// with plain memcpy is how production Silo does it, but it is a data race
// in the C++ memory model — the seed tree carried two tsan.supp entries
// for it. These helpers do the same copy as individual relaxed atomic
// word accesses: byte-identical code on x86 (relaxed atomic loads/stores
// compile to plain MOVs), zero suppressions, and TSan checks the rest of
// the engine at full strength.
//
// Torn *copies* are still possible (each word is atomic, the whole
// payload is not) — that is inherent to seqlocks and exactly what the
// version-word recheck is for. Both pointers must be 8-byte aligned
// (StableBuffer allocations and SVSlot payloads are).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bohm {

namespace detail {
inline bool WordAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & (sizeof(uint64_t) - 1)) == 0;
}
}  // namespace detail

/// Copies `bytes` from shared memory `src` into private memory `dst`
/// using relaxed atomic loads. The caller's seqlock protocol must order
/// the copy (acquire the version word before, fence + recheck after).
inline void AtomicWordCopyFrom(void* dst, const void* src, size_t bytes) {
  assert(detail::WordAligned(src) && detail::WordAligned(dst));
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  const size_t words = bytes / sizeof(uint64_t);
  const auto* sw = reinterpret_cast<const uint64_t*>(src);
  for (size_t i = 0; i < words; ++i) {
    // relaxed: seqlock read side — the version-word acquire before the
    // copy and the fence + recheck after it order the words; a torn copy
    // is detected and retried by the caller.
    uint64_t w = __atomic_load_n(sw + i, __ATOMIC_RELAXED);
    std::memcpy(d + i * sizeof(uint64_t), &w, sizeof(w));
  }
  for (size_t i = words * sizeof(uint64_t); i < bytes; ++i) {
    // relaxed: tail bytes of the seqlock read side, same reasoning.
    d[i] = __atomic_load_n(s + i, __ATOMIC_RELAXED);
  }
}

/// Copies `bytes` from private memory `src` into shared memory `dst`
/// using relaxed atomic stores. The caller's seqlock protocol must order
/// the copy (hold the lock bit during, release the version word after).
inline void AtomicWordCopyTo(void* dst, const void* src, size_t bytes) {
  assert(detail::WordAligned(src) && detail::WordAligned(dst));
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  const size_t words = bytes / sizeof(uint64_t);
  auto* dw = reinterpret_cast<uint64_t*>(dst);
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, s + i * sizeof(uint64_t), sizeof(w));
    // relaxed: seqlock write side — the lock bit held by the committer
    // excludes other writers, and the version-word release after the
    // copy publishes it to readers.
    __atomic_store_n(dw + i, w, __ATOMIC_RELAXED);
  }
  for (size_t i = words * sizeof(uint64_t); i < bytes; ++i) {
    // relaxed: tail bytes of the seqlock write side, same reasoning.
    __atomic_store_n(d + i, s[i], __ATOMIC_RELAXED);
  }
}

}  // namespace bohm
