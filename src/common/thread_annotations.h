// Clang thread-safety-analysis annotations (-Wthread-safety).
//
// These macros attach static lock-discipline contracts to types, members,
// and functions: which lock guards a field, which locks a function
// acquires/releases, which must already be held. Under Clang the build
// enforces them (`-Werror=thread-safety-analysis` is enabled by the build
// whenever the compiler is Clang, see CMakeLists.txt); under GCC and other
// compilers they expand to nothing, so the annotations are documentation
// there and a hard error in the Clang CI lane.
//
// The annotated capability types live in common/spin.h (SpinLock,
// RWSpinLock, SpinLockGuard). tests/annotation_compile_test.cc holds
// deliberately-racy snippets that the build asserts are *rejected* when
// the analysis is active, so the macros themselves cannot silently rot
// into no-ops. House rules for when to annotate (and for the dynamic
// checkers that cover the rest) are in docs/CONCURRENCY.md.
#pragma once

#if defined(__clang__) && !defined(BOHM_SWIG)
#define BOHM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BOHM_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define BOHM_CAPABILITY(x) BOHM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define BOHM_SCOPED_CAPABILITY BOHM_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define BOHM_GUARDED_BY(x) BOHM_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of a pointer member is protected.
#define BOHM_PT_GUARDED_BY(x) BOHM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function acquires the capability exclusively (and did not hold it).
#define BOHM_ACQUIRE(...) \
  BOHM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared (reader side).
#define BOHM_ACQUIRE_SHARED(...) \
  BOHM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the (exclusively held) capability.
#define BOHM_RELEASE(...) \
  BOHM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function releases the shared-held capability.
#define BOHM_RELEASE_SHARED(...) \
  BOHM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires exclusively iff it returns `ret`.
#define BOHM_TRY_ACQUIRE(ret, ...) \
  BOHM_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// The function acquires shared iff it returns `ret`.
#define BOHM_TRY_ACQUIRE_SHARED(ret, ...) \
  BOHM_THREAD_ANNOTATION(try_acquire_shared_capability(ret, __VA_ARGS__))

/// The caller must hold the capability exclusively.
#define BOHM_REQUIRES(...) \
  BOHM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The caller must hold the capability at least shared.
#define BOHM_REQUIRES_SHARED(...) \
  BOHM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention).
#define BOHM_EXCLUDES(...) BOHM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define BOHM_RETURN_CAPABILITY(x) BOHM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed statically.
/// Every use must carry a comment explaining why (docs/CONCURRENCY.md).
#define BOHM_NO_THREAD_SAFETY_ANALYSIS \
  BOHM_THREAD_ANNOTATION(no_thread_safety_analysis)
