// Environment-variable configuration helpers for the benchmark harness.
// Benchmarks default to sizes that finish quickly on small machines; on
// hardware comparable to the paper's 40-core box, exporting e.g.
// BOHM_BENCH_SCALE=10 widens them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bohm {

/// Returns the value of `name` parsed as int64, or `def` when unset/bad.
int64_t EnvInt64(const char* name, int64_t def);

/// Returns the value of `name` parsed as double, or `def` when unset/bad.
double EnvDouble(const char* name, double def);

/// Parses a comma-separated integer list ("1,2,4,8"); returns `def` when
/// unset or unparsable.
std::vector<int> EnvIntList(const char* name, std::vector<int> def);

/// Returns the value of `name`, or `def` when unset/empty.
std::string EnvStr(const char* name, const std::string& def);

}  // namespace bohm
