// Shared parameter handling for the figure/table benchmarks.
//
// Defaults are sized so the entire bench suite completes in minutes on a
// small machine. On hardware comparable to the paper's 40-core box,
// override via environment:
//   BOHM_BENCH_THREADS=1,2,4,8,16,32,40   thread sweep
//   BOHM_BENCH_RECORDS=1000000            YCSB/micro table size
//   BOHM_BENCH_MEASURE_MS=2000            measurement window
//   BOHM_BENCH_WARMUP_MS=500              warmup
//   BOHM_BENCH_SCAN_SIZE=10000            read-only transaction size
//   BOHM_BENCH_SPIN_US=50                 SmallBank per-txn spin
//   BOHM_BENCH_CSV=1                      machine-readable output
//   BOHM_BENCH_JSON=out.json              full JSON dump incl. latency
//                                         (see scripts/bench_snapshot.sh)
//   BOHM_BENCH_ADAPTIVE=0                 disable adaptive CC
//                                         repartitioning (default on)
//   BOHM_BENCH_PARTITIONS=256             physical partitions per table
//                                         (default 0 = auto)
#pragma once

#include <cstdint>
#include <vector>

#include "bohm/engine.h"
#include "harness/driver.h"

namespace bohm {

/// Thread counts to sweep (x-axis of Figures 5, 6, 10).
std::vector<int> BenchThreads();

/// YCSB / microbenchmark record count (paper: 1,000,000).
uint64_t BenchRecords(uint64_t fallback);

/// Records read by one read-only transaction (paper: 10,000), clamped to
/// half the table.
uint32_t BenchScanSize(uint64_t records);

/// SmallBank per-transaction spin in microseconds (paper: 50).
uint32_t BenchSpinUs();

DriverOptions BenchDriverOptions();

/// The paper varies Bohm's CC/execution thread split (Figure 4); for the
/// cross-system comparisons every system gets N threads total, and Bohm
/// splits them evenly between the two stages (the sequencer thread mostly
/// sleeps and is not counted, as in the paper's setup).
BohmConfig BohmSplit(uint32_t total_threads);

}  // namespace bohm
