// Row-oriented result reporting for the figure/table benchmarks: aligned
// human-readable rows on stdout (the "same rows/series the paper reports")
// plus optional CSV via BOHM_BENCH_CSV=1 for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/driver.h"

namespace bohm {

class Report {
 public:
  /// `columns`: header names; first columns are parameters, then one
  /// throughput column per system (or whatever the bench prints).
  Report(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  /// Prints the title, header and all rows.
  void Print() const;

  static std::string FormatTput(double txns_per_sec);
  static std::string FormatDouble(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_;
};

}  // namespace bohm
