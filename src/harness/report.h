// Result reporting for the figure/table benchmarks: aligned
// human-readable rows on stdout (the "same rows/series the paper reports")
// plus optional CSV via BOHM_BENCH_CSV=1 for plotting, plus a full
// machine-readable JSON dump (throughput AND latency percentiles per
// measurement point) via BOHM_BENCH_JSON=<path> — the format behind the
// committed BENCH_*.json perf-trajectory snapshots at the repo root.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/driver.h"

namespace bohm {

class Report {
 public:
  /// `columns`: header names; first columns are parameters, then one
  /// throughput column per system (or whatever the bench prints).
  Report(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  /// Prints the title, header and all rows.
  void Print() const;

  static std::string FormatTput(double txns_per_sec);
  static std::string FormatDouble(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_;
};

/// Machine-readable benchmark output. When the BOHM_BENCH_JSON
/// environment variable names a file, Write() emits every measurement
/// point a figure binary produced — parameters, throughput, abort
/// counts, the full latency profile (count/mean/p50/p99/p999/max in
/// microseconds), and the per-stage pipeline stall attribution
/// (seq/cc/exec_stall_us; zero for executor engines) — as one JSON
/// object per line, so shell tools can assert on points without a JSON
/// parser. No-op when the variable is unset, so the human-readable
/// tables stay the default.
class JsonReport {
 public:
  /// One (name, value) pair per swept parameter, e.g. {"threads", "4"}.
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit JsonReport(std::string figure);

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement point. Cheap no-op when disabled.
  void AddPoint(Params params, const std::string& system,
                const BenchResult& r);

  /// Writes the accumulated points to $BOHM_BENCH_JSON (no-op when
  /// disabled). Call once at the end of main().
  void Write() const;

 private:
  struct Point {
    Params params;
    std::string system;
    BenchResult result;
  };

  std::string figure_;
  std::string path_;
  std::vector<Point> points_;
};

}  // namespace bohm
