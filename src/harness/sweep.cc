#include "harness/sweep.h"

#include "common/env.h"

namespace bohm {

std::vector<int> BenchThreads() {
  return EnvIntList("BOHM_BENCH_THREADS", {1, 2, 4});
}

uint64_t BenchRecords(uint64_t fallback) {
  int64_t v = EnvInt64("BOHM_BENCH_RECORDS", static_cast<int64_t>(fallback));
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

uint32_t BenchScanSize(uint64_t records) {
  int64_t v = EnvInt64("BOHM_BENCH_SCAN_SIZE", 10'000);
  if (v < 1) v = 1;
  uint64_t cap = records / 2 == 0 ? 1 : records / 2;
  return static_cast<uint32_t>(
      static_cast<uint64_t>(v) < cap ? static_cast<uint64_t>(v) : cap);
}

uint32_t BenchSpinUs() {
  int64_t v = EnvInt64("BOHM_BENCH_SPIN_US", 50);
  return v < 0 ? 0 : static_cast<uint32_t>(v);
}

DriverOptions BenchDriverOptions() {
  DriverOptions opt;
  opt.warmup_ms =
      static_cast<uint32_t>(EnvInt64("BOHM_BENCH_WARMUP_MS", 100));
  opt.measure_ms =
      static_cast<uint32_t>(EnvInt64("BOHM_BENCH_MEASURE_MS", 300));
  return opt;
}

BohmConfig BohmSplit(uint32_t total_threads) {
  if (total_threads == 0) total_threads = 1;
  BohmConfig cfg;
  cfg.cc_threads = total_threads / 2 == 0 ? 1 : total_threads / 2;
  cfg.exec_threads =
      total_threads - cfg.cc_threads == 0 ? 1 : total_threads - cfg.cc_threads;
  cfg.batch_size =
      static_cast<uint32_t>(EnvInt64("BOHM_BENCH_BATCH_SIZE", 256));
  // Adaptive CC repartitioning is on by default for the benches (the
  // skewed figures are exactly where a static partition->thread map
  // melts); BOHM_BENCH_ADAPTIVE=0 reproduces the static assignment.
  cfg.adaptive.enabled = EnvInt64("BOHM_BENCH_ADAPTIVE", 1) != 0;
  int64_t parts = EnvInt64("BOHM_BENCH_PARTITIONS", 0);
  cfg.adaptive.partitions =
      parts < 0 ? 0 : static_cast<uint32_t>(parts);  // 0 = auto
  return cfg;
}

}  // namespace bohm
