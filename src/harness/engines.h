// Uniform construction of the paper's four baseline engines, so that the
// figure benchmarks can sweep "system" as a parameter.
#pragma once

#include <memory>

#include "mvocc/engine.h"
#include "occ/silo_engine.h"
#include "storage/schema.h"
#include "twopl/engine.h"
#include "txn/engine_iface.h"

namespace bohm {

enum class EngineKind { k2PL, kOCC, kSI, kHekaton };

inline const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::k2PL:
      return "2PL";
    case EngineKind::kOCC:
      return "OCC";
    case EngineKind::kSI:
      return "SI";
    case EngineKind::kHekaton:
      return "Hekaton";
  }
  return "?";
}

inline std::unique_ptr<ExecutorEngine> MakeExecutorEngine(
    EngineKind kind, const Catalog& catalog, uint32_t threads) {
  switch (kind) {
    case EngineKind::k2PL: {
      TwoPLConfig cfg;
      cfg.threads = threads;
      return std::make_unique<TwoPLEngine>(catalog, cfg);
    }
    case EngineKind::kOCC: {
      SiloConfig cfg;
      cfg.threads = threads;
      return std::make_unique<SiloEngine>(catalog, cfg);
    }
    case EngineKind::kSI: {
      MVOccConfig cfg;
      cfg.mode = MVOccMode::kSnapshotIsolation;
      cfg.threads = threads;
      return std::make_unique<MVOccEngine>(catalog, cfg);
    }
    case EngineKind::kHekaton: {
      MVOccConfig cfg;
      cfg.mode = MVOccMode::kHekaton;
      cfg.threads = threads;
      return std::make_unique<MVOccEngine>(catalog, cfg);
    }
  }
  return nullptr;
}

}  // namespace bohm
