#include "harness/driver.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/spin.h"

namespace bohm {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

BenchResult Window(const StatsSnapshot& before, const StatsSnapshot& after,
                   double seconds) {
  BenchResult r;
  r.seconds = seconds;
  r.commits = after.commits - before.commits;
  r.cc_aborts = after.cc_aborts - before.cc_aborts;
  r.logic_aborts = after.logic_aborts - before.logic_aborts;
  // Engine-side latency histograms grow monotonically, so the window is
  // the bucket-wise difference of the two snapshots. Empty for executor
  // engines (they record nothing engine-side); RunExecutorBench merges
  // its driver-side per-thread histograms on top.
  r.latency_us = Histogram::Delta(after.latency_us, before.latency_us);
  // Stall attribution is monotone like the counters (zero for executor
  // engines).
  r.seq_stall_ns = after.seq_stall_ns - before.seq_stall_ns;
  r.cc_stall_ns = after.cc_stall_ns - before.cc_stall_ns;
  r.exec_stall_ns = after.exec_stall_ns - before.exec_stall_ns;
  r.log_stall_ns = after.log_stall_ns - before.log_stall_ns;
  r.log_bytes = after.log_bytes - before.log_bytes;
  r.log_records = after.log_records - before.log_records;
  r.log_fsyncs = after.log_fsyncs - before.log_fsyncs;
  r.cc_migrations = after.cc_migrations - before.cc_migrations;
  // Imbalance is a gauge, not a counter: report the window's closing
  // reading.
  r.cc_imbalance_x1000 = after.cc_imbalance_x1000;
  return r;
}

}  // namespace

BenchResult RunExecutorBench(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             const DriverOptions& opt) {
  const uint32_t threads = engine.worker_threads();
  // Thread-safety: the driver coordinates workers only through these
  // acquire/release flags and per-thread histograms (single-writer each,
  // folded after join) — no locks, nothing for the static analysis to
  // track (docs/CONCURRENCY.md).
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<Histogram> latencies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnSource source = maker(t);
      Histogram& lat = latencies[t];
      while (!stop.load(std::memory_order_acquire)) {
        ProcedurePtr proc = source();
        if (measuring.load(std::memory_order_acquire)) {
          auto s = Clock::now();
          (void)engine.Execute(*proc, t);
          lat.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - s)
                  .count()));
        } else {
          (void)engine.Execute(*proc, t);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(opt.warmup_ms));
  // Snapshot the counters before opening the latency gate (and close it
  // before the closing snapshot): every recorded transaction then commits
  // inside the counter window except for at most one in-flight
  // transaction per worker at each edge, so the histogram count tracks
  // the window's commits to within `threads` samples — warmup-window
  // commits never appear in the histogram.
  StatsSnapshot before = engine.Stats();
  auto t0 = Clock::now();
  measuring.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.measure_ms));
  measuring.store(false, std::memory_order_release);
  StatsSnapshot after = engine.Stats();
  auto t1 = Clock::now();

  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  BenchResult r = Window(before, after, Seconds(t0, t1));
  for (const Histogram& h : latencies) r.latency_us.Merge(h);
  return r;
}

BenchResult RunBohmBench(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint32_t client_threads, const DriverOptions& opt) {
  if (client_threads == 0) client_threads = 1;
  std::atomic<bool> stop{false};
  std::atomic<bool> pause{false};
  std::atomic<uint32_t> parked{0};
  std::atomic<uint32_t> alive{client_threads};
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (uint32_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      TxnSource source = maker(t);
      while (!stop.load(std::memory_order_acquire)) {
        if (pause.load(std::memory_order_acquire)) {
          parked.fetch_add(1, std::memory_order_acq_rel);
          SpinWait wait;
          while (pause.load(std::memory_order_acquire) &&
                 !stop.load(std::memory_order_acquire)) {
            wait.Pause();
          }
          parked.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
        // Submit blocks (yielding) when the pipeline is full, providing
        // natural back-pressure.
        if (!engine.Submit(source()).ok()) break;
      }
      alive.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // Both window edges are quiescent points: park every client, drain the
  // pipeline, then snapshot. This fixes the pipelined window skew — a
  // transaction submitted during warmup can no longer have its commit
  // land inside the window (and a window submission cannot leak past the
  // closing edge), so the window's commit count, latency-histogram count
  // and wall-clock window all cover exactly the same transactions, at
  // the cost of re-filling the pipeline at the opening edge (microseconds
  // against a >=100ms window).
  auto quiesced_snapshot = [&]() -> StatsSnapshot {
    pause.store(true, std::memory_order_release);
    SpinWait wait;
    while (parked.load(std::memory_order_acquire) <
           alive.load(std::memory_order_acquire)) {
      wait.Pause();
    }
    engine.WaitForIdle();
    return engine.Stats();
  };

  std::this_thread::sleep_for(std::chrono::milliseconds(opt.warmup_ms));
  StatsSnapshot before = quiesced_snapshot();
  auto t0 = Clock::now();
  pause.store(false, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.measure_ms));
  StatsSnapshot after = quiesced_snapshot();
  auto t1 = Clock::now();

  stop.store(true, std::memory_order_release);
  pause.store(false, std::memory_order_release);
  for (auto& c : clients) c.join();
  engine.WaitForIdle();
  return Window(before, after, Seconds(t0, t1));
}

BenchResult RunExecutorCount(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             uint64_t count_per_thread) {
  const uint32_t threads = engine.worker_threads();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  StatsSnapshot before = engine.Stats();
  auto t0 = std::chrono::steady_clock::now();
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnSource source = maker(t);
      for (uint64_t i = 0; i < count_per_thread; ++i) {
        ProcedurePtr proc = source();
        (void)engine.Execute(*proc, t);
      }
    });
  }
  for (auto& w : workers) w.join();
  auto t1 = std::chrono::steady_clock::now();
  return Window(before, engine.Stats(), Seconds(t0, t1));
}

BenchResult RunBohmCount(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint64_t total_count) {
  TxnSource source = maker(0);
  StatsSnapshot before = engine.Stats();
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < total_count; ++i) {
    (void)engine.Submit(source());
  }
  engine.WaitForIdle();
  auto t1 = std::chrono::steady_clock::now();
  return Window(before, engine.Stats(), Seconds(t0, t1));
}

}  // namespace bohm
