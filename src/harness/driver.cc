#include "harness/driver.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace bohm {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

BenchResult Window(const StatsSnapshot& before, const StatsSnapshot& after,
                   double seconds) {
  BenchResult r;
  r.seconds = seconds;
  r.commits = after.commits - before.commits;
  r.cc_aborts = after.cc_aborts - before.cc_aborts;
  r.logic_aborts = after.logic_aborts - before.logic_aborts;
  return r;
}

}  // namespace

BenchResult RunExecutorBench(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             const DriverOptions& opt) {
  const uint32_t threads = engine.worker_threads();
  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::vector<Histogram> latencies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnSource source = maker(t);
      Histogram& lat = latencies[t];
      while (!stop.load(std::memory_order_acquire)) {
        ProcedurePtr proc = source();
        if (measuring.load(std::memory_order_acquire)) {
          auto s = Clock::now();
          (void)engine.Execute(*proc, t);
          lat.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - s)
                  .count()));
        } else {
          (void)engine.Execute(*proc, t);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(opt.warmup_ms));
  measuring.store(true, std::memory_order_release);
  StatsSnapshot before = engine.Stats();
  auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.measure_ms));
  StatsSnapshot after = engine.Stats();
  auto t1 = Clock::now();
  measuring.store(false, std::memory_order_release);

  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  BenchResult r = Window(before, after, Seconds(t0, t1));
  for (const Histogram& h : latencies) r.latency_us.Merge(h);
  return r;
}

BenchResult RunBohmBench(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint32_t client_threads, const DriverOptions& opt) {
  if (client_threads == 0) client_threads = 1;
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (uint32_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      TxnSource source = maker(t);
      while (!stop.load(std::memory_order_acquire)) {
        // Submit blocks (yielding) when the pipeline is full, providing
        // natural back-pressure.
        if (!engine.Submit(source()).ok()) break;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(opt.warmup_ms));
  StatsSnapshot before = engine.Stats();
  auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.measure_ms));
  StatsSnapshot after = engine.Stats();
  auto t1 = Clock::now();

  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  engine.WaitForIdle();
  return Window(before, after, Seconds(t0, t1));
}

BenchResult RunExecutorCount(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             uint64_t count_per_thread) {
  const uint32_t threads = engine.worker_threads();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  StatsSnapshot before = engine.Stats();
  auto t0 = std::chrono::steady_clock::now();
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnSource source = maker(t);
      for (uint64_t i = 0; i < count_per_thread; ++i) {
        ProcedurePtr proc = source();
        (void)engine.Execute(*proc, t);
      }
    });
  }
  for (auto& w : workers) w.join();
  auto t1 = std::chrono::steady_clock::now();
  return Window(before, engine.Stats(), Seconds(t0, t1));
}

BenchResult RunBohmCount(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint64_t total_count) {
  TxnSource source = maker(0);
  StatsSnapshot before = engine.Stats();
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < total_count; ++i) {
    (void)engine.Submit(source());
  }
  engine.WaitForIdle();
  auto t1 = std::chrono::steady_clock::now();
  return Window(before, engine.Stats(), Seconds(t0, t1));
}

}  // namespace bohm
