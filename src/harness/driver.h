// Workload drivers shared by every benchmark binary and the integration
// tests.
//
// Two engine shapes exist (mirroring the paper's Section 4 methodology):
//  * executor engines (2PL, OCC, Hekaton, SI) run transactions on the
//    submitting thread — the driver spawns N closed-loop worker threads;
//  * Bohm is pipelined — the driver spawns client threads that feed the
//    sequencer's input queue while the engine's own threads do the work.
//
// Throughput is measured over a timed window after a warmup, as the
// difference of engine counter snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/histogram.h"
#include "common/stats.h"
#include "bohm/engine.h"
#include "txn/engine_iface.h"

namespace bohm {

/// A per-thread transaction source: the driver calls the maker once per
/// worker thread; the returned closure owns that thread's generator state.
using TxnSource = std::function<ProcedurePtr()>;
using TxnSourceMaker = std::function<TxnSource(uint32_t thread_id)>;

struct DriverOptions {
  uint32_t warmup_ms = 100;
  uint32_t measure_ms = 300;
};

struct BenchResult {
  double seconds = 0;
  uint64_t commits = 0;
  uint64_t cc_aborts = 0;
  uint64_t logic_aborts = 0;
  /// Per-transaction latency in microseconds over the measurement window.
  /// Executor engines: on-thread Execute() latency measured by the
  /// driver. Bohm: end-to-end submit→commit-ack latency stamped at
  /// Submit() and recorded at commit publication in the execution stage,
  /// windowed between two quiesced snapshots so its count equals
  /// `commits` exactly.
  Histogram latency_us;
  /// Per-stage stall attribution over the window (pipelined engines
  /// only): wall-clock nanoseconds each stage spent waiting on another
  /// stage, summed across the stage's threads. Attributes pipeline wait
  /// to sequencer (slot-reuse back-pressure), CC (feed dry) and
  /// execution (feed dry or CC watermark behind).
  uint64_t seq_stall_ns = 0;
  uint64_t cc_stall_ns = 0;
  uint64_t exec_stall_ns = 0;
  /// Durable-log accounting over the window (zero with durability off):
  /// time the pipeline spent blocked on the log (sequencer on the writer
  /// ring plus execution on the durable-ack gate), and the writer's bytes
  /// / records / fsyncs.
  uint64_t log_stall_ns = 0;
  uint64_t log_bytes = 0;
  uint64_t log_records = 0;
  uint64_t log_fsyncs = 0;
  /// Adaptive CC repartitioning over the window: partitions migrated
  /// between CC threads (snapshot delta) and the closing snapshot's
  /// max/mean CC-thread load ratio x1000 (a gauge — 1000 = balanced).
  /// Zero / 1000 for executor engines and with the feature off.
  uint64_t cc_migrations = 0;
  uint64_t cc_imbalance_x1000 = 1000;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0.0;
  }
  double AbortRate() const {
    uint64_t attempts = commits + cc_aborts;
    return attempts == 0 ? 0.0
                         : static_cast<double>(cc_aborts) /
                               static_cast<double>(attempts);
  }
  uint64_t P50Us() const { return latency_us.Percentile(0.50); }
  uint64_t P99Us() const { return latency_us.Percentile(0.99); }
  uint64_t P999Us() const { return latency_us.Percentile(0.999); }
};

/// Closed-loop driver: engine.worker_threads() threads each repeatedly
/// generate and Execute transactions until the measurement window closes.
BenchResult RunExecutorBench(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             const DriverOptions& opt);

/// Pipelined driver for Bohm: `client_threads` feeder threads submit
/// transactions (the input queue provides back-pressure) while the
/// engine's sequencer/CC/execution threads process them. The engine must
/// already be started. Both window edges are quiesced (clients parked,
/// pipeline drained) so the commit count, the latency histogram and the
/// wall-clock window describe exactly the same set of transactions —
/// the throughput window includes the closing drain and the opening
/// pipeline re-fill, which is noise of microseconds against the >=100ms
/// windows the benches use.
BenchResult RunBohmBench(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint32_t client_threads, const DriverOptions& opt);

/// Fixed-count variants used by integration tests: run exactly `count`
/// transactions per worker (executor) or `count` in total (Bohm), to
/// completion, and return the elapsed-time result.
BenchResult RunExecutorCount(ExecutorEngine& engine,
                             const TxnSourceMaker& maker,
                             uint64_t count_per_thread);
BenchResult RunBohmCount(BohmEngine& engine, const TxnSourceMaker& maker,
                         uint64_t total_count);

}  // namespace bohm
