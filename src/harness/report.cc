#include "harness/report.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/env.h"

namespace bohm {

Report::Report(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)),
      columns_(std::move(columns)),
      csv_(EnvInt64("BOHM_BENCH_CSV", 0) != 0) {}

void Report::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Report::FormatTput(double txns_per_sec) {
  char buf[32];
  if (txns_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", txns_per_sec / 1e6);
  } else if (txns_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", txns_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", txns_per_sec);
  }
  return buf;
}

std::string Report::FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Report::Print() const {
  if (csv_) {
    std::printf("# %s\n", title_.c_str());
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%s%s", c ? "," : "", columns_[c].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    }
    return;
  }

  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

namespace {

/// Minimal JSON string escaping for the label/parameter strings the
/// benches emit (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonReport::JsonReport(std::string figure)
    : figure_(std::move(figure)), path_(EnvStr("BOHM_BENCH_JSON", "")) {}

void JsonReport::AddPoint(Params params, const std::string& system,
                          const BenchResult& r) {
  if (!enabled()) return;
  points_.push_back(Point{std::move(params), system, r});
}

void JsonReport::Write() const {
  if (!enabled()) return;
  FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot open %s for writing\n",
                 path_.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"points\": [\n",
               JsonEscape(figure_).c_str());
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    const BenchResult& r = p.result;
    // One point per line, keys in a fixed order, so line-oriented tools
    // (the bench_smoke checker) can assert on fields without a parser.
    std::fprintf(f, "    {\"system\": \"%s\"", JsonEscape(p.system).c_str());
    for (const auto& [k, v] : p.params) {
      std::fprintf(f, ", \"%s\": \"%s\"", JsonEscape(k).c_str(),
                   JsonEscape(v).c_str());
    }
    std::fprintf(
        f,
        ", \"seconds\": %.6f, \"commits\": %" PRIu64
        ", \"cc_aborts\": %" PRIu64 ", \"logic_aborts\": %" PRIu64
        ", \"tput_txns_per_sec\": %.1f, \"abort_rate\": %.6f"
        ", \"lat_count\": %" PRIu64 ", \"lat_mean_us\": %.3f"
        ", \"p50_us\": %" PRIu64 ", \"p99_us\": %" PRIu64
        ", \"p999_us\": %" PRIu64 ", \"max_us\": %" PRIu64
        ", \"seq_stall_us\": %.1f, \"cc_stall_us\": %.1f"
        ", \"exec_stall_us\": %.1f, \"log_stall_us\": %.1f"
        ", \"log_bytes\": %" PRIu64 ", \"log_records\": %" PRIu64
        ", \"fsyncs\": %" PRIu64 ", \"cc_migrations\": %" PRIu64
        ", \"cc_imbalance\": %.3f}%s\n",
        r.seconds, r.commits, r.cc_aborts, r.logic_aborts, r.Throughput(),
        r.AbortRate(), r.latency_us.count(), r.latency_us.Mean(), r.P50Us(),
        r.P99Us(), r.P999Us(), r.latency_us.max(),
        static_cast<double>(r.seq_stall_ns) / 1000.0,
        static_cast<double>(r.cc_stall_ns) / 1000.0,
        static_cast<double>(r.exec_stall_ns) / 1000.0,
        static_cast<double>(r.log_stall_ns) / 1000.0, r.log_bytes,
        r.log_records, r.log_fsyncs, r.cc_migrations,
        static_cast<double>(r.cc_imbalance_x1000) / 1000.0,
        i + 1 < points_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("JSON written to %s (%zu points)\n", path_.c_str(),
              points_.size());
}

}  // namespace bohm
