#include "harness/report.h"

#include <cstdio>
#include <sstream>

#include "common/env.h"

namespace bohm {

Report::Report(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)),
      columns_(std::move(columns)),
      csv_(EnvInt64("BOHM_BENCH_CSV", 0) != 0) {}

void Report::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Report::FormatTput(double txns_per_sec) {
  char buf[32];
  if (txns_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", txns_per_sec / 1e6);
  } else if (txns_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", txns_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", txns_per_sec);
  }
  return buf;
}

std::string Report::FormatDouble(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Report::Print() const {
  if (csv_) {
    std::printf("# %s\n", title_.c_str());
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%s%s", c ? "," : "", columns_[c].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    }
    return;
  }

  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace bohm
