// Single-version optimistic concurrency control, "a direct implementation
// of Silo" (Tu et al. [35]) as the paper's OCC baseline (Section 4):
//
//  * Each record carries a TID word (lock bit | epoch | sequence). Reads
//    are seqlock-style: read TID, copy payload, re-read TID; retry on
//    change. Reads perform no shared-memory writes.
//  * Writes are buffered thread-locally during execution (the paper notes
//    this buffer is reused across transactions by the same thread, giving
//    better locality than multi-version allocation).
//  * Commit: lock the write set in a global order, validate the read set
//    (TIDs unchanged and not locked by others), install writes with a new
//    TID greater than all observed TIDs in the current epoch.
//  * Decentralized timestamps: no global counter anywhere on the commit
//    path; a background thread advances the epoch periodically.
//  * Contention back-off: after an abort the thread backs off
//    exponentially — the behaviour the paper credits for OCC's resilience
//    under high contention relative to Hekaton/SI (Section 4.2.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/stable_buffer.h"
#include "common/stats.h"
#include "storage/sv_table.h"
#include "txn/engine_iface.h"

namespace bohm {

struct SiloConfig {
  uint32_t threads = 1;
  /// Epoch advance period in microseconds (Silo uses 40 ms; we default
  /// lower so short benchmark runs span several epochs).
  uint32_t epoch_period_us = 10000;
  /// Back-off after an abort: initial pause in microseconds, doubled per
  /// consecutive abort up to the cap.
  uint32_t backoff_min_us = 2;
  uint32_t backoff_max_us = 512;
};

class SiloEngine final : public ExecutorEngine {
 public:
  SiloEngine(const Catalog& catalog, SiloConfig cfg);
  ~SiloEngine() override;
  BOHM_DISALLOW_COPY_AND_ASSIGN(SiloEngine);

  /// Inserts an initial record. Single-threaded, before first Execute.
  Status Load(TableId table, Key key, const void* payload) override;

  Status Execute(StoredProcedure& proc, uint32_t thread_id) override;
  uint32_t worker_threads() const override { return cfg_.threads; }
  StatsSnapshot Stats() const override { return stats_.Fold(); }
  const char* name() const override { return "OCC"; }

  /// Non-transactional read of the current value (quiescent helper).
  Status ReadLatest(TableId table, Key key, void* out) const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // TID word layout (public for tests).
  static constexpr uint64_t kLockBit = 1ull;
  static constexpr uint32_t kEpochShift = 40;
  static constexpr uint64_t kSeqMask = ((1ull << kEpochShift) - 1) & ~kLockBit;
  static uint64_t TidEpoch(uint64_t tid) { return tid >> kEpochShift; }

 private:
  friend class SiloOps;

  struct ReadEntry {
    SVSlot* slot;
    uint64_t tid;  // TID observed at read time (lock bit clear)
  };
  struct WriteEntry {
    SVSlot* slot;
    void* buf;  // into ThreadCtx::write_buffer (stable)
    uint32_t size;
    bool locked;
  };
  struct alignas(kCacheLineSize) ThreadCtx {
    std::vector<ReadEntry> read_set;
    std::vector<WriteEntry> write_set;
    /// Reused local write buffer ("the same local write buffer can be
    /// re-used by a single execution thread across many different
    /// transactions", Section 4.2.1). Chunked: pointers handed to Run()
    /// stay valid while later accesses append.
    StableBuffer write_buffer;
    StableBuffer read_buffer;  // stable copies handed to Run()
    uint64_t last_tid = 0;
    uint32_t consecutive_aborts = 0;
  };

  /// Stable seqlock read of a slot; returns the observed TID.
  uint64_t StableRead(SVSlot* slot, void* out, uint32_t size) const;
  bool CommitAttempt(ThreadCtx& ctx);
  void Backoff(ThreadCtx& ctx);
  void EpochLoop();

  Catalog catalog_;
  SiloConfig cfg_;
  SVDatabase db_;
  std::vector<uint32_t> record_sizes_;
  std::vector<std::unique_ptr<ThreadCtx>> ctx_;
  StatsRegistry stats_;

  alignas(kCacheLineSize) std::atomic<uint64_t> epoch_{1};
  std::atomic<bool> stop_epoch_{false};
  std::thread epoch_thread_;
};

}  // namespace bohm
