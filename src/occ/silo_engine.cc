#include "occ/silo_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "common/atomic_words.h"
#include "common/spin.h"

namespace bohm {

/// TxnOps for Silo: reads hand out stable thread-local copies; writes go
/// to the thread-local buffer and reach the database only at commit.
class SiloOps final : public TxnOps {
 public:
  SiloOps(SiloEngine* engine, SiloEngine::ThreadCtx* ctx, ThreadStats* stats)
      : engine_(engine), ctx_(ctx), stats_(stats) {}

  const void* Read(TableId table, Key key) override {
    stats_->reads.Inc();
    SVTable* t = engine_->db_.table(table);
    SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
    if (slot == nullptr) return nullptr;
    const uint32_t size = engine_->record_sizes_[table];
    // If we already buffered a write to this record, return our own
    // pending value (read-own-write).
    for (const auto& w : ctx_->write_set) {
      if (w.slot == slot) return w.buf;
    }
    void* copy = ctx_->read_buffer.Allocate(size);
    uint64_t tid = engine_->StableRead(slot, copy, size);
    ctx_->read_set.push_back({slot, tid});
    return copy;
  }

  void* Write(TableId table, Key key) override {
    stats_->writes.Inc();
    SVTable* t = engine_->db_.table(table);
    SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
    assert(slot != nullptr && "Silo requires pre-loaded records");
    if (slot == nullptr) {
      aborted_ = true;
      static thread_local char sink[8];
      return sink;
    }
    const uint32_t size = engine_->record_sizes_[table];
    for (const auto& w : ctx_->write_set) {
      if (w.slot == slot) return w.buf;
    }
    void* buf = ctx_->write_buffer.Allocate(size);
    ctx_->write_set.push_back({slot, buf, size, false});
    return buf;
  }

  void Abort() override { aborted_ = true; }
  bool aborted() const override { return aborted_; }

 private:
  SiloEngine* engine_;
  SiloEngine::ThreadCtx* ctx_;
  ThreadStats* stats_;
  bool aborted_ = false;
};

SiloEngine::SiloEngine(const Catalog& catalog, SiloConfig cfg)
    : catalog_(catalog),
      cfg_([&] {
        if (cfg.threads == 0) cfg.threads = 1;
        if (cfg.backoff_min_us == 0) cfg.backoff_min_us = 1;
        if (cfg.backoff_max_us < cfg.backoff_min_us) {
          cfg.backoff_max_us = cfg.backoff_min_us;
        }
        return cfg;
      }()),
      db_(catalog_),
      stats_(cfg_.threads) {
  record_sizes_.resize(catalog_.MaxTableId(), 0);
  for (const TableSpec& t : catalog_.tables()) {
    record_sizes_[t.id] = t.record_size;
  }
  for (uint32_t i = 0; i < cfg_.threads; ++i) {
    ctx_.push_back(std::make_unique<ThreadCtx>());
  }
  epoch_thread_ = std::thread([this] { EpochLoop(); });
}

SiloEngine::~SiloEngine() {
  stop_epoch_.store(true, std::memory_order_release);
  if (epoch_thread_.joinable()) epoch_thread_.join();
}

void SiloEngine::EpochLoop() {
  while (!stop_epoch_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.epoch_period_us));
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
}

Status SiloEngine::Load(TableId table, Key key, const void* payload) {
  SVTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  return t->Insert(key, payload);
}

uint64_t SiloEngine::StableRead(SVSlot* slot, void* out,
                                uint32_t size) const {
  // Seqlock read: acquire the TID word, copy the payload with word-wise
  // relaxed atomic loads (a concurrent CommitAttempt may be installing
  // the same payload with word-wise relaxed stores — racing word accesses
  // are both atomic, so this is race-free at the C++ level and needs no
  // TSan suppression), then recheck the TID word; a torn copy fails the
  // recheck and retries.
  SpinWait wait;
  for (;;) {
    uint64_t t1 = slot->header.load(std::memory_order_acquire);
    if (t1 & kLockBit) {
      wait.Pause();
      continue;
    }
    AtomicWordCopyFrom(out, slot->payload(), size);
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t t2 = slot->header.load(std::memory_order_acquire);
    if (t1 == t2) return t1;
    wait.Pause();
  }
}

bool SiloEngine::CommitAttempt(ThreadCtx& ctx) {
  // Phase 1: lock the write set in a global order (slot address order —
  // a fixed total order, so concurrent committers cannot deadlock).
  std::sort(ctx.write_set.begin(), ctx.write_set.end(),
            [](const WriteEntry& a, const WriteEntry& b) {
              return a.slot < b.slot;
            });
  for (auto& w : ctx.write_set) {
    SpinWait wait;
    for (;;) {
      // relaxed: optimistic peek (and CAS failure order) — only the
      // successful acquire CAS orders the critical section.
      uint64_t h = w.slot->header.load(std::memory_order_relaxed);
      if ((h & kLockBit) == 0 &&
          w.slot->header.compare_exchange_weak(h, h | kLockBit,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
        w.locked = true;
        break;
      }
      wait.Pause();
    }
  }

  // Phase 2: validate the read set.
  bool valid = true;
  for (const auto& r : ctx.read_set) {
    uint64_t h = r.slot->header.load(std::memory_order_acquire);
    if ((h & ~kLockBit) != (r.tid & ~kLockBit)) {
      valid = false;
      break;
    }
    if (h & kLockBit) {
      // Locked: only acceptable when we hold the lock ourselves.
      bool ours = false;
      for (const auto& w : ctx.write_set) {
        if (w.slot == r.slot) {
          ours = true;
          break;
        }
      }
      if (!ours) {
        valid = false;
        break;
      }
    }
  }

  if (!valid) {
    for (auto& w : ctx.write_set) {
      if (w.locked) {
        // relaxed: we hold the lock bit, so no other thread can be
        // writing the header; the release store hands it back.
        uint64_t h = w.slot->header.load(std::memory_order_relaxed);
        w.slot->header.store(h & ~kLockBit, std::memory_order_release);
        w.locked = false;
      }
    }
    return false;
  }

  // Phase 3: compute the commit TID — greater than every observed TID,
  // greater than this thread's previous TID, and within the current epoch
  // (decentralized: no shared counter).
  uint64_t max_tid = ctx.last_tid;
  for (const auto& r : ctx.read_set) {
    max_tid = std::max(max_tid, r.tid & ~kLockBit);
  }
  for (const auto& w : ctx.write_set) {
    // relaxed: we hold this slot's lock bit, so the header is stable;
    // only its numeric value feeds the TID computation.
    max_tid =
        std::max(max_tid, w.slot->header.load(std::memory_order_relaxed) &
                              ~kLockBit);
  }
  uint64_t commit_tid = max_tid + 2;  // +2 keeps the lock bit clear
  uint64_t epoch_floor = epoch_.load(std::memory_order_acquire)
                         << kEpochShift;
  if (commit_tid < epoch_floor) commit_tid = epoch_floor + 2;
  ctx.last_tid = commit_tid;

  // Install writes and release locks by publishing the new TID. The
  // payload copy is word-wise relaxed atomic stores (the seqlock write
  // side — see StableRead); the TID release-store publishes it.
  for (auto& w : ctx.write_set) {
    AtomicWordCopyTo(w.slot->payload(), w.buf, w.size);
    w.slot->header.store(commit_tid, std::memory_order_release);
    w.locked = false;
  }
  return true;
}

void SiloEngine::Backoff(ThreadCtx& ctx) {
  uint32_t shift = std::min(ctx.consecutive_aborts, 16u);
  uint64_t us = std::min<uint64_t>(
      static_cast<uint64_t>(cfg_.backoff_min_us) << shift,
      cfg_.backoff_max_us);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

Status SiloEngine::Execute(StoredProcedure& proc, uint32_t thread_id) {
  if (thread_id >= cfg_.threads) {
    return Status::InvalidArgument("bad thread id");
  }
  ThreadCtx& ctx = *ctx_[thread_id];
  ThreadStats& st = stats_.Slice(thread_id);

  for (;;) {
    ctx.read_set.clear();
    ctx.write_set.clear();
    ctx.write_buffer.Reset();
    ctx.read_buffer.Reset();

    SiloOps ops(this, &ctx, &st);
    proc.Run(ops);
    if (ops.aborted()) {
      st.logic_aborts.Inc();
      return Status::Aborted("transaction logic aborted");
    }

    if (CommitAttempt(ctx)) {
      ctx.consecutive_aborts = 0;
      st.commits.Inc();
      return Status::OK();
    }
    st.cc_aborts.Inc();
    st.retries.Inc();
    ++ctx.consecutive_aborts;
    Backoff(ctx);
  }
}

Status SiloEngine::ReadLatest(TableId table, Key key, void* out) const {
  SVTable* t = db_.table(table);
  SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
  if (slot == nullptr) return Status::NotFound("no such record");
  StableRead(slot, out, record_sizes_[table]);
  return Status::OK();
}

}  // namespace bohm
