// Deadlock-free two-phase locking over single-version storage — the
// paper's strongest single-version pessimistic baseline (Section 4).
// Advance knowledge of read/write sets is exploited twice, exactly as the
// paper describes: locks are acquired in lexicographic order (no
// deadlocks, hence no detector), and every lock-table entry needed is
// allocated before the transaction runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/stable_buffer.h"
#include "common/stats.h"
#include "storage/sv_table.h"
#include "twopl/lock_table.h"
#include "txn/engine_iface.h"

namespace bohm {

struct TwoPLConfig {
  uint32_t threads = 1;
};

class TwoPLEngine final : public ExecutorEngine {
 public:
  TwoPLEngine(const Catalog& catalog, TwoPLConfig cfg);
  ~TwoPLEngine() override = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(TwoPLEngine);

  /// Inserts an initial record and pre-creates its lock entry.
  /// Single-threaded, before first Execute.
  Status Load(TableId table, Key key, const void* payload) override;

  Status Execute(StoredProcedure& proc, uint32_t thread_id) override;
  uint32_t worker_threads() const override { return cfg_.threads; }
  StatsSnapshot Stats() const override { return stats_.Fold(); }
  const char* name() const override { return "2PL"; }

  /// Non-transactional read of the current value (quiescent helper).
  Status ReadLatest(TableId table, Key key, void* out) const;

  LockTable& lock_table() { return locks_; }

 private:
  friend class TwoPLOps;

  struct Acquired {
    LockEntry* entry;
    bool exclusive;
  };
  struct UndoEntry {
    SVSlot* slot;
    void* saved;
    uint32_t size;
  };
  struct alignas(kCacheLineSize) ThreadCtx {
    std::vector<Acquired> held;
    std::vector<UndoEntry> undo;
    StableBuffer undo_buffer;
  };

  Catalog catalog_;
  TwoPLConfig cfg_;
  SVDatabase db_;
  LockTable locks_;
  std::vector<uint32_t> record_sizes_;
  std::vector<std::unique_ptr<ThreadCtx>> ctx_;
  StatsRegistry stats_;
};

}  // namespace bohm
