#include "twopl/engine.h"

#include <cassert>
#include <cstring>

namespace bohm {

namespace {

uint64_t TotalCapacity(const Catalog& catalog) {
  uint64_t n = 0;
  for (const auto& t : catalog.tables()) n += t.capacity;
  return n;
}

}  // namespace

/// TxnOps for 2PL: direct in-place access to single-version storage under
/// the locks acquired before Run(). The first write to each record saves
/// an undo image so that a logic abort can roll back.
class TwoPLOps final : public TxnOps {
 public:
  TwoPLOps(TwoPLEngine* engine, TwoPLEngine::ThreadCtx* ctx,
           ThreadStats* stats)
      : engine_(engine), ctx_(ctx), stats_(stats) {}

  const void* Read(TableId table, Key key) override {
    stats_->reads.Inc();
    SVTable* t = engine_->db_.table(table);
    SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
    return slot == nullptr ? nullptr : slot->payload();
  }

  void* Write(TableId table, Key key) override {
    stats_->writes.Inc();
    SVTable* t = engine_->db_.table(table);
    SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
    assert(slot != nullptr && "2PL requires pre-loaded records");
    if (slot == nullptr) return nullptr;
    const uint32_t size = engine_->record_sizes_[table];
    // Save an undo image once per record per transaction.
    bool seen = false;
    for (const auto& u : ctx_->undo) {
      if (u.slot == slot) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      void* saved = ctx_->undo_buffer.Allocate(size);
      // plain-copy: the growing phase took this record's lock exclusively
      // before Run(), so no other thread can touch the payload.
      std::memcpy(saved, slot->payload(), size);
      ctx_->undo.push_back({slot, saved, size});
    }
    return slot->payload();
  }

  void Abort() override { aborted_ = true; }
  bool aborted() const override { return aborted_; }

 private:
  TwoPLEngine* engine_;
  TwoPLEngine::ThreadCtx* ctx_;
  ThreadStats* stats_;
  bool aborted_ = false;
};

TwoPLEngine::TwoPLEngine(const Catalog& catalog, TwoPLConfig cfg)
    : catalog_(catalog),
      cfg_([&] {
        if (cfg.threads == 0) cfg.threads = 1;
        return cfg;
      }()),
      db_(catalog_),
      locks_(TotalCapacity(catalog_)),
      stats_(cfg_.threads) {
  record_sizes_.resize(catalog_.MaxTableId(), 0);
  for (const TableSpec& t : catalog_.tables()) {
    record_sizes_[t.id] = t.record_size;
  }
  for (uint32_t i = 0; i < cfg_.threads; ++i) {
    ctx_.push_back(std::make_unique<ThreadCtx>());
  }
}

Status TwoPLEngine::Load(TableId table, Key key, const void* payload) {
  SVTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  BOHM_RETURN_NOT_OK(t->Insert(key, payload));
  // "No lock table entry allocations" during transactions: create the
  // entry now.
  locks_.Preallocate(RecordId{table, key});
  return Status::OK();
}

// The whole point of 2PL is a dynamically-scoped lock set: locks acquired
// entry-by-entry in the growing phase and released after Run(). Clang's
// static analysis cannot track capabilities held in a runtime container,
// so this one protocol function opts out; its discipline (lexicographic
// acquisition order, full release in the shrinking phase) is exercised by
// twopl_test and the TSan suite instead.
Status TwoPLEngine::Execute(StoredProcedure& proc,
                            uint32_t thread_id) BOHM_NO_THREAD_SAFETY_ANALYSIS {
  if (thread_id >= cfg_.threads) {
    return Status::InvalidArgument("bad thread id");
  }
  ThreadCtx& ctx = *ctx_[thread_id];
  ThreadStats& st = stats_.Slice(thread_id);
  ctx.held.clear();
  ctx.undo.clear();
  ctx.undo_buffer.Reset();

  // Growing phase: acquire every lock in lexicographic (table, key)
  // order; an RMW record is acquired exclusively once.
  for (const auto& [rec, mode] : proc.rwset().LockOrder()) {
    LockEntry* e = locks_.GetOrCreate(rec);
    if (mode == AccessMode::kWrite) {
      e->lock.LockExclusive();
      ctx.held.push_back({e, true});
    } else {
      e->lock.LockShared();
      ctx.held.push_back({e, false});
    }
  }

  TwoPLOps ops(this, &ctx, &st);
  proc.Run(ops);

  const bool aborted = ops.aborted();
  if (aborted) {
    // Roll back in-place writes (reverse order; last image per record was
    // saved first, so forward order would also be correct — reverse is
    // belt and braces).
    for (auto it = ctx.undo.rbegin(); it != ctx.undo.rend(); ++it) {
      // plain-copy: still inside the growing-phase lock scope — the
      // exclusive record lock is released only in the shrinking phase.
      std::memcpy(it->slot->payload(), it->saved, it->size);
    }
  }

  // Shrinking phase.
  for (const Acquired& a : ctx.held) {
    if (a.exclusive) {
      a.entry->lock.UnlockExclusive();
    } else {
      a.entry->lock.UnlockShared();
    }
  }

  if (aborted) {
    st.logic_aborts.Inc();
    return Status::Aborted("transaction logic aborted");
  }
  st.commits.Inc();
  return Status::OK();
}

Status TwoPLEngine::ReadLatest(TableId table, Key key, void* out) const {
  SVTable* t = db_.table(table);
  SVSlot* slot = t == nullptr ? nullptr : t->Lookup(key);
  if (slot == nullptr) return Status::NotFound("no such record");
  // plain-copy: quiescent-only test/report helper (see header contract);
  // no transaction is running, so nothing else touches the payload.
  std::memcpy(out, slot->payload(), record_sizes_[table]);
  return Status::OK();
}

}  // namespace bohm
