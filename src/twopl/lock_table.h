// The 2PL baseline's lock table, with the three properties the paper's
// locking implementation has (Section 4):
//  a) Fine-grained latching — per-bucket latches, no central latch.
//  b) Deadlock freedom — callers acquire locks in lexicographic
//     (table, key) order, so no detection logic exists at all.
//  c) No lock-table entry allocations on the transaction path — entries
//     for all loaded records are created up front; entries are never
//     freed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/arena.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/spin.h"
#include "common/thread_annotations.h"
#include "txn/key.h"

namespace bohm {

/// One lockable record. The RW lock itself is a reader-writer spinlock
/// with yielding back-off (threads in this implementation busy-wait
/// instead of context-switching, like the paper's non-blocking executors).
struct LockEntry {
  RecordId rec;
  RWSpinLock lock;
  LockEntry* next = nullptr;
};

class LockTable {
 public:
  /// `expected_records` sizes the bucket array.
  explicit LockTable(uint64_t expected_records);
  BOHM_DISALLOW_COPY_AND_ASSIGN(LockTable);

  /// Pre-creates the entry for a record (load phase; single-threaded).
  void Preallocate(const RecordId& rec) { (void)GetOrCreate(rec); }

  /// Returns the entry for a record, creating it if needed. Thread-safe;
  /// creation is rare after the load phase.
  LockEntry* GetOrCreate(const RecordId& rec);

  /// Entry count (test hook).
  uint64_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  struct Bucket {
    SpinLock latch;
    /// Chain head. Published entries are immutable, so the fast-path read
    /// is latch-free (acquire load); *mutation* requires `latch`. The
    /// atomic cannot be GUARDED_BY(latch) without outlawing the lock-free
    /// fast path — the insert path below documents the discipline instead.
    std::atomic<LockEntry*> head{nullptr};
  };

  uint64_t BucketOf(const RecordId& rec) const {
    return HashTableKey(rec.table, rec.key) & mask_;
  }

  uint64_t mask_;
  std::unique_ptr<Bucket[]> buckets_;
  SpinLock arena_latch_;
  Arena arena_ BOHM_GUARDED_BY(arena_latch_);
  std::atomic<uint64_t> count_{0};
};

}  // namespace bohm
