#include "twopl/lock_table.h"

namespace bohm {

LockTable::LockTable(uint64_t expected_records) {
  uint64_t n = NextPow2(expected_records < 16 ? 16 : expected_records);
  buckets_ = std::make_unique<Bucket[]>(n);
  mask_ = n - 1;
}

LockEntry* LockTable::GetOrCreate(const RecordId& rec) {
  Bucket& b = buckets_[BucketOf(rec)];
  // Fast path: latch-free lookup of a published entry.
  for (LockEntry* e = b.head.load(std::memory_order_acquire); e != nullptr;
       e = e->next) {
    if (e->rec == rec) return e;
  }
  // Slow path (load phase, or first touch of an unloaded key).
  SpinLockGuard guard(b.latch);
  // relaxed: b.latch is held, so no other thread can be mutating head; the
  // fast path's acquire pairs with the release publication below.
  LockEntry* head = b.head.load(std::memory_order_relaxed);
  for (LockEntry* e = head; e != nullptr; e = e->next) {
    if (e->rec == rec) return e;
  }
  LockEntry* e;
  {
    SpinLockGuard arena_guard(arena_latch_);
    e = arena_.New<LockEntry>();
  }
  e->rec = rec;
  e->next = head;
  b.head.store(e, std::memory_order_release);
  count_.fetch_add(1, std::memory_order_acq_rel);
  return e;
}

}  // namespace bohm
