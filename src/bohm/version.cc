#include "bohm/version.h"

namespace bohm {

Version* VersionAllocator::Alloc(TableId table, uint32_t record_size) {
  if (table < free_lists_.size() && !free_lists_[table].empty()) {
    Version* v = free_lists_[table].back();
    free_lists_[table].pop_back();
    // Re-initialize in place; payload is overwritten by the executor.
    // relaxed: the version is private to this CC thread until it is
    // release-published into the index (GetOrInsert / head store), which
    // orders these initializing stores for readers.
    v->begin_ts = kLoadTs;
    v->end_ts.store(kInfinityTs, std::memory_order_relaxed);
    v->flags.store(0, std::memory_order_relaxed);
    v->producer = nullptr;
    v->prev = nullptr;
    v->table = table;
    v->allocator = owner_;
    return v;
  }
  void* mem = arena_.Allocate(sizeof(Version) + record_size, alignof(Version));
  Version* v = new (mem) Version();
  v->table = table;
  v->allocator = owner_;
  return v;
}

void VersionAllocator::Free(Version* v) {
  if (free_lists_.size() <= v->table) free_lists_.resize(v->table + 1);
  free_lists_[v->table].push_back(v);
}

size_t VersionAllocator::FreeCount() const {
  size_t n = 0;
  for (const auto& l : free_lists_) n += l.size();
  return n;
}

}  // namespace bohm
