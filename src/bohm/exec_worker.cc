// The transaction-execution stage (Section 3.3.1).
//
// Execution threads receive batches whose concurrency control is already
// complete: every write has a placeholder version and every read is (or
// can be) resolved to the exact version to observe. Transactions are
// striped across execution threads (thread i is *responsible* for
// transactions i, i+n, ...), but any thread may execute any transaction by
// winning the Unprocessed -> Executing claim — which is how unsatisfied
// read dependencies are resolved: the blocked thread recursively evaluates
// the producing transaction instead of waiting for it.

#include <cassert>
#include <cstring>

#include "common/spin.h"
#include "bohm/engine.h"

namespace bohm {

/// Bohm's TxnOps: reads return resolved version data (guaranteed ready by
/// the dependency-resolution pass); writes return placeholder buffers.
class BohmOps final : public TxnOps {
 public:
  BohmOps(BohmTxn* txn, ThreadStats* stats) : txn_(txn), stats_(stats) {}

  const void* Read(TableId table, Key key) override {
    ReadRef* r = txn_->FindRead(table, key);
    assert(r != nullptr && "access to undeclared read-set element");
    if (r == nullptr) return nullptr;
    stats_->reads.Inc();
    Version* v = r->version;  // resolved before Run() was entered
    if (v == nullptr || v->tombstone()) return nullptr;
    return v->data();
  }

  void* Write(TableId table, Key key) override {
    WriteRef* w = txn_->FindWrite(table, key);
    assert(w != nullptr && "access to undeclared write-set element");
    if (w == nullptr) return nullptr;
    stats_->writes.Inc();
    return w->version->data();
  }

  bool Delete(TableId table, Key key) override {
    WriteRef* w = txn_->FindWrite(table, key);
    assert(w != nullptr && "delete of undeclared write-set element");
    if (w == nullptr) return false;
    stats_->writes.Inc();
    w->tombstone = true;  // published as a tombstone version after Run()
    return true;
  }

  void Abort() override { aborted_ = true; }
  bool aborted() const override { return aborted_; }

 private:
  BohmTxn* txn_;
  ThreadStats* stats_;
  bool aborted_ = false;
};

void BohmEngine::ExecLoop(uint32_t exec_id) {
  SpscQueue<int64_t>& feed = *exec_feed_[exec_id];
  StallSlot& stall = *exec_stall_[exec_id];
  const BohmTestHooks* hooks = hooks_.get();
  for (;;) {
    // Pop the next sealed batch id from this thread's feed ring (or
    // return once the sequencer is done and the feed is drained).
    int64_t b;
    if (!feed.TryPop(&b)) {
      const uint64_t stall_start = MonotonicNanos();
      SpinWait wait;
      for (;;) {
        if (feed.TryPop(&b)) break;
        if (sequencer_done_.load(std::memory_order_acquire)) {
          if (feed.TryPop(&b)) break;
          stall.ns.Inc(MonotonicNanos() - stall_start);
          return;
        }
        wait.Pause();
      }
      stall.ns.Inc(MonotonicNanos() - stall_start);
    }

    // Admission: execution may enter batch b only once every CC thread
    // has finished its slice of b — min(cc_watermark) >= b. The acquire
    // fold pairs with each CC thread's release watermark store, so all
    // placeholders and annotations of batch b are visible here (rule R5).
    // This wait terminates without extra shutdown plumbing: CC threads
    // drain the same sealed-batch feed before exiting, so their
    // watermarks always reach b eventually.
    if (cc_watermark_.Min() < b) {
      const uint64_t stall_start = MonotonicNanos();
      SpinWait wait;
      while (cc_watermark_.Min() < b) wait.Pause();
      stall.ns.Inc(MonotonicNanos() - stall_start);
    }

    // Durable-ack gate (docs/CONCURRENCY.md rule R6): a batch may execute
    // — and therefore acknowledge commits — only once its log record is
    // durable, so "acknowledged" always implies "survives a crash". Off
    // during replay (those batches are durable by definition) and broken
    // by a writer failure: the engine then degrades to non-durable
    // execution of in-flight work while Submit rejects anything new,
    // rather than wedging shutdown on a watermark that will never move.
    if (log_writer_ != nullptr && cfg_.durability.durable_ack &&
        !replaying_.load(std::memory_order_acquire)) {
      const uint64_t need = log_base_ + static_cast<uint64_t>(b);
      if (log_writer_->durable_seqno() < need && !log_writer_->failed()) {
        const uint64_t stall_start = MonotonicNanos();
        SpinWait wait;
        while (log_writer_->durable_seqno() < need &&
               !log_writer_->failed()) {
          wait.Pause();
        }
        exec_log_stall_[exec_id]->ns.Inc(MonotonicNanos() - stall_start);
      }
    }

    Batch* batch = ring_.Slot(b);
    if (hooks != nullptr && hooks->exec_batch_start) {
      hooks->exec_batch_start(exec_id, b);
    }

    // Stripe: this thread is responsible for transactions exec_id,
    // exec_id + n, ... . Other threads may execute them (and this thread
    // may execute theirs, through dependency recursion), but this thread
    // cannot advance to batch b+1 until all of its stripe is Complete.
    const size_t n = batch->txns.size();
    bool all_done = false;
    SpinWait wait;
    while (!all_done) {
      all_done = true;
      for (size_t idx = exec_id; idx < n; idx += cfg_.exec_threads) {
        BohmTxn* txn = batch->txns[idx];
        if (!txn->IsComplete()) {
          TryExecute(exec_id, txn, 0);
          if (!txn->IsComplete()) all_done = false;
        }
      }
      if (!all_done) wait.Pause();
    }
    if (hooks != nullptr && hooks->exec_batch_end) {
      hooks->exec_batch_end(exec_id, b);
    }
    exec_watermark_.Advance(exec_id, b);
  }
}

Version* BohmEngine::ResolveRead(ReadRef& ref, uint64_t ts) const {
  // Chain traversal (the non-annotated path of Section 3.2.3): walk the
  // version list from the newest version until one created strictly before
  // this transaction is found. The strict inequality also skips the
  // transaction's own placeholder on an RMW, giving read-before-write
  // semantics.
  const BohmTable* table = db_.table(ref.rec.table);
  BohmIndexEntry* entry =
      table->Find(table->PartitionOf(ref.rec.key), ref.rec.key);
  if (entry == nullptr) return nullptr;
  Version* v = entry->head.load(std::memory_order_acquire);
  while (v != nullptr && v->begin_ts >= ts) v = v->prev;
  return v;
}

bool BohmEngine::EnsureReady(uint32_t exec_id, Version* v, uint32_t depth) {
  if (v->ready()) return true;
  if (depth >= cfg_.max_dependency_depth) return false;
  BohmTxn* producer = v->producer;
  if (producer != nullptr) TryExecute(exec_id, producer, depth);
  // The producer may also have been completed concurrently by another
  // thread while our claim attempt failed.
  return v->ready();
}

bool BohmEngine::FillAbortedWrites(uint32_t exec_id, BohmTxn* txn,
                                   uint32_t depth) {
  // An aborted transaction's placeholder must carry the preceding
  // version's value (Section 3.3.1: "the data written to its version of x
  // is equal to that produced by T1" — the abort is a read dependency on
  // every preceding version). Pass 1 resolves those dependencies; pass 2
  // copies and publishes.
  for (uint32_t i = 0; i < txn->n_writes; ++i) {
    Version* prev = txn->writes[i].version->prev;
    if (prev != nullptr && !EnsureReady(exec_id, prev, depth + 1)) {
      return false;
    }
  }
  for (uint32_t i = 0; i < txn->n_writes; ++i) {
    Version* v = txn->writes[i].version;
    Version* prev = v->prev;
    if (prev == nullptr || prev->tombstone()) {
      v->flags.store(kVersionReady | kVersionTombstone,
                     std::memory_order_release);
    } else {
      std::memcpy(v->data(), prev->data(), record_sizes_[v->table]);
      v->flags.store(kVersionReady, std::memory_order_release);
    }
  }
  return true;
}

bool BohmEngine::TryExecute(uint32_t exec_id, BohmTxn* txn, uint32_t depth) {
  uint32_t expected = static_cast<uint32_t>(ExecState::kUnprocessed);
  if (!txn->state.compare_exchange_strong(
          expected, static_cast<uint32_t>(ExecState::kExecuting),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    // Already Executing on another thread (caller backs off) or Complete.
    return expected == static_cast<uint32_t>(ExecState::kComplete);
  }

  // Resolve every read dependency before evaluating any logic: all reads
  // must observe ready versions. If a producer cannot be evaluated right
  // now (claimed by another thread, or the recursion bound is hit), put
  // the transaction back to Unprocessed; a responsible thread will retry
  // (Section 3.3.1).
  for (uint32_t i = 0; i < txn->n_reads; ++i) {
    ReadRef& r = txn->reads[i];
    if (!r.resolved) {
      r.version = ResolveRead(r, txn->ts);
      r.resolved = true;
    }
    if (r.version != nullptr && !EnsureReady(exec_id, r.version, depth + 1)) {
      txn->state.store(static_cast<uint32_t>(ExecState::kUnprocessed),
                       std::memory_order_release);
      return false;
    }
  }

  ThreadStats& stats = stats_.Slice(exec_id);
  BohmOps ops(txn, &stats);
  txn->proc->Run(ops);

  if (ops.aborted()) {
    if (!FillAbortedWrites(exec_id, txn, depth)) {
      // A preceding version was not producible right now; back out. The
      // re-run is safe: procedures are deterministic in their reads, and
      // the annotated read versions are fixed.
      txn->state.store(static_cast<uint32_t>(ExecState::kUnprocessed),
                       std::memory_order_release);
      return false;
    }
    txn->logic_aborted = true;
    stats.logic_aborts.Inc();
  } else {
    for (uint32_t i = 0; i < txn->n_writes; ++i) {
      const uint32_t flags =
          kVersionReady | (txn->writes[i].tombstone ? kVersionTombstone : 0);
      txn->writes[i].version->flags.store(flags, std::memory_order_release);
    }
    // Submit→commit-ack latency: stamped at Submit(), recorded here at
    // commit publication. Rounded up to a whole microsecond so a
    // committed transaction never contributes a zero sample, and recorded
    // before the commit counter so any fold that observes the commit
    // (e.g. a WaitForIdle-quiesced snapshot) also observes its sample —
    // that ordering is what makes histogram count == commits exact at
    // quiescent points.
    const uint64_t lat_ns = MonotonicNanos() - txn->submit_tick;
    stats.latency_us.Record(lat_ns / 1000 + (lat_ns % 1000 != 0 ? 1 : 0));
    stats.commits.Inc();
  }
  txn->state.store(static_cast<uint32_t>(ExecState::kComplete),
                   std::memory_order_release);
  return true;
}

}  // namespace bohm
