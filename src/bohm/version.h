// Record versions, exactly the layout of Figure 3 in the paper:
// {begin timestamp, end timestamp, txn pointer, data, prev pointer}.
//
// A version is created by a concurrency-control thread as an uninitialized
// placeholder (Section 3.2.2); its data is produced later by an execution
// thread evaluating the producing transaction (Section 3.3.1). The ready
// flag is the "has the data been produced yet" signal execution threads
// block on — the one place in Bohm where writes may block reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"
#include "txn/key.h"

namespace bohm {

class BohmTxn;

/// Timestamp of versions loaded before the engine starts.
inline constexpr uint64_t kLoadTs = 0;
/// "End timestamp = infinity" for the newest version of a record.
inline constexpr uint64_t kInfinityTs = UINT64_MAX;

/// Version state bits (in `flags`).
inline constexpr uint32_t kVersionReady = 1u << 0;
/// The record logically does not exist at this version (deleted record, or
/// an aborted insert whose placeholder must behave as "absent").
inline constexpr uint32_t kVersionTombstone = 1u << 1;

struct Version {
  /// Timestamp of the transaction that created this version. Immutable
  /// after the version is published by its CC thread.
  uint64_t begin_ts = kLoadTs;
  /// Timestamp of the transaction that superseded this version;
  /// kInfinityTs while this is the newest version. Written only by the one
  /// CC thread that owns the record's partition.
  std::atomic<uint64_t> end_ts{kInfinityTs};
  /// kVersionReady once the data has been produced (plus kVersionTombstone
  /// when the record is absent at this version).
  std::atomic<uint32_t> flags{0};
  /// Table the version belongs to; selects the allocator size class.
  TableId table = 0;
  /// CC thread whose VersionAllocator produced this version. With
  /// adaptive repartitioning the retiring thread may differ from the
  /// allocating one (the partition migrated in between); GC routes the
  /// retiree back to this thread's free lists (src/bohm/gc.cc). Stamped
  /// by Alloc, immutable afterwards.
  uint32_t allocator = 0;
  /// The transaction that must be evaluated to obtain the data
  /// (Figure 3's "Txn Pointer"); nullptr for loaded versions.
  BohmTxn* producer = nullptr;
  /// The version this one superseded (Figure 3's "Prev Pointer").
  Version* prev = nullptr;

  /// Payload bytes follow the struct.
  void* data() { return this + 1; }
  const void* data() const { return this + 1; }

  bool ready() const {
    return (flags.load(std::memory_order_acquire) & kVersionReady) != 0;
  }
  bool tombstone() const {
    return (flags.load(std::memory_order_acquire) & kVersionTombstone) != 0;
  }
};

/// Thread-local version allocator with one free list per table (versions
/// are fixed-size per table). The GC (Section 3.3.2) recycles versions
/// through these free lists, so steady-state version turnover performs no
/// malloc/free and no cross-thread memory traffic: a version is always
/// allocated, retired, and recycled by the same CC thread.
class VersionAllocator {
 public:
  explicit VersionAllocator(size_t arena_block_bytes = Arena::kDefaultBlockBytes)
      : arena_(arena_block_bytes) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(VersionAllocator);

  /// Id of the CC thread that owns this allocator, stamped into every
  /// version it produces (Version::allocator). Set once at engine
  /// construction, before any Alloc.
  void set_owner(uint32_t owner) { owner_ = owner; }

  /// Allocates a version with `record_size` payload bytes for `table`.
  Version* Alloc(TableId table, uint32_t record_size);

  /// Returns a version to the per-table free list. The caller must own the
  /// version (same-thread discipline).
  void Free(Version* v);

  /// Number of versions currently parked on free lists (test hook).
  size_t FreeCount() const;
  size_t allocated_bytes() const { return arena_.allocated_bytes(); }

 private:
  Arena arena_;
  uint32_t owner_ = 0;
  std::vector<std::vector<Version*>> free_lists_;  // indexed by table id
};

}  // namespace bohm
