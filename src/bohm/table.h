// The Bohm versioned table: a hash index split into physical partitions
// (Section 3.2.2), each owned by one concurrency-control thread.
//
// Ownership discipline is the heart of the design: a record's index entry
// and head pointer are only ever *written* by the single CC thread that
// owns the partition the record hashes to. The hash is static; the
// partition -> thread assignment is the epoch-versioned map in
// bohm/repartition.h (identity when adaptive mode is off), and it only
// changes *between* batches, so within any batch every index mutation is
// uncontended by construction. Execution
// threads *read* entries concurrently ("readers need only spin on
// inconsistent or stale data", Section 3.3.1): entries are published into
// bucket chains with release stores and never removed, so a reader either
// sees a fully-initialized entry or does not see it yet.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/macros.h"
#include "bohm/version.h"
#include "storage/schema.h"

namespace bohm {

/// Index entry: one per record ever written. The head pointer tracks the
/// newest version (Figure 3's per-record chain).
struct BohmIndexEntry {
  Key key = 0;
  std::atomic<Version*> head{nullptr};
  BohmIndexEntry* next = nullptr;  // bucket chain, set before publication
};

/// One table, internally split into `partitions` independent hash indexes.
class BohmTable {
 public:
  BohmTable(const TableSpec& spec, uint32_t partitions);
  BOHM_DISALLOW_COPY_AND_ASSIGN(BohmTable);

  const TableSpec& spec() const { return spec_; }
  uint32_t partitions() const { return static_cast<uint32_t>(parts_.size()); }

  /// Physical partition of a key (static hash; the owning CC thread is
  /// the current partition map's assignment for this partition).
  uint32_t PartitionOf(Key key) const {
    return static_cast<uint32_t>(HashKey(key) % parts_.size());
  }

  /// Read-only lookup; safe from any thread concurrently with owner
  /// inserts. Returns nullptr when the record has never been written. An
  /// entry returned by Find always has a fully-initialized version chain
  /// (head != nullptr): GetOrInsert installs the first version before the
  /// release-store that publishes the entry.
  BohmIndexEntry* Find(uint32_t partition, Key key) const;

  /// Lookup-or-insert; must only be called by the owning CC thread of
  /// `partition` (or single-threaded during load). When `key` is absent a
  /// new entry is created with `initial_head` (must be non-null and fully
  /// initialized — begin_ts/producer/prev set) installed as the version
  /// chain head *before* the entry is release-published into the bucket
  /// chain, so concurrent Find()s never observe a null or partial chain.
  /// `*inserted` reports whether the entry was created; when false the
  /// caller owns linking its version behind the existing head (the
  /// passed `initial_head` is NOT installed).
  BohmIndexEntry* GetOrInsert(uint32_t partition, Key key,
                              Version* initial_head, bool* inserted);

  /// Number of entries in a partition (test hook; owner thread only).
  uint64_t EntryCount(uint32_t partition) const {
    return parts_[partition]->count;
  }

  /// Longest bucket chain in a partition (test hook; owner thread only).
  /// Regression observable for the partition/bucket hash aliasing bug:
  /// bucketing by the same hash that chose the partition left only
  /// buckets/partitions slots reachable per partition, so chains grew
  /// ~partitions times longer than the ~1-entry-per-bucket sizing
  /// intends.
  uint64_t MaxChainLength(uint32_t partition) const {
    const Partition& p = *parts_[partition];
    uint64_t longest = 0;
    for (uint64_t b = 0; b <= p.mask; ++b) {
      uint64_t len = 0;
      // relaxed: owner-thread/test-only accounting walk; entry fields
      // were published by the chain's release stores before the walk.
      for (BohmIndexEntry* e = p.chains[b].load(std::memory_order_relaxed);
           e != nullptr; e = e->next) {
        ++len;
      }
      longest = std::max(longest, len);
    }
    return longest;
  }

 private:
  struct Partition {
    explicit Partition(uint64_t buckets)
        : mask(buckets - 1), arena(1u << 16) {
      chains = std::make_unique<std::atomic<BohmIndexEntry*>[]>(buckets);
      for (uint64_t i = 0; i < buckets; ++i) {
        // relaxed: single-threaded construction; the table is published
        // to workers only after the constructor returns.
        chains[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    uint64_t mask;
    std::unique_ptr<std::atomic<BohmIndexEntry*>[]> chains;
    Arena arena;        // entries; touched only by the owning CC thread
    uint64_t count = 0;
  };

  TableSpec spec_;
  std::vector<std::unique_ptr<Partition>> parts_;
};

/// All Bohm tables of a database instance.
class BohmDatabase {
 public:
  BohmDatabase(const Catalog& catalog, uint32_t partitions);
  BOHM_DISALLOW_COPY_AND_ASSIGN(BohmDatabase);

  BohmTable* table(TableId id) const {
    return id < tables_.size() ? tables_[id].get() : nullptr;
  }
  const Catalog& catalog() const { return catalog_; }
  uint32_t partitions() const { return partitions_; }

 private:
  Catalog catalog_;
  uint32_t partitions_;
  std::vector<std::unique_ptr<BohmTable>> tables_;
};

}  // namespace bohm
