// The Bohm versioned table: a hash index partitioned across concurrency-
// control threads (Section 3.2.2).
//
// Ownership discipline is the heart of the design: a record's index entry
// and head pointer are only ever *written* by the single CC thread whose
// partition the record hashes to — across all transactions, forever. That
// makes every index mutation uncontended by construction. Execution
// threads *read* entries concurrently ("readers need only spin on
// inconsistent or stale data", Section 3.3.1): entries are published into
// bucket chains with release stores and never removed, so a reader either
// sees a fully-initialized entry or does not see it yet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/macros.h"
#include "bohm/version.h"
#include "storage/schema.h"

namespace bohm {

/// Index entry: one per record ever written. The head pointer tracks the
/// newest version (Figure 3's per-record chain).
struct BohmIndexEntry {
  Key key = 0;
  std::atomic<Version*> head{nullptr};
  BohmIndexEntry* next = nullptr;  // bucket chain, set before publication
};

/// One table, internally split into `partitions` independent hash indexes.
class BohmTable {
 public:
  BohmTable(const TableSpec& spec, uint32_t partitions);
  BOHM_DISALLOW_COPY_AND_ASSIGN(BohmTable);

  const TableSpec& spec() const { return spec_; }
  uint32_t partitions() const { return static_cast<uint32_t>(parts_.size()); }

  /// Partition (= owning CC thread) of a key.
  uint32_t PartitionOf(Key key) const {
    return static_cast<uint32_t>(HashKey(key) % parts_.size());
  }

  /// Read-only lookup; safe from any thread concurrently with owner
  /// inserts. Returns nullptr when the record has never been written. An
  /// entry returned by Find always has a fully-initialized version chain
  /// (head != nullptr): GetOrInsert installs the first version before the
  /// release-store that publishes the entry.
  BohmIndexEntry* Find(uint32_t partition, Key key) const;

  /// Lookup-or-insert; must only be called by the owning CC thread of
  /// `partition` (or single-threaded during load). When `key` is absent a
  /// new entry is created with `initial_head` (must be non-null and fully
  /// initialized — begin_ts/producer/prev set) installed as the version
  /// chain head *before* the entry is release-published into the bucket
  /// chain, so concurrent Find()s never observe a null or partial chain.
  /// `*inserted` reports whether the entry was created; when false the
  /// caller owns linking its version behind the existing head (the
  /// passed `initial_head` is NOT installed).
  BohmIndexEntry* GetOrInsert(uint32_t partition, Key key,
                              Version* initial_head, bool* inserted);

  /// Number of entries in a partition (test hook; owner thread only).
  uint64_t EntryCount(uint32_t partition) const {
    return parts_[partition]->count;
  }

 private:
  struct Partition {
    explicit Partition(uint64_t buckets)
        : mask(buckets - 1), arena(1u << 16) {
      chains = std::make_unique<std::atomic<BohmIndexEntry*>[]>(buckets);
      for (uint64_t i = 0; i < buckets; ++i) {
        // relaxed: single-threaded construction; the table is published
        // to workers only after the constructor returns.
        chains[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    uint64_t mask;
    std::unique_ptr<std::atomic<BohmIndexEntry*>[]> chains;
    Arena arena;        // entries; touched only by the owning CC thread
    uint64_t count = 0;
  };

  TableSpec spec_;
  std::vector<std::unique_ptr<Partition>> parts_;
};

/// All Bohm tables of a database instance.
class BohmDatabase {
 public:
  BohmDatabase(const Catalog& catalog, uint32_t partitions);
  BOHM_DISALLOW_COPY_AND_ASSIGN(BohmDatabase);

  BohmTable* table(TableId id) const {
    return id < tables_.size() ? tables_[id].get() : nullptr;
  }
  const Catalog& catalog() const { return catalog_; }
  uint32_t partitions() const { return partitions_; }

 private:
  Catalog catalog_;
  uint32_t partitions_;
  std::vector<std::unique_ptr<BohmTable>> tables_;
};

}  // namespace bohm
