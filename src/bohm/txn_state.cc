#include "bohm/txn_state.h"

namespace bohm {

ReadRef* BohmTxn::FindRead(TableId table, Key key) {
  for (uint32_t i = 0; i < n_reads; ++i) {
    if (reads[i].rec.table == table && reads[i].rec.key == key) {
      return &reads[i];
    }
  }
  return nullptr;
}

WriteRef* BohmTxn::FindWrite(TableId table, Key key) {
  for (uint32_t i = 0; i < n_writes; ++i) {
    if (writes[i].rec.table == table && writes[i].rec.key == key) {
      return &writes[i];
    }
  }
  return nullptr;
}

}  // namespace bohm
