// The concurrency-control stage (Sections 3.2.2–3.2.4), streamed.
//
// Every CC thread walks every batch in log order and, for each
// transaction, processes exactly those read/write-set elements whose
// physical partition (static hash of the key) it currently owns under
// the batch's partition map (identity when adaptive repartitioning is
// off). The decision is purely thread-local; two CC threads never touch
// the same record inside one map epoch, and epoch handoff is ordered by
// the watermark/feed edges (rule R7), so version insertion needs no
// synchronization. The only cross-thread
// coordination is one release store per batch: each thread advances its
// own cc_watermark_ slot when its partition slice is done and streams
// straight into the next batch — it never waits for its peers. The
// execution stage folds min(cc_watermark) to admit batches, so a thread
// that falls behind delays execution of that batch but stalls nobody in
// this stage (the barrier this replaces parked every CC thread once per
// batch).

#include "common/spin.h"
#include "bohm/engine.h"

namespace bohm {

void BohmEngine::CcLoop(uint32_t cc_id) {
  SpscQueue<int64_t>& feed = *cc_feed_[cc_id];
  StallSlot& stall = *cc_stall_[cc_id];
  const BohmTestHooks* hooks = hooks_.get();
  for (;;) {
    int64_t b;
    if (!feed.TryPop(&b)) {
      // Feed dry: wait for the sequencer to seal the next batch, charging
      // the wait to this stage's stall attribution. Shutdown: once the
      // sequencer is done (its done flag is release-stored after the last
      // feed push), a failed re-poll means the feed is drained for good.
      const uint64_t stall_start = MonotonicNanos();
      SpinWait wait;
      for (;;) {
        if (feed.TryPop(&b)) break;
        if (sequencer_done_.load(std::memory_order_acquire)) {
          if (feed.TryPop(&b)) break;
          stall.ns.Inc(MonotonicNanos() - stall_start);
          return;
        }
        wait.Pause();
      }
      stall.ns.Inc(MonotonicNanos() - stall_start);
    }

    Batch* batch = ring_.Slot(b);
    if (hooks != nullptr && hooks->cc_batch_start) {
      hooks->cc_batch_start(cc_id, b);
    }

    // Recycle versions whose retirement batch the execution layer has
    // fully passed (Condition 3, Section 3.3.2). Amortized once per batch.
    if (cfg_.gc_enabled) DrainRetired(cc_id);

    // Interest skipping needs a defined shift: cc_id >= 64 only happens
    // with preprocessing disabled (Start() validates), where every txn
    // carries the all-ones mask anyway.
    const uint64_t my_bit = cc_id < 64 ? 1ull << cc_id : 0;
    for (BohmTxn* txn : batch->txns) {
      if (my_bit != 0 && (txn->cc_interest & my_bit) == 0) continue;
      CcProcessTxn(cc_id, txn, b);
    }

    if (hooks != nullptr && hooks->cc_batch_end) {
      hooks->cc_batch_end(cc_id, b);
    }
    // Epoch-watermark publication (replaces the per-batch barrier): the
    // release store orders every annotation and placeholder this thread
    // wrote into batch b before it, so an exec thread whose watermark
    // fold admits b observes them all (docs/CONCURRENCY.md rule R5).
    cc_watermark_.Advance(cc_id, b);
  }
}

void BohmEngine::CcProcessTxn(uint32_t cc_id, BohmTxn* txn, int64_t batch_id) {
  CcState& st = *cc_state_[cc_id];
  // Route by the batch's partition map, not by thread id: the physical
  // partition (static hash) selects the index shard, the map says whether
  // this thread currently owns it (rule R7). With adaptive off the map is
  // the identity, reproducing the original PartitionOf(key) == cc_id
  // routing. The owners array was published by the feed push (rule R5)
  // and stays alive until the batch is fully executed.
  const Batch* batch = ring_.Slot(batch_id);
  const uint32_t* owners = batch->owners;
  RelaxedCounter* touch = st.touch.get();

  // Reads first: the annotation must reference the version that precedes
  // any placeholder this same transaction inserts (RMW reads observe the
  // pre-update value). Because CC threads process transactions in
  // timestamp order, the current head of a record in this partition *is*
  // the correct version for this transaction to read (Section 3.2.3).
  if (cfg_.read_annotation) {
    for (uint32_t i = 0; i < txn->n_reads; ++i) {
      ReadRef& r = txn->reads[i];
      BohmTable* table = db_.table(r.rec.table);
      const uint32_t part = table->PartitionOf(r.rec.key);
      if (owners[part] != cc_id) continue;
      if (touch != nullptr) touch[part].Inc();
      BohmIndexEntry* entry = table->Find(part, r.rec.key);
      // relaxed: this CC thread is the current single writer of heads in
      // the partitions it owns (ownership handoff itself rides the
      // watermark/feed release-acquire edges, rule R7), so it reads back
      // the latest store; cross-thread visibility of the annotation
      // itself rides the cc_watermark_ release/acquire edge (rule R5).
      r.version =
          entry ? entry->head.load(std::memory_order_relaxed) : nullptr;
      r.resolved = true;
    }
  }

  // Writes: insert an uninitialized placeholder version per element
  // (Section 3.2.2, Figure 3). The placeholder is fully initialized
  // (begin_ts, producer, prev) *before* it becomes reachable — either via
  // GetOrInsert's pre-publication head install (new record) or via the
  // head release-store below (existing record) — so a concurrent reader
  // never observes a partial version.
  for (uint32_t i = 0; i < txn->n_writes; ++i) {
    WriteRef& w = txn->writes[i];
    BohmTable* table = db_.table(w.rec.table);
    const uint32_t part = table->PartitionOf(w.rec.key);
    if (owners[part] != cc_id) continue;
    if (touch != nullptr) touch[part].Inc();

    Version* v = st.alloc.Alloc(w.rec.table, record_sizes_[w.rec.table]);
    v->begin_ts = txn->ts;
    v->producer = txn;  // prev stays nullptr from Alloc until linked below
    st.versions_created.Inc();

    bool inserted = false;
    BohmIndexEntry* entry = table->GetOrInsert(part, w.rec.key, v, &inserted);
    if (!inserted) {
      // relaxed: this CC thread is the current single writer of this
      // record's head (single ownership at any moment; handoff rides the
      // R7 edges, so the previous owner's stores are visible), and
      // readers synchronize via the release below (or the entry
      // publication).
      Version* old = entry->head.load(std::memory_order_relaxed);
      v->prev = old;
      if (old != nullptr) {
        // Invalidate the superseded version (its end timestamp becomes
        // this transaction's timestamp) and queue it for collection once
        // every execution thread has finished this batch.
        old->end_ts.store(txn->ts, std::memory_order_release);
        if (cfg_.gc_enabled) RetireVersion(cc_id, old, batch_id);
      }
      entry->head.store(v, std::memory_order_release);
    }
    w.version = v;
  }
}

}  // namespace bohm
