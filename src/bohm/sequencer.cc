// The sequencer stage (Section 3.2.1): a single thread that appends every
// input transaction to a logical log. A transaction's timestamp is its
// position in that log — timestamp assignment is therefore an uncontended,
// single-writer operation, in contrast to the global fetch-and-increment
// counters of conventional multi-version systems (Section 2.1).

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/spin.h"
#include "bohm/engine.h"
#include "log/codec.h"

namespace bohm {

// Hands the sealed batch to the log-writer thread (sequencer thread
// only). Runs *before* the batch is announced to the pipeline so the
// writer sees records in exactly seal order; the only wait here is ring
// back-pressure, attributed to the log stall counter. Every sealed batch
// gets a record — even one whose transactions are all non-loggable
// read-only observers produces an (empty) record, because the durable-ack
// gate in ExecLoop waits for seqno log_base_ + id and seqnos must stay
// dense for the recovery scan.
void BohmEngine::LogSealedBatch(const Batch& batch, int64_t id) {
  if (log_writer_ == nullptr) return;
  if (replaying_.load(std::memory_order_acquire)) return;
  // Degraded mode: the log is dead, Submit is already rejecting; batches
  // still in flight execute without durability rather than wedging.
  if (log_writer_->failed()) return;
  log_txn_scratch_.clear();
  for (const BohmTxn* txn : batch.txns) {
    if (txn->proc->codec_id() != kNotLoggable) {
      log_txn_scratch_.push_back(txn->proc);
    }
  }
  std::string payload;
  EncodeBatchPayload(&payload, log_txn_scratch_);
  const uint64_t stall_ns =
      log_writer_->Append(log_base_ + static_cast<uint64_t>(id),
                          std::move(payload));
  if (stall_ns != 0) seq_log_stall_.ns.Inc(stall_ns);
}

// Folds the cumulative per-partition touch counters across CC threads
// and hands them to the repartition controller, which may stage a
// pending migration (promoted later once its watermark gate opens).
void BohmEngine::FoldTouchCounters() {
  const uint32_t parts = db_.partitions();
  std::fill(touch_totals_.begin(), touch_totals_.end(), 0);
  for (const auto& st : cc_state_) {
    const RelaxedCounter* touch = st->touch.get();
    for (uint32_t p = 0; p < parts; ++p) {
      touch_totals_[p] += touch[p].Get();
    }
  }
  repart_->Observe(touch_totals_);
}

void BohmEngine::SealBatch(Batch* batch, int64_t id) {
  batch->id = id;
  LogSealedBatch(*batch, id);
  // Publish the sealed batch by announcing its id through every
  // consumer's SPSC feed ring: the ring's release store is what makes the
  // slot contents the sequencer just wrote visible to that consumer
  // (docs/CONCURRENCY.md rule R5). The pushes cannot fail — feed capacity
  // is at least the pipeline depth and the slot-reuse back-pressure above
  // bounds un-consumed sealed batches by the depth.
  for (auto& feed : cc_feed_) {
    bool pushed = feed->TryPush(id);
    assert(pushed && "cc feed overflow: back-pressure invariant broken");
    (void)pushed;
  }
  for (auto& feed : exec_feed_) {
    bool pushed = feed->TryPush(id);
    assert(pushed && "exec feed overflow: back-pressure invariant broken");
    (void)pushed;
  }
  last_sealed_batch_.store(id, std::memory_order_release);
}

// Thread-safety: `next_batch_id_` and `next_ts_` are plain fields written
// only by this single sequencer thread (docs/CONCURRENCY.md,
// "single-writer ownership"); downstream stages learn about a batch solely
// through SealBatch's release stores, which order everything the
// sequencer wrote into the batch before them.
void BohmEngine::SequencerLoop() {
  SpinWait wait;
  for (;;) {
    const int64_t id = next_batch_id_;
    // Back-pressure: slot (id mod depth) is reusable only once every
    // execution thread has finished the batch that used it previously
    // (batch id - depth). This is the only place the sequencer waits on
    // downstream progress; the time spent here is the sequencer's stall
    // attribution.
    Batch* batch = ring_.Slot(id);
    const int64_t prev_occupant = id - static_cast<int64_t>(ring_.depth());
    if (Watermark() < prev_occupant) {
      const uint64_t stall_start = MonotonicNanos();
      wait.Reset();
      while (Watermark() < prev_occupant) wait.Pause();
      seq_stall_.ns.Inc(MonotonicNanos() - stall_start);
    }
    batch->ResetForReuse();

    // Adaptive repartitioning (rule R7): at the fold cadence, read the
    // touch counters and maybe stage a migration; then fetch the map this
    // batch will be sequenced under (promoting a gated pending map once
    // every source thread's cc watermark has passed id - 1). Also retire
    // map versions no in-flight batch can still reference.
    if (cfg_.adaptive.enabled && id > 0 &&
        id % static_cast<int64_t>(cfg_.adaptive.interval_batches) == 0) {
      FoldTouchCounters();
    }
    const PartitionMapVersion* pmap = repart_->MapForBatch(id, cc_watermark_);
    const uint32_t* owners = pmap->owners.data();
    batch->part_epoch = pmap->epoch;
    batch->owners = owners;
    repart_->Prune(Watermark());

    // Fill the batch. Seal early when the input queue runs dry so that a
    // trickle of transactions does not wait for a full batch.
    bool stop_after = false;
    wait.Reset();
    while (batch->txns.size() < cfg_.batch_size) {
      InputItem item;
      if (input_.TryPop(&item)) {
        wait.Reset();
        StoredProcedure* raw = item.proc;
        if (item.owned) batch->procs.emplace_back(raw);
        const ReadWriteSet& set = raw->rwset();
        auto* txn = batch->arena.New<BohmTxn>();
        txn->proc = raw;
        txn->ts = next_ts_++;
        txn->batch_id = id;
        txn->submit_tick = item.submit_tick;
        txn->n_reads = static_cast<uint32_t>(set.reads().size());
        txn->n_writes = static_cast<uint32_t>(set.writes().size());
        if (txn->n_reads > 0) {
          txn->reads = static_cast<ReadRef*>(batch->arena.Allocate(
              sizeof(ReadRef) * txn->n_reads, alignof(ReadRef)));
          for (uint32_t i = 0; i < txn->n_reads; ++i) {
            txn->reads[i] = ReadRef{set.reads()[i], nullptr, false};
          }
        }
        if (txn->n_writes > 0) {
          txn->writes = static_cast<WriteRef*>(batch->arena.Allocate(
              sizeof(WriteRef) * txn->n_writes, alignof(WriteRef)));
          for (uint32_t i = 0; i < txn->n_writes; ++i) {
            txn->writes[i] = WriteRef{set.writes()[i], nullptr, false};
          }
        }
        if (cfg_.interest_preprocessing) {
          // Pre-processing (Section 3.2.2): mark which CC *threads* this
          // transaction has work for, under this batch's partition map,
          // so CC threads skip it wholesale. Owner ids are < cc_threads
          // <= 64 (Start() validates), so the shift is always defined —
          // partition counts above 64 are fine.
          uint64_t mask = 0;
          for (uint32_t i = 0; i < txn->n_writes; ++i) {
            const RecordId& rec = txn->writes[i].rec;
            mask |= 1ull << owners[db_.table(rec.table)->PartitionOf(rec.key)];
          }
          if (cfg_.read_annotation) {
            for (uint32_t i = 0; i < txn->n_reads; ++i) {
              const RecordId& rec = txn->reads[i].rec;
              mask |=
                  1ull << owners[db_.table(rec.table)->PartitionOf(rec.key)];
            }
          }
          txn->cc_interest = mask;
        }
        batch->txns.push_back(txn);
        continue;
      }
      // Queue empty.
      if (!batch->txns.empty()) break;  // seal a partial batch immediately
      if (stopping_.load(std::memory_order_acquire)) {
        stop_after = true;
        break;
      }
      wait.Pause();
    }

    if (!batch->txns.empty()) {
      SealBatch(batch, id);
      ++next_batch_id_;
    }
    if (stop_after) break;
  }
  sequencer_done_.store(true, std::memory_order_release);
}

}  // namespace bohm
