// Per-transaction state inside the Bohm pipeline.
//
// A BohmTxn wraps a StoredProcedure with (1) its timestamp — its position
// in the sequencer's log (Section 3.2.1) — and (2) the version references
// resolved by the CC phase: one placeholder per write-set element and one
// annotated read reference per read-set element (the read-set optimization
// of Section 3.2.3). Execution threads claim transactions through the
// Unprocessed → Executing → Complete state machine of Section 3.3.1.
#pragma once

#include <atomic>
#include <cstdint>

#include "bohm/version.h"
#include "txn/procedure.h"

namespace bohm {

enum class ExecState : uint32_t {
  kUnprocessed = 0,  // logic not yet evaluated
  kExecuting = 1,    // an execution thread holds exclusive access
  kComplete = 2,     // logic evaluated, all placeholders filled
};

/// A read-set element with the version reference the CC phase annotated
/// ("a reference to the correct version of the record to read",
/// Section 3.2.3). nullptr when the record does not exist at this
/// transaction's timestamp, or when annotation is disabled (the executor
/// then resolves it by chain traversal and caches the result here).
struct ReadRef {
  RecordId rec;
  Version* version = nullptr;
  bool resolved = false;  // true once `version` is authoritative
};

/// A write-set element with its pre-inserted placeholder version.
struct WriteRef {
  RecordId rec;
  Version* version = nullptr;
  /// Set by the executing thread when the transaction deleted the record:
  /// the placeholder is published as a tombstone.
  bool tombstone = false;
};

class BohmTxn {
 public:
  StoredProcedure* proc = nullptr;
  uint64_t ts = 0;
  int64_t batch_id = 0;
  /// MonotonicNanos() at Submit() — the client-side start of the
  /// end-to-end latency measurement. Carried through the sequencer so the
  /// execution stage can record submit→commit-ack latency at commit
  /// publication.
  uint64_t submit_tick = 0;
  /// Bit i set when CC thread i has work in this transaction (computed by
  /// the sequencer when interest pre-processing is enabled — the
  /// Section 3.2.2 scalability mechanism; all-ones otherwise).
  uint64_t cc_interest = ~0ull;

  ReadRef* reads = nullptr;    // arena array, length n_reads
  uint32_t n_reads = 0;
  WriteRef* writes = nullptr;  // arena array, length n_writes
  uint32_t n_writes = 0;

  std::atomic<uint32_t> state{static_cast<uint32_t>(ExecState::kUnprocessed)};
  /// Set by the executing thread before Complete: the transaction's logic
  /// requested an abort (its placeholders were filled with the preceding
  /// versions' values, Section 3.3.1).
  bool logic_aborted = false;

  ExecState LoadState(std::memory_order mo = std::memory_order_acquire) const {
    return static_cast<ExecState>(state.load(mo));
  }
  bool IsComplete() const { return LoadState() == ExecState::kComplete; }

  /// Finds this transaction's read/write ref for a record (linear scan —
  /// OLTP footprints are a handful of elements). nullptr when undeclared.
  ReadRef* FindRead(TableId table, Key key);
  WriteRef* FindWrite(TableId table, Key key);
};

static_assert(std::is_trivially_destructible_v<BohmTxn>,
              "BohmTxn lives in batch arenas");

}  // namespace bohm
