#include "bohm/repartition.h"

#include <algorithm>
#include <cassert>

namespace bohm {

RepartitionController::RepartitionController(uint32_t partitions,
                                             uint32_t cc_threads,
                                             const AdaptiveCcConfig& cfg)
    : partitions_(partitions == 0 ? 1 : partitions),
      cc_threads_(cc_threads == 0 ? 1 : cc_threads),
      cfg_(cfg),
      last_totals_(partitions_, 0),
      load_scratch_(cc_threads_, 0) {
  auto initial = std::make_unique<PartitionMapVersion>();
  initial->epoch = 0;
  initial->owners.resize(partitions_);
  for (uint32_t p = 0; p < partitions_; ++p) {
    initial->owners[p] = p % cc_threads_;
  }
  current_ = initial.get();
  versions_.push_back(std::move(initial));
}

const PartitionMapVersion* RepartitionController::MapForBatch(
    int64_t id, const WatermarkSet& cc_watermark) {
  if (pending_ != nullptr) {
    // Gate: every thread that loses a partition must have finished all
    // batches sealed under the old map (ids < id). Its watermark Advance
    // is a release store ordered after its head stores for the migrated
    // partitions; the acquire Get here plus the sequencer's release feed
    // push of batch `id` hands that visibility to the new owner (R7).
    bool ready = true;
    for (uint32_t src : pending_sources_) {
      if (cc_watermark.Get(src) < id - 1) {
        ready = false;
        break;
      }
    }
    if (ready) PromotePending();
  }
  current_->last_batch = id;
  return current_;
}

void RepartitionController::PromotePending() {
  pending_->epoch = current_->epoch + 1;
  current_ = pending_.get();
  versions_.push_back(std::move(pending_));
  pending_sources_.clear();
  // relaxed: sequencer is the single writer of these monitors, so the
  // read-back of its own last value needs no ordering; the release store
  // publishes the new value to Stats()/test readers.
  migrations_.store(migrations_.load(std::memory_order_relaxed) +
                        pending_moves_,
                    std::memory_order_release);
  epoch_.store(current_->epoch, std::memory_order_release);
  pending_moves_ = 0;
}

void RepartitionController::Observe(const std::vector<uint64_t>& touch_totals) {
  assert(touch_totals.size() == partitions_);
  // Per-partition deltas since the previous fold, accumulated into
  // per-thread loads under the current assignment.
  std::fill(load_scratch_.begin(), load_scratch_.end(), 0);
  uint64_t total = 0;
  for (uint32_t p = 0; p < partitions_; ++p) {
    const uint64_t delta = touch_totals[p] - last_totals_[p];
    load_scratch_[current_->owners[p]] += delta;
    total += delta;
  }
  const std::vector<uint64_t> prev = last_totals_;
  last_totals_ = touch_totals;

  uint32_t hottest = 0;
  for (uint32_t t = 1; t < cc_threads_; ++t) {
    if (load_scratch_[t] > load_scratch_[hottest]) hottest = t;
  }
  const double avg =
      static_cast<double>(total) / static_cast<double>(cc_threads_);
  const uint64_t gauge =
      total == 0 ? 1000
                 : static_cast<uint64_t>(
                       static_cast<double>(load_scratch_[hottest]) * 1000.0 /
                       avg);
  // relaxed: sequencer is the single writer of this gauge; the release
  // store publishes it to Stats() readers.
  imbalance_x1000_.store(gauge, std::memory_order_release);

  if (cc_threads_ < 2) return;
  if (pending_ != nullptr) return;  // one migration in flight at a time

  if (cfg_.force_rotate) {
    // Test mode: shift every partition to the next thread. Every thread
    // is a source, so the promotion gate must observe all of them.
    auto next = std::make_unique<PartitionMapVersion>();
    next->owners.resize(partitions_);
    for (uint32_t p = 0; p < partitions_; ++p) {
      next->owners[p] = (current_->owners[p] + 1) % cc_threads_;
    }
    pending_ = std::move(next);
    pending_sources_.clear();
    for (uint32_t t = 0; t < cc_threads_; ++t) pending_sources_.push_back(t);
    pending_moves_ = partitions_;
    // relaxed: sequencer-only counter; release publishes to monitors.
    decisions_.store(decisions_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
    return;
  }

  if (total == 0) return;
  if (static_cast<double>(load_scratch_[hottest]) <=
      cfg_.max_imbalance * avg) {
    return;
  }

  // Greedy rebalance: repeatedly move the hottest movable partition from
  // the most-loaded to the least-loaded thread. A partition is movable
  // when it saw traffic and moving it strictly narrows the gap (a single
  // mega-hot partition that dominates its thread stays put — moving it
  // would just relocate the bottleneck; its *cold siblings* move away
  // instead, which is what actually unloads the thread).
  std::vector<uint32_t> owners = current_->owners;
  std::vector<uint64_t> loads = load_scratch_;
  std::vector<uint64_t> delta(partitions_);
  for (uint32_t p = 0; p < partitions_; ++p) {
    delta[p] = touch_totals[p] - prev[p];
  }
  uint32_t moves = 0;
  std::vector<uint32_t> sources;
  const uint32_t max_moves = cfg_.max_moves == 0 ? partitions_ : cfg_.max_moves;
  while (moves < max_moves) {
    uint32_t hi = 0, lo = 0;
    for (uint32_t t = 1; t < cc_threads_; ++t) {
      if (loads[t] > loads[hi]) hi = t;
      if (loads[t] < loads[lo]) lo = t;
    }
    const uint64_t gap = loads[hi] - loads[lo];
    if (static_cast<double>(loads[hi]) <= cfg_.max_imbalance * avg) break;
    // Hottest partition of `hi` whose move narrows the gap.
    uint32_t best = partitions_;
    uint64_t best_delta = 0;
    for (uint32_t p = 0; p < partitions_; ++p) {
      if (owners[p] != hi) continue;
      if (delta[p] == 0 || delta[p] >= gap) continue;
      if (delta[p] > best_delta) {
        best_delta = delta[p];
        best = p;
      }
    }
    if (best == partitions_) break;  // nothing movable helps
    owners[best] = lo;
    loads[hi] -= best_delta;
    loads[lo] += best_delta;
    sources.push_back(hi);
    ++moves;
  }
  if (moves == 0) return;

  auto next = std::make_unique<PartitionMapVersion>();
  next->owners = std::move(owners);
  pending_ = std::move(next);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  pending_sources_ = std::move(sources);
  pending_moves_ = moves;
  // relaxed: sequencer-only counter; release publishes to monitors.
  decisions_.store(decisions_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
}

void RepartitionController::Prune(int64_t exec_watermark) {
  // The front is retired once a newer map exists and no batch stamped
  // with it can still be in flight (exec watermark implies the CC
  // watermark, so no CC thread is inside any batch <= last_batch).
  while (versions_.size() > 1 &&
         versions_.front()->last_batch <= exec_watermark) {
    versions_.pop_front();
  }
}

}  // namespace bohm
