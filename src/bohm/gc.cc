// Garbage collection, Condition 3 (Section 3.3.2): a version superseded by
// a transaction in batch b can be recycled once every execution thread has
// finished batch b. The low-watermark is folded on demand from per-thread
// completed-batch counters, each written only by its own execution thread
// — the RCU-flavoured scheme the paper describes, with no shared counter
// updates on the transaction path.

#include "bohm/engine.h"

namespace bohm {

// Thread-safety: `retired` and `alloc` are plain (unlocked) members of
// CcState because each is touched only by the one CC thread that owns the
// partition (docs/CONCURRENCY.md, "single-writer ownership"). Watermark()
// folds the per-thread *execution* watermarks (release-published), so
// every version at or below the watermark is quiescent by the time it is
// freed here. This composes with the streamed CC stage's own watermarks:
// the execution watermark can never pass the CC watermark (execution only
// admits batches the CC fold has passed), so a CC thread running several
// batches ahead merely queues more retirees — it can never free a version
// an execution thread might still read, and slot reuse (also keyed on
// Watermark()) can never recycle a batch a CC thread is still inside.
// Allocator routing (rule R7): free lists are single-threaded, so a
// version must return to the thread that allocated it. Without adaptive
// repartitioning the retiring thread *is* the allocator. After a
// partition migration the first supersede of each migrated record retires
// a version the old owner allocated; it is handed back through the
// allocator's MPSC ring (producers: any CC thread; consumer: the
// allocator's own DrainRetired). A full ring spills to a producer-local
// deque retried next batch — retirement never blocks the CC hot path.
void BohmEngine::RetireVersion(uint32_t cc_id, Version* v, int64_t batch_id) {
  CcState& st = *cc_state_[cc_id];
  if (v->allocator == cc_id) {
    st.retired.emplace_back(v, batch_id);
    return;
  }
  if (!cc_state_[v->allocator]->handback->TryPush({v, batch_id})) {
    st.handback_spill.emplace_back(v, batch_id);
  }
}

void BohmEngine::DrainRetired(uint32_t cc_id) {
  CcState& st = *cc_state_[cc_id];
  // Retry spilled handbacks (each targets its version's allocator).
  while (!st.handback_spill.empty()) {
    const auto& e = st.handback_spill.front();
    if (!cc_state_[e.first->allocator]->handback->TryPush(e)) break;
    st.handback_spill.pop_front();
  }
  // Adopt foreign-retired versions of our own making. They may arrive
  // out of batch order relative to the local deque; entries are freed
  // only when the watermark has passed their batch, so a late arrival is
  // merely freed a little later — never prematurely.
  if (st.handback != nullptr) {
    std::pair<Version*, int64_t> e;
    while (st.handback->TryPop(&e)) st.retired.push_back(e);
  }
  if (st.retired.empty()) return;
  const int64_t watermark = Watermark();
  while (!st.retired.empty() && st.retired.front().second <= watermark) {
    st.alloc.Free(st.retired.front().first);
    st.retired.pop_front();
    st.freed.Inc();
  }
}

}  // namespace bohm
