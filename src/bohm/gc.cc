// Garbage collection, Condition 3 (Section 3.3.2): a version superseded by
// a transaction in batch b can be recycled once every execution thread has
// finished batch b. The low-watermark is folded on demand from per-thread
// completed-batch counters, each written only by its own execution thread
// — the RCU-flavoured scheme the paper describes, with no shared counter
// updates on the transaction path.

#include "bohm/engine.h"

namespace bohm {

// Thread-safety: `retired` and `alloc` are plain (unlocked) members of
// CcState because each is touched only by the one CC thread that owns the
// partition (docs/CONCURRENCY.md, "single-writer ownership"). Watermark()
// folds the per-thread *execution* watermarks (release-published), so
// every version at or below the watermark is quiescent by the time it is
// freed here. This composes with the streamed CC stage's own watermarks:
// the execution watermark can never pass the CC watermark (execution only
// admits batches the CC fold has passed), so a CC thread running several
// batches ahead merely queues more retirees — it can never free a version
// an execution thread might still read, and slot reuse (also keyed on
// Watermark()) can never recycle a batch a CC thread is still inside.
void BohmEngine::RetireVersion(uint32_t cc_id, Version* v, int64_t batch_id) {
  cc_state_[cc_id]->retired.emplace_back(v, batch_id);
}

void BohmEngine::DrainRetired(uint32_t cc_id) {
  CcState& st = *cc_state_[cc_id];
  if (st.retired.empty()) return;
  const int64_t watermark = Watermark();
  while (!st.retired.empty() && st.retired.front().second <= watermark) {
    st.alloc.Free(st.retired.front().first);
    st.retired.pop_front();
    st.freed.Inc();
  }
}

}  // namespace bohm
