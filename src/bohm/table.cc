#include "bohm/table.h"

namespace bohm {

BohmTable::BohmTable(const TableSpec& spec, uint32_t partitions)
    : spec_(spec) {
  if (partitions == 0) partitions = 1;
  // Size each partition's bucket array for ~1 entry per bucket at the
  // declared capacity.
  uint64_t per_part = spec.capacity / partitions + 1;
  uint64_t buckets = NextPow2(per_part * 2);
  parts_.reserve(partitions);
  for (uint32_t i = 0; i < partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>(buckets));
  }
}

BohmIndexEntry* BohmTable::Find(uint32_t partition, Key key) const {
  const Partition& p = *parts_[partition];
  // BucketHash, not HashKey: the partition index already consumed
  // HashKey(key) % partitions, and reusing the same hash here pins the
  // low bucket bits within a partition (see BucketHash in common/hash.h).
  uint64_t b = BucketHash(key) & p.mask;
  // acquire pairs with the release publication in GetOrInsert, so a found
  // entry is always fully initialized.
  for (BohmIndexEntry* e = p.chains[b].load(std::memory_order_acquire);
       e != nullptr; e = e->next) {
    if (e->key == key) return e;
  }
  return nullptr;
}

BohmIndexEntry* BohmTable::GetOrInsert(uint32_t partition, Key key,
                                       Version* initial_head,
                                       bool* inserted) {
  Partition& p = *parts_[partition];
  uint64_t b = BucketHash(key) & p.mask;
  // relaxed: this thread is the partition's only writer, so it always
  // sees its own latest chain head; readers get ordering from Find's
  // acquire instead.
  BohmIndexEntry* first = p.chains[b].load(std::memory_order_relaxed);
  for (BohmIndexEntry* e = first; e != nullptr; e = e->next) {
    if (e->key == key) {
      *inserted = false;
      return e;
    }
  }
  auto* e = p.arena.New<BohmIndexEntry>();
  e->key = key;
  e->next = first;
  // The version chain must be complete before the entry becomes
  // reachable: install the head pre-publication...
  // relaxed: e is still thread-private here; the chain release below
  // publishes this store together with the rest of the entry.
  e->head.store(initial_head, std::memory_order_relaxed);
  // ...then publish. The release pairs with Find's acquire, so a reader
  // that sees the entry also sees key, next, and the initialized head.
  p.chains[b].store(e, std::memory_order_release);
  ++p.count;
  *inserted = true;
  return e;
}

BohmDatabase::BohmDatabase(const Catalog& catalog, uint32_t partitions)
    : catalog_(catalog), partitions_(partitions == 0 ? 1 : partitions) {
  tables_.resize(catalog_.MaxTableId());
  for (const TableSpec& spec : catalog_.tables()) {
    tables_[spec.id] = std::make_unique<BohmTable>(spec, partitions_);
  }
}

}  // namespace bohm
