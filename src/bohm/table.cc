#include "bohm/table.h"

namespace bohm {

BohmTable::BohmTable(const TableSpec& spec, uint32_t partitions)
    : spec_(spec) {
  if (partitions == 0) partitions = 1;
  // Size each partition's bucket array for ~1 entry per bucket at the
  // declared capacity.
  uint64_t per_part = spec.capacity / partitions + 1;
  uint64_t buckets = NextPow2(per_part * 2);
  parts_.reserve(partitions);
  for (uint32_t i = 0; i < partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>(buckets));
  }
}

BohmIndexEntry* BohmTable::Find(uint32_t partition, Key key) const {
  const Partition& p = *parts_[partition];
  uint64_t b = HashKey(key) & p.mask;
  // acquire pairs with the release publication in GetOrInsert, so a found
  // entry is always fully initialized.
  for (BohmIndexEntry* e = p.chains[b].load(std::memory_order_acquire);
       e != nullptr; e = e->next) {
    if (e->key == key) return e;
  }
  return nullptr;
}

BohmIndexEntry* BohmTable::GetOrInsert(uint32_t partition, Key key) {
  Partition& p = *parts_[partition];
  uint64_t b = HashKey(key) & p.mask;
  BohmIndexEntry* first = p.chains[b].load(std::memory_order_relaxed);
  for (BohmIndexEntry* e = first; e != nullptr; e = e->next) {
    if (e->key == key) return e;
  }
  auto* e = p.arena.New<BohmIndexEntry>();
  e->key = key;
  e->next = first;
  // Publish after full initialization; concurrent readers traverse safely.
  p.chains[b].store(e, std::memory_order_release);
  ++p.count;
  return e;
}

BohmDatabase::BohmDatabase(const Catalog& catalog, uint32_t partitions)
    : catalog_(catalog), partitions_(partitions == 0 ? 1 : partitions) {
  tables_.resize(catalog_.MaxTableId());
  for (const TableSpec& spec : catalog_.tables()) {
    tables_[spec.id] = std::make_unique<BohmTable>(spec, partitions_);
  }
}

}  // namespace bohm
