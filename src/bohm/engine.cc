#include "bohm/engine.h"

#include <cstring>

#include "common/affinity.h"
#include "common/hash.h"
#include "common/spin.h"
#include "log/log_reader.h"

namespace bohm {

namespace {

/// Physical partitions per table. Static assignment: one per CC thread.
/// Adaptive: many more than cc_threads so whole partitions can migrate at
/// useful granularity (auto = 8 per thread, floor 128, cap 1024).
uint32_t EffectivePartitions(const BohmConfig& cfg) {
  if (!cfg.adaptive.enabled) return cfg.cc_threads;
  if (cfg.adaptive.partitions != 0) return cfg.adaptive.partitions;
  uint64_t p = NextPow2(static_cast<uint64_t>(cfg.cc_threads) * 8);
  if (p < 128) p = 128;
  if (p > 1024) p = 1024;
  return static_cast<uint32_t>(p);
}

}  // namespace

BohmEngine::BohmEngine(const Catalog& catalog, BohmConfig cfg)
    : catalog_(catalog),
      cfg_([&] {
        if (cfg.cc_threads == 0) cfg.cc_threads = 1;
        if (cfg.exec_threads == 0) cfg.exec_threads = 1;
        if (cfg.batch_size == 0) cfg.batch_size = 1;
        if (cfg.pipeline_depth < 1) cfg.pipeline_depth = 1;
        if (cfg.max_dependency_depth == 0) cfg.max_dependency_depth = 1;
        if (cfg.adaptive.interval_batches == 0) cfg.adaptive.interval_batches = 1;
        if (cfg.adaptive.max_imbalance < 1.0) cfg.adaptive.max_imbalance = 1.0;
        return cfg;
      }()),
      db_(catalog_, EffectivePartitions(cfg_)),
      repart_(std::make_unique<RepartitionController>(
          db_.partitions(), cfg_.cc_threads, cfg_.adaptive)),
      touch_totals_(db_.partitions(), 0),
      ring_(cfg_.pipeline_depth),
      input_(NextPow2(cfg_.input_queue_capacity < 2 ? 2
                                                    : cfg_.input_queue_capacity)),
      cc_watermark_(cfg_.cc_threads),
      exec_watermark_(cfg_.exec_threads),
      stats_(cfg_.exec_threads) {
  record_sizes_.resize(catalog_.MaxTableId(), 0);
  for (const TableSpec& t : catalog_.tables()) {
    record_sizes_[t.id] = t.record_size;
  }
  // Feed capacity >= pipeline depth guarantees SealBatch's pushes succeed
  // (see the member comment in engine.h).
  const size_t feed_capacity = NextPow2(cfg_.pipeline_depth < 2
                                            ? 2
                                            : cfg_.pipeline_depth);
  for (uint32_t i = 0; i < cfg_.cc_threads; ++i) {
    cc_state_.push_back(std::make_unique<CcState>());
    cc_state_.back()->alloc.set_owner(i);
    if (cfg_.adaptive.enabled) {
      cc_state_.back()->touch =
          std::make_unique<RelaxedCounter[]>(db_.partitions());
      // Handback ring for versions this thread allocated but a later
      // owner of the partition retires. Sized for the transient after a
      // migration (one foreign retiree per migrated record on its first
      // supersede); producers spill locally and retry when full.
      cc_state_.back()->handback =
          std::make_unique<MpmcQueue<std::pair<Version*, int64_t>>>(1024);
    }
    cc_feed_.push_back(std::make_unique<SpscQueue<int64_t>>(feed_capacity));
    cc_stall_.push_back(std::make_unique<StallSlot>());
  }
  for (uint32_t i = 0; i < cfg_.exec_threads; ++i) {
    exec_feed_.push_back(std::make_unique<SpscQueue<int64_t>>(feed_capacity));
    exec_stall_.push_back(std::make_unique<StallSlot>());
    exec_log_stall_.push_back(std::make_unique<StallSlot>());
  }
  if (cfg_.durability.enabled) {
    LogEnv* env = cfg_.durability.env != nullptr ? cfg_.durability.env
                                                 : LogEnv::Default();
    log_ = std::make_unique<BatchLog>(cfg_.durability.dir, env,
                                      cfg_.durability.segment_bytes);
    LogWriterOptions opts;
    opts.policy = cfg_.durability.fsync_policy;
    opts.group_size =
        cfg_.durability.group_size == 0 ? 1 : cfg_.durability.group_size;
    opts.interval_us = cfg_.durability.interval_us;
    opts.queue_capacity = NextPow2(cfg_.durability.writer_queue_capacity < 2
                                       ? 2
                                       : cfg_.durability.writer_queue_capacity);
    log_writer_ = std::make_unique<LogWriter>(log_.get(), opts);
  }
}

BohmEngine::~BohmEngine() { Stop(); }

Status BohmEngine::Load(TableId table, Key key, const void* payload) {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Load after Start");
  }
  BohmTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  uint32_t part = t->PartitionOf(key);
  if (t->Find(part, key) != nullptr) {
    return Status::InvalidArgument("duplicate key in load");
  }
  // Allocate from the partition's *initial owner* so the allocator stamp
  // matches the thread that would have created the version (GC hands
  // retirees back to the allocating thread's free lists).
  const uint32_t owner = repart_->current()->owners[part];
  Version* v = cc_state_[owner]->alloc.Alloc(table, record_sizes_[table]);
  v->begin_ts = kLoadTs;
  if (payload != nullptr) {
    std::memcpy(v->data(), payload, record_sizes_[table]);
  } else {
    std::memset(v->data(), 0, record_sizes_[table]);
  }
  // relaxed: v is thread-private until the entry publication inside
  // GetOrInsert (release) makes it — flags included — visible.
  v->flags.store(kVersionReady, std::memory_order_relaxed);
  bool inserted = false;
  (void)t->GetOrInsert(part, key, v, &inserted);
  return Status::OK();
}

Status BohmEngine::Start() {
  // The cc_interest mask on BohmTxn is 64 bits, one per CC *thread*
  // (owner bits, not partition bits — partition counts above 64 are fine
  // because the sequencer masks by owners[PartitionOf(key)]). A config
  // that would shift past the mask width is rejected instead of silently
  // computing undefined behavior; run cc_threads > 64 with
  // interest_preprocessing explicitly disabled.
  if (cfg_.interest_preprocessing && cfg_.cc_threads > 64) {
    return Status::InvalidArgument(
        "interest_preprocessing requires cc_threads <= 64 (the cc_interest "
        "mask is 64 bits wide); disable it to run more CC threads");
  }
  if (cfg_.adaptive.enabled && db_.partitions() < cfg_.cc_threads) {
    return Status::InvalidArgument(
        "adaptive.partitions must be >= cc_threads (every CC thread needs "
        "at least one partition to own)");
  }
  if (cfg_.durability.enabled && !recovered_) {
    // A pre-existing log means there is committed history on disk.
    // Starting fresh would restart seqnos and silently fork that history;
    // the caller must either Recover() or point at a clean directory.
    LogEnv* env = cfg_.durability.env != nullptr ? cfg_.durability.env
                                                 : LogEnv::Default();
    std::vector<std::string> names;
    Status st = env->ListDir(cfg_.durability.dir, &names);
    if (st.ok()) {
      for (const std::string& name : names) {
        uint64_t first;
        if (ParseSegmentFileName(name, &first)) {
          return Status::FailedPrecondition(
              "durable log directory is not empty — call Recover() instead "
              "of Start()");
        }
      }
    } else if (!st.IsNotFound()) {
      return st;
    }
  }
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("already started");
  }
  if (log_ != nullptr) {
    Status opened = log_->Open();
    if (!opened.ok()) {
      // Roll back the CAS: no pipeline thread was spawned, so leaving
      // started_ set would let Submit() enqueue transactions nothing
      // ever dequeues (callers would then hang in WaitForIdle).
      started_.store(false, std::memory_order_release);
      return opened;
    }
    log_writer_->Start();
  }
  const bool pin =
      cfg_.pin_threads &&
      ShouldPin(1 + cfg_.cc_threads + cfg_.exec_threads);
  unsigned cpu = 0;
  threads_.emplace_back([this, pin, cpu] {
    if (pin) PinCurrentThreadToCpu(cpu);
    SequencerLoop();
  });
  ++cpu;
  for (uint32_t i = 0; i < cfg_.cc_threads; ++i, ++cpu) {
    threads_.emplace_back([this, i, pin, cpu] {
      if (pin) PinCurrentThreadToCpu(cpu);
      CcLoop(i);
    });
  }
  for (uint32_t i = 0; i < cfg_.exec_threads; ++i, ++cpu) {
    threads_.emplace_back([this, i, pin, cpu] {
      if (pin) PinCurrentThreadToCpu(cpu);
      ExecLoop(i);
    });
  }
  return Status::OK();
}

void BohmEngine::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is already stopping; wait for the joins to finish.
    SpinWait wait;
    while (!stopped_.load(std::memory_order_acquire)) wait.Pause();
    return;
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  // The sequencer (the writer's only producer) has joined, so the ring
  // receives nothing more: Stop drains what is enqueued, issues the final
  // sync, and closes the segment — a clean shutdown leaves a fully
  // durable log even with unflushed group-commit buffers.
  if (log_writer_ != nullptr) log_writer_->Stop();
  stopped_.store(true, std::memory_order_release);
}

// Graceful rejection, never a crash: a transaction the engine cannot take
// (wrong engine state, degraded log, un-replayable or malformed footprint)
// comes back as kRejected and the pipeline is untouched. The sequencer can
// then assume every dequeued transaction is well-formed — the bad-table
// check here is what keeps a stray table id from dereferencing a null
// BohmTable inside the pipeline.
Status BohmEngine::CheckSubmit(const StoredProcedure* proc) const {
  if (!started_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::Rejected("engine not running");
  }
  if (log_degraded()) {
    return Status::Rejected("durable log failed; engine is degraded");
  }
  if (proc == nullptr) return Status::InvalidArgument("null procedure");
  if (cfg_.durability.enabled && proc->codec_id() == kNotLoggable) {
    // Read-only procedures are admitted but simply absent from the log
    // (skipping them on replay cannot change state); anything that writes
    // must be reproducible from bytes.
    if (!proc->rwset().writes().empty()) {
      return Status::Rejected(
          "procedure writes but has no log codec; a durable engine cannot "
          "accept transactions it could not replay");
    }
  }
  const ReadWriteSet& set = proc->rwset();
  auto known_table = [this](TableId t) {
    return static_cast<size_t>(t) < record_sizes_.size() &&
           record_sizes_[t] != 0;
  };
  for (const RecordId& rec : set.writes()) {
    if (!known_table(rec.table)) {
      return Status::Rejected("write-set references unknown table");
    }
  }
  for (const RecordId& rec : set.reads()) {
    if (!known_table(rec.table)) {
      return Status::Rejected("read-set references unknown table");
    }
  }
  // Duplicate write-set keys would give one transaction two placeholder
  // versions of the same record. Quadratic scan, so only for footprints
  // small enough that it stays cheap (covers every realistic OLTP txn;
  // the paper's workloads have <= 10 writes).
  const auto& writes = set.writes();
  if (writes.size() <= 64) {
    for (size_t i = 0; i < writes.size(); ++i) {
      for (size_t j = i + 1; j < writes.size(); ++j) {
        if (writes[i].table == writes[j].table &&
            writes[i].key == writes[j].key) {
          return Status::Rejected("duplicate key in write set");
        }
      }
    }
  }
  return Status::OK();
}

Status BohmEngine::Submit(ProcedurePtr proc) {
  BOHM_RETURN_NOT_OK(CheckSubmit(proc.get()));
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  input_.Push(InputItem{proc.release(), /*owned=*/true, MonotonicNanos()});
  return Status::OK();
}

Status BohmEngine::SubmitBorrowed(StoredProcedure* proc) {
  BOHM_RETURN_NOT_OK(CheckSubmit(proc));
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  input_.Push(InputItem{proc, /*owned=*/false, MonotonicNanos()});
  return Status::OK();
}

Status BohmEngine::RunSync(ProcedurePtr proc) {
  BOHM_RETURN_NOT_OK(Submit(std::move(proc)));
  WaitForIdle();
  return Status::OK();
}

uint64_t BohmEngine::CompletedCount() const { return stats_.FoldCompleted(); }

void BohmEngine::WaitForIdle() {
  SpinWait wait;
  while (CompletedCount() < submitted_.load(std::memory_order_acquire)) {
    wait.Pause();
  }
}

int64_t BohmEngine::Watermark() const { return exec_watermark_.Min(); }

int64_t BohmEngine::CcWatermark() const { return cc_watermark_.Min(); }

StatsSnapshot BohmEngine::Stats() const {
  StatsSnapshot s = stats_.Fold();
  s.seq_stall_ns = seq_stall_.ns.Get();
  for (const auto& st : cc_stall_) s.cc_stall_ns += st->ns.Get();
  for (const auto& st : exec_stall_) s.exec_stall_ns += st->ns.Get();
  s.log_stall_ns = seq_log_stall_.ns.Get();
  for (const auto& st : exec_log_stall_) s.log_stall_ns += st->ns.Get();
  if (log_writer_ != nullptr) {
    s.log_bytes = log_writer_->bytes_written();
    s.log_records = log_writer_->records();
    s.log_fsyncs = log_writer_->fsyncs();
  }
  s.cc_migrations = repart_->migrations();
  s.cc_imbalance_x1000 = repart_->imbalance_x1000();
  return s;
}

uint64_t BohmEngine::gc_freed_versions() const {
  uint64_t n = 0;
  for (const auto& s : cc_state_) n += s->freed.Get();
  return n;
}

Status BohmEngine::Recover() {
  if (!cfg_.durability.enabled) {
    return Status::FailedPrecondition("Recover without durability enabled");
  }
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Recover after Start");
  }
  LogEnv* env = cfg_.durability.env != nullptr ? cfg_.durability.env
                                               : LogEnv::Default();
  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  BOHM_RETURN_NOT_OK(ReadBatchLog(cfg_.durability.dir, env, &batches, &scan));
  recovery_stats_ = RecoveryStats{};
  recovery_stats_.batches = scan.records;
  recovery_stats_.txns = scan.txns;
  recovery_stats_.segments = scan.segments;
  recovery_stats_.tail_truncated = scan.tail_truncated;
  recovery_stats_.truncated_bytes = scan.truncated_bytes;
  recovery_stats_.tail_detail = scan.tail_detail;
  recovery_stats_.last_seqno = batches.empty() ? 0 : batches.back().seqno;

  // Replay mode: the pipeline runs normally but nothing is re-logged and
  // execution is not gated on durability (the batches being replayed are
  // durable by definition). The release back to false below is what
  // publishes log_base_ to the pipeline threads (rule R6).
  replaying_.store(true, std::memory_order_release);
  recovered_ = true;  // lets Start() past its nonempty-directory check
  Status started = Start();
  if (!started.ok()) {
    replaying_.store(false, std::memory_order_release);
    return started;
  }
  for (ReplayedBatch& batch : batches) {
    for (ProcedurePtr& proc : batch.txns) {
      BOHM_RETURN_NOT_OK(Submit(std::move(proc)));
    }
  }
  WaitForIdle();
  batches.clear();

  // Deterministic replay note: recovery re-*sequences* rather than
  // re-using the old batch boundaries, which is legal precisely because
  // the replay above preserved the total order — only the (seqno, batch
  // id) correspondence moved. Re-anchor it: the next sealed batch
  // (last_sealed_batch + 1) must get seqno last_seqno + 1.
  const int64_t sealed = last_sealed_batch();
  const uint64_t last_seqno = recovery_stats_.last_seqno;
  log_base_ = last_seqno + 1 - static_cast<uint64_t>(sealed + 1);
  replaying_.store(false, std::memory_order_release);
  return Status::OK();
}

Status BohmEngine::ReadLatest(TableId table, Key key, void* out) const {
  const BohmTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  uint32_t part = t->PartitionOf(key);
  BohmIndexEntry* entry = t->Find(part, key);
  if (entry == nullptr) return Status::NotFound("no such record");
  Version* v = entry->head.load(std::memory_order_acquire);
  if (v == nullptr || !v->ready() || v->tombstone()) {
    return Status::NotFound("no visible version");
  }
  std::memcpy(out, v->data(), record_sizes_[table]);
  return Status::OK();
}

}  // namespace bohm
