#include "bohm/engine.h"

#include <cstring>

#include "common/affinity.h"
#include "common/hash.h"
#include "common/spin.h"

namespace bohm {

BohmEngine::BohmEngine(const Catalog& catalog, BohmConfig cfg)
    : catalog_(catalog),
      cfg_([&] {
        if (cfg.cc_threads == 0) cfg.cc_threads = 1;
        if (cfg.exec_threads == 0) cfg.exec_threads = 1;
        if (cfg.batch_size == 0) cfg.batch_size = 1;
        if (cfg.pipeline_depth < 1) cfg.pipeline_depth = 1;
        if (cfg.max_dependency_depth == 0) cfg.max_dependency_depth = 1;
        if (cfg.cc_threads > 64) cfg.interest_preprocessing = false;
        return cfg;
      }()),
      db_(catalog_, cfg_.cc_threads),
      ring_(cfg_.pipeline_depth),
      input_(NextPow2(cfg_.input_queue_capacity < 2 ? 2
                                                    : cfg_.input_queue_capacity)),
      cc_watermark_(cfg_.cc_threads),
      exec_watermark_(cfg_.exec_threads),
      stats_(cfg_.exec_threads) {
  record_sizes_.resize(catalog_.MaxTableId(), 0);
  for (const TableSpec& t : catalog_.tables()) {
    record_sizes_[t.id] = t.record_size;
  }
  // Feed capacity >= pipeline depth guarantees SealBatch's pushes succeed
  // (see the member comment in engine.h).
  const size_t feed_capacity = NextPow2(cfg_.pipeline_depth < 2
                                            ? 2
                                            : cfg_.pipeline_depth);
  for (uint32_t i = 0; i < cfg_.cc_threads; ++i) {
    cc_state_.push_back(std::make_unique<CcState>());
    cc_feed_.push_back(std::make_unique<SpscQueue<int64_t>>(feed_capacity));
    cc_stall_.push_back(std::make_unique<StallSlot>());
  }
  for (uint32_t i = 0; i < cfg_.exec_threads; ++i) {
    exec_feed_.push_back(std::make_unique<SpscQueue<int64_t>>(feed_capacity));
    exec_stall_.push_back(std::make_unique<StallSlot>());
  }
}

BohmEngine::~BohmEngine() { Stop(); }

Status BohmEngine::Load(TableId table, Key key, const void* payload) {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Load after Start");
  }
  BohmTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  uint32_t part = t->PartitionOf(key);
  if (t->Find(part, key) != nullptr) {
    return Status::InvalidArgument("duplicate key in load");
  }
  Version* v = cc_state_[part]->alloc.Alloc(table, record_sizes_[table]);
  v->begin_ts = kLoadTs;
  if (payload != nullptr) {
    std::memcpy(v->data(), payload, record_sizes_[table]);
  } else {
    std::memset(v->data(), 0, record_sizes_[table]);
  }
  // relaxed: v is thread-private until the entry publication inside
  // GetOrInsert (release) makes it — flags included — visible.
  v->flags.store(kVersionReady, std::memory_order_relaxed);
  bool inserted = false;
  (void)t->GetOrInsert(part, key, v, &inserted);
  return Status::OK();
}

Status BohmEngine::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("already started");
  }
  const bool pin =
      cfg_.pin_threads &&
      ShouldPin(1 + cfg_.cc_threads + cfg_.exec_threads);
  unsigned cpu = 0;
  threads_.emplace_back([this, pin, cpu] {
    if (pin) PinCurrentThreadToCpu(cpu);
    SequencerLoop();
  });
  ++cpu;
  for (uint32_t i = 0; i < cfg_.cc_threads; ++i, ++cpu) {
    threads_.emplace_back([this, i, pin, cpu] {
      if (pin) PinCurrentThreadToCpu(cpu);
      CcLoop(i);
    });
  }
  for (uint32_t i = 0; i < cfg_.exec_threads; ++i, ++cpu) {
    threads_.emplace_back([this, i, pin, cpu] {
      if (pin) PinCurrentThreadToCpu(cpu);
      ExecLoop(i);
    });
  }
  return Status::OK();
}

void BohmEngine::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another caller is already stopping; wait for the joins to finish.
    SpinWait wait;
    while (!stopped_.load(std::memory_order_acquire)) wait.Pause();
    return;
  }
  for (auto& t : threads_) t.join();
  threads_.clear();
  stopped_.store(true, std::memory_order_release);
}

Status BohmEngine::Submit(ProcedurePtr proc) {
  if (!started_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not running");
  }
  if (proc == nullptr) return Status::InvalidArgument("null procedure");
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  input_.Push(InputItem{proc.release(), /*owned=*/true, MonotonicNanos()});
  return Status::OK();
}

Status BohmEngine::SubmitBorrowed(StoredProcedure* proc) {
  if (!started_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("engine not running");
  }
  if (proc == nullptr) return Status::InvalidArgument("null procedure");
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  input_.Push(InputItem{proc, /*owned=*/false, MonotonicNanos()});
  return Status::OK();
}

Status BohmEngine::RunSync(ProcedurePtr proc) {
  BOHM_RETURN_NOT_OK(Submit(std::move(proc)));
  WaitForIdle();
  return Status::OK();
}

uint64_t BohmEngine::CompletedCount() const { return stats_.FoldCompleted(); }

void BohmEngine::WaitForIdle() {
  SpinWait wait;
  while (CompletedCount() < submitted_.load(std::memory_order_acquire)) {
    wait.Pause();
  }
}

int64_t BohmEngine::Watermark() const { return exec_watermark_.Min(); }

int64_t BohmEngine::CcWatermark() const { return cc_watermark_.Min(); }

StatsSnapshot BohmEngine::Stats() const {
  StatsSnapshot s = stats_.Fold();
  s.seq_stall_ns = seq_stall_.ns.Get();
  for (const auto& st : cc_stall_) s.cc_stall_ns += st->ns.Get();
  for (const auto& st : exec_stall_) s.exec_stall_ns += st->ns.Get();
  return s;
}

uint64_t BohmEngine::gc_freed_versions() const {
  uint64_t n = 0;
  for (const auto& s : cc_state_) n += s->freed.Get();
  return n;
}

Status BohmEngine::ReadLatest(TableId table, Key key, void* out) const {
  const BohmTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  uint32_t part = t->PartitionOf(key);
  BohmIndexEntry* entry = t->Find(part, key);
  if (entry == nullptr) return Status::NotFound("no such record");
  Version* v = entry->head.load(std::memory_order_acquire);
  if (v == nullptr || !v->ready() || v->tombstone()) {
    return Status::NotFound("no visible version");
  }
  std::memcpy(out, v->data(), record_sizes_[table]);
  return Status::OK();
}

}  // namespace bohm
