// Adaptive CC repartitioning (ROADMAP item 3): decouple the *physical*
// index partition (static hash over keys, unchanged — every record still
// has exactly one home partition, preserving BohmTable's single-writer
// index discipline) from the *owning CC thread* (dynamic).
//
// The engine runs with many more physical partitions than CC threads
// (e.g. 128–1024 vs. 2–64) and maintains an epoch-versioned partition map
// (partition -> owner thread) that only the sequencer mutates. CC threads
// bump per-partition touch counters (single-writer relaxed slots, like
// the stall/stat slots); between batches the sequencer folds them,
// detects imbalance, and migrates whole partitions from overloaded to
// underloaded threads.
//
// Safety (docs/CONCURRENCY.md rule R7):
//  * Each sealed Batch is stamped with a pointer to the map it was
//    sequenced under; the stamp rides the feed-push release edge (rule
//    R5), so a CC thread popping the batch sees a fully-built map.
//  * A migration takes effect only once the sequencer has observed every
//    *source* thread's cc_watermark pass the last batch sealed under the
//    old map. The old owner's head stores happen before its watermark
//    Advance (release); the sequencer's acquire fold happens before its
//    next feed push (release); the new owner's pop (acquire) therefore
//    sees every version the old owner installed. Until the gate opens,
//    batches keep sealing under the old map — the sequencer never waits.
//  * Retired map versions are freed only after the execution watermark
//    passes their last stamped batch (exec <= cc, so no CC thread can
//    still be reading them).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/barrier.h"
#include "common/macros.h"

namespace bohm {

/// Knobs for adaptive CC repartitioning (BohmConfig::adaptive).
struct AdaptiveCcConfig {
  bool enabled = false;
  /// Physical partitions per table. 0 = auto: max(128, 8 per CC thread),
  /// capped at 1024. Must be >= cc_threads (Start() validates). When
  /// adaptive is disabled the engine ignores this and uses one partition
  /// per CC thread (the original static assignment).
  uint32_t partitions = 0;
  /// Fold touch counters and reconsider the assignment every this many
  /// batches.
  uint32_t interval_batches = 8;
  /// Migrate when the hottest thread's load exceeds this multiple of the
  /// mean per-thread load.
  double max_imbalance = 1.25;
  /// Cap on partitions moved per rebalance decision (0 = unlimited).
  uint32_t max_moves = 8;
  /// Test knob: rotate every partition's owner by one thread at each
  /// interval regardless of load, forcing the migration machinery (map
  /// promotion gate, cross-thread handoff, GC allocator routing) to run
  /// constantly. Never useful in production.
  bool force_rotate = false;
};

/// One immutable version of the partition -> owner-thread map. `owners`
/// is never mutated after the version becomes current; CC threads read it
/// through the batch stamp (plain loads, published by the feed push).
struct PartitionMapVersion {
  uint64_t epoch = 0;
  /// Highest batch id sealed under this map (sequencer-private; drives
  /// retirement).
  int64_t last_batch = -1;
  std::vector<uint32_t> owners;  // partition -> CC thread
};

/// Sequencer-owned controller for the partition map. Every method except
/// the const monitors must be called from the sequencer thread only.
class RepartitionController {
 public:
  /// The initial assignment is owners[p] = p % cc_threads; Load() uses the
  /// same rule, so pre-loaded versions are allocated by their first owner.
  RepartitionController(uint32_t partitions, uint32_t cc_threads,
                        const AdaptiveCcConfig& cfg);
  BOHM_DISALLOW_COPY_AND_ASSIGN(RepartitionController);

  /// Returns the map to stamp on batch `id`, promoting a pending
  /// migration first if its watermark gate has opened: every source
  /// thread's cc watermark must have passed id - 1 (i.e. the old owner
  /// finished every batch sealed under the old map). Records `id` as the
  /// map's last stamped batch. Sequencer thread only.
  const PartitionMapVersion* MapForBatch(int64_t id,
                                         const WatermarkSet& cc_watermark);

  /// Feeds the controller one fold of the cumulative per-partition touch
  /// counters; may create a pending migration. Call every
  /// `interval_batches` sealed batches. Sequencer thread only.
  void Observe(const std::vector<uint64_t>& touch_totals);

  /// Frees retired map versions whose last stamped batch the execution
  /// watermark has passed. Sequencer thread only.
  void Prune(int64_t exec_watermark);

  /// Current map (sequencer thread, or any thread before Start()).
  const PartitionMapVersion* current() const { return current_; }

  uint32_t partitions() const { return partitions_; }

  // --- cross-thread monitors (any thread) ---
  /// Partitions moved across all promoted migrations (monotone).
  uint64_t migrations() const {
    return migrations_.load(std::memory_order_acquire);
  }
  /// Rebalance decisions that produced a pending map (monotone).
  uint64_t decisions() const {
    return decisions_.load(std::memory_order_acquire);
  }
  /// Last folded max-thread-load / mean-thread-load ratio, x1000 (gauge;
  /// 1000 = perfectly balanced).
  uint64_t imbalance_x1000() const {
    return imbalance_x1000_.load(std::memory_order_acquire);
  }
  /// Epoch of the current (promoted) map.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  void PromotePending();

  const uint32_t partitions_;
  const uint32_t cc_threads_;
  const AdaptiveCcConfig cfg_;

  /// All map versions ever promoted, oldest first; back() is current.
  /// Retired versions stay until Prune() proves no reader remains.
  std::deque<std::unique_ptr<PartitionMapVersion>> versions_;
  PartitionMapVersion* current_ = nullptr;

  /// Pending migration awaiting its watermark gate, plus the threads that
  /// lose partitions in it (the gate applies to those only).
  std::unique_ptr<PartitionMapVersion> pending_;
  std::vector<uint32_t> pending_sources_;
  uint32_t pending_moves_ = 0;

  /// Previous fold of the cumulative touch counters (deltas drive the
  /// rebalance decision).
  std::vector<uint64_t> last_totals_;
  /// Scratch: per-thread load of the current fold.
  std::vector<uint64_t> load_scratch_;

  /// Monitors. Single writer (the sequencer); release stores publish to
  /// Stats()/test readers.
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> imbalance_x1000_{1000};
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace bohm
