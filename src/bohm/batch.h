// Batches and the slot ring backing the streamed Bohm pipeline.
//
// Coordination happens once per batch, never per transaction (Section
// 3.2.4) — and since the move to epoch watermarks, "coordination" means
// publishing a counter, not parking at a barrier. The sequencer fills a
// batch slot and announces the batch id through per-stage single-producer/
// single-consumer feed rings (common/queue.h); every CC thread walks every
// announced batch in order (deriving parallelism from intra-transaction
// partitioning, not batch partitioning) and advances its own entry in a
// WatermarkSet (common/barrier.h) when its partition slice is done.
// Execution threads may start striping batch b as soon as
// min(cc_watermark) >= b — CC threads stream straight into batch b+1
// while execution is still inside b (Section 3.3.1).
//
// The ring has a fixed number of slots. A slot for batch b is reused for
// batch b + depth only once every execution thread has finished b, which
// the sequencer checks against the execution low-watermark — the same
// watermark that drives garbage collection (Section 3.3.2). Because the
// execution watermark can never pass the CC watermark, slot reuse also
// implies every CC thread has left the batch.
//
// The Batch struct itself carries no publication state: the feed-ring
// push is the sequencer's release publication of the filled slot, and the
// watermark stores are the CC stage's (docs/CONCURRENCY.md rule R5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"
#include "bohm/txn_state.h"

namespace bohm {

struct Batch {
  int64_t id = -1;
  std::vector<BohmTxn*> txns;
  /// Owns the procedures for the lifetime of the batch slot generation.
  std::vector<ProcedurePtr> procs;
  /// Holds the BohmTxn objects and their read/write ref arrays.
  Arena arena{1u << 16};
  /// Partition-map stamp (adaptive CC repartitioning, rule R7): the epoch
  /// and owner array (partition -> CC thread) this batch was sequenced
  /// under. Written by the sequencer before the feed push (plain stores
  /// riding the R5 release edge); CC threads route every read/write-set
  /// element by owners[PartitionOf(key)]. The pointed-to array outlives
  /// the batch: map versions are retired only after the execution
  /// watermark passes their last stamped batch.
  uint64_t part_epoch = 0;
  const uint32_t* owners = nullptr;

  void ResetForReuse() {
    txns.clear();
    procs.clear();
    arena.Reset();
    part_epoch = 0;
    owners = nullptr;
  }
};

/// Fixed-depth pipeline of batch slots.
class BatchRing {
 public:
  explicit BatchRing(uint32_t depth) {
    slots_.reserve(depth);
    for (uint32_t i = 0; i < depth; ++i) {
      slots_.push_back(std::make_unique<Batch>());
    }
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(BatchRing);

  uint32_t depth() const { return static_cast<uint32_t>(slots_.size()); }
  Batch* Slot(int64_t batch_id) {
    return slots_[static_cast<uint64_t>(batch_id) % slots_.size()].get();
  }

 private:
  std::vector<std::unique_ptr<Batch>> slots_;
};

}  // namespace bohm
