// Batches and the pipeline ring connecting the three Bohm stages.
//
// Coordination happens once per batch, never per transaction (Section
// 3.2.4). The sequencer fills a batch and publishes it; every CC thread
// walks every published batch in order (deriving parallelism from intra-
// transaction partitioning, not batch partitioning); after the per-batch
// CC barrier the batch is published to the execution layer; execution
// threads likewise walk batches in order, striping transactions among
// themselves (Section 3.3.1).
//
// The ring has a fixed number of slots. A slot for batch b is reused for
// batch b + depth only once every execution thread has finished b, which
// the sequencer checks against the execution low-watermark — the same
// watermark that drives garbage collection (Section 3.3.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"
#include "bohm/txn_state.h"

namespace bohm {

struct Batch {
  int64_t id = -1;
  std::vector<BohmTxn*> txns;
  /// Owns the procedures for the lifetime of the batch slot generation.
  std::vector<ProcedurePtr> procs;
  /// Holds the BohmTxn objects and their read/write ref arrays.
  Arena arena{1u << 16};

  /// id+1 once the sequencer has filled the slot (release-published).
  std::atomic<int64_t> seq_published{0};
  /// id+1 once all CC threads have finished the batch.
  std::atomic<int64_t> cc_published{0};

  void ResetForReuse() {
    txns.clear();
    procs.clear();
    arena.Reset();
  }
};

/// Fixed-depth pipeline of batch slots.
class BatchRing {
 public:
  explicit BatchRing(uint32_t depth) {
    slots_.reserve(depth);
    for (uint32_t i = 0; i < depth; ++i) {
      slots_.push_back(std::make_unique<Batch>());
    }
  }
  BOHM_DISALLOW_COPY_AND_ASSIGN(BatchRing);

  uint32_t depth() const { return static_cast<uint32_t>(slots_.size()); }
  Batch* Slot(int64_t batch_id) {
    return slots_[static_cast<uint64_t>(batch_id) % slots_.size()].get();
  }

 private:
  std::vector<std::unique_ptr<Batch>> slots_;
};

}  // namespace bohm
