// BohmEngine: the paper's concurrency-control protocol, end to end.
//
// Pipeline (Section 3.1):
//
//   clients --Submit()--> [input queue]
//      --> sequencer thread: totally orders transactions; timestamp =
//          position in the log; accumulates batches (Sections 3.2.1, 3.2.4)
//      --> m concurrency-control threads: each walks every batch and
//          processes exactly the physical partitions the batch's
//          partition map assigns to it (static per thread unless
//          adaptive repartitioning is on; bohm/repartition.h) — inserts
//          uninitialized version placeholders for writes and annotates
//          reads with version references (Sections 3.2.2, 3.2.3); each
//          thread advances its own epoch watermark per batch instead of
//          parking at a per-batch barrier (Section 3.2.4), so CC threads
//          stream into batch b+1 while slower ones are still in b
//      --> n execution threads: start batch b once min(cc_watermark) >= b,
//          stripe transactions among themselves, evaluate transaction
//          logic filling the placeholders, recursively evaluating
//          producers of unready read dependencies (Section 3.3.1); publish
//          per-thread completion watermarks from which the GC / slot-reuse
//          low-watermark is folded (Section 3.3.2).
//
// Handoff between stages is wait-free on the hot path: the sequencer
// announces sealed batch ids through per-consumer SPSC feed rings, and
// the only inter-stage waits are bounded spins on watermark folds (with
// yielding back-off under oversubscription).
//
// Reads never block writes; writes may block reads (only on placeholder
// data not yet produced). No global timestamp counter, no lock manager, no
// per-read shared-memory writes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/macros.h"
#include "common/queue.h"
#include "common/stats.h"
#include "common/status.h"
#include "bohm/batch.h"
#include "bohm/repartition.h"
#include "bohm/table.h"
#include "bohm/txn_state.h"
#include "bohm/version.h"
#include "log/batch_log.h"
#include "log/log_writer.h"
#include "storage/schema.h"

namespace bohm {

/// Durable-log configuration (docs/DURABILITY.md). Bohm's recovery story
/// is the input log itself: because execution is deterministic in the
/// sequenced order, persisting each sealed batch (seqno + encoded
/// transactions) is a complete redo log — no ARIES, no per-write logging.
struct DurabilityConfig {
  bool enabled = false;
  /// Directory for segment files (created if missing).
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kGroup;
  uint32_t group_size = 8;     // kGroup: records per fsync
  uint64_t interval_us = 1000; // kInterval: max time between fsyncs
  uint64_t segment_bytes = 64ull << 20;
  /// When true (the default), execution of a batch waits until the batch
  /// is durable per the fsync policy, so a commit acknowledgement implies
  /// the transaction survives a crash ("no acked commit is ever lost").
  /// When false, logging is asynchronous book-keeping only.
  bool durable_ack = true;
  size_t writer_queue_capacity = 256;  // sequencer->writer ring (pow2)
  /// File-system indirection; nullptr means the real one. Tests inject
  /// FaultLogEnv here.
  LogEnv* env = nullptr;
};

/// What Recover() found and repaired (test/monitoring observable).
struct RecoveryStats {
  uint64_t batches = 0;        ///< durable batches replayed
  uint64_t txns = 0;           ///< transactions replayed
  uint64_t segments = 0;       ///< segment files scanned
  bool tail_truncated = false; ///< a torn/corrupt tail was dropped
  uint64_t truncated_bytes = 0;
  std::string tail_detail;
  uint64_t last_seqno = 0;     ///< highest durable seqno (0: empty log)
};

struct BohmConfig {
  /// m: concurrency-control threads (each owns the physical hash
  /// partitions the partition map assigns to it; exactly one per thread
  /// unless `adaptive` is enabled).
  uint32_t cc_threads = 2;
  /// n: transaction-execution threads.
  uint32_t exec_threads = 2;
  /// Transactions per batch. Coordination cost is amortized over this many
  /// transactions (Section 3.2.4).
  uint32_t batch_size = 256;
  /// Batches in flight across the three stages (minimum 1; depth 1
  /// degenerates the stream to one batch at a time, which the streaming
  /// equivalence tests use as the serial reference point).
  uint32_t pipeline_depth = 4;
  /// Enable Condition-3 garbage collection of superseded versions
  /// (Section 3.3.2).
  bool gc_enabled = true;
  /// Enable the read-set annotation optimization (Section 3.2.3). When
  /// off, execution threads locate read versions by chain traversal.
  bool read_annotation = true;
  /// Pin engine threads to CPUs (auto-disabled when threads > CPUs).
  bool pin_threads = true;
  /// Capacity of the client->sequencer queue (rounded up to a power of 2).
  size_t input_queue_capacity = 8192;
  /// Bound on recursive read-dependency evaluation; deeper chains back out
  /// and are retried by the responsible thread (keeps stacks bounded under
  /// adversarial hot-key RMW chains).
  uint32_t max_dependency_depth = 64;
  /// Pre-processing (Section 3.2.2's answer to the Amdahl's-law concern):
  /// the sequencer annotates each transaction with the set of CC threads
  /// it has work for (computed against the batch's partition map), so CC
  /// threads skip foreign transactions without scanning their read/write
  /// sets. The mask is 64 bits wide, so this requires cc_threads <= 64;
  /// Start() rejects (InvalidArgument) configs that violate it instead of
  /// silently computing an undefined shift. Disable it explicitly to run
  /// with more than 64 CC threads.
  bool interest_preprocessing = true;
  /// Adaptive CC repartitioning (src/bohm/repartition.h): decouple the
  /// physical index partition from the owning CC thread and migrate hot
  /// partitions between threads at batch boundaries. Off by default; when
  /// off the engine uses the original static one-partition-per-thread
  /// assignment (routed through an identity map).
  AdaptiveCcConfig adaptive;
  /// Durable sequencer log + crash recovery (docs/DURABILITY.md).
  DurabilityConfig durability;
};

/// Test-only observation/freeze points inside the pipeline threads. Every
/// callback is invoked from the engine thread named by its first argument;
/// a callback that blocks freezes exactly that thread (the streaming tests
/// use this to pin a CC thread mid-batch and prove execution still honours
/// the watermark). Install before Start(); unset hooks cost one pointer
/// check per batch, never per transaction.
struct BohmTestHooks {
  /// CC thread `cc_id` is about to process its slice of `batch_id`.
  std::function<void(uint32_t cc_id, int64_t batch_id)> cc_batch_start;
  /// CC thread `cc_id` finished its slice of `batch_id` (its watermark is
  /// advanced immediately after this returns).
  std::function<void(uint32_t cc_id, int64_t batch_id)> cc_batch_end;
  /// Exec thread `exec_id` is about to stripe `batch_id` (the CC
  /// watermark fold has already admitted the batch).
  std::function<void(uint32_t exec_id, int64_t batch_id)> exec_batch_start;
  /// Exec thread `exec_id` completed its stripe of `batch_id`.
  std::function<void(uint32_t exec_id, int64_t batch_id)> exec_batch_end;
};

class BohmEngine {
 public:
  BohmEngine(const Catalog& catalog, BohmConfig cfg);
  ~BohmEngine();
  BOHM_DISALLOW_COPY_AND_ASSIGN(BohmEngine);

  /// Inserts an initial record (timestamp-0 version). Must be called
  /// before Start(); single-threaded.
  Status Load(TableId table, Key key, const void* payload);

  /// Spawns the sequencer, CC, and execution threads. With durability
  /// enabled, also opens the log and starts the log-writer thread; fails
  /// with FailedPrecondition if the log directory already holds segments
  /// and Recover() was not called first (silently continuing would fork
  /// the seqno history).
  Status Start();

  /// Crash recovery: scans the durable log (repairing a torn or
  /// checksum-failing tail by truncation), starts the engine, and replays
  /// every durable batch through the full pipeline in original sequenced
  /// order — determinism makes the result byte-equivalent to the
  /// pre-crash state. Call instead of Start(), after Load()ing the same
  /// initial records as the original run; the engine is running (and
  /// logging new batches) when this returns. Stats in recovery_stats().
  Status Recover();

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// True once the durable-log writer has hit an I/O error: logging has
  /// stopped, already-acknowledged commits remain durable, and Submit
  /// rejects new work (the engine is degraded, not wrong).
  bool log_degraded() const {
    return log_writer_ != nullptr && log_writer_->failed();
  }

  /// Drains all submitted transactions and joins every engine thread.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Hands a transaction to the sequencer. Blocks (yielding) when the
  /// input queue is full. The engine assumes ownership and destroys the
  /// procedure some time after it completes (when its batch slot is
  /// recycled) — do not retain pointers into it.
  ///
  /// Returns Rejected (never crashes the engine) when the transaction
  /// cannot be accepted: engine not running or shutting down, durable log
  /// degraded, a non-loggable procedure under durability, or a malformed
  /// footprint (unknown table, duplicate write-set keys). On rejection
  /// ownership stays rejected-side semantics: the procedure is destroyed
  /// (it was moved in) and nothing was enqueued.
  Status Submit(ProcedurePtr proc);

  /// Non-owning variant for procedures whose results the caller wants to
  /// read back (e.g. a read-only scan's aggregate): the caller keeps
  /// ownership and must keep the object alive until the transaction has
  /// completed (WaitForIdle() suffices).
  Status SubmitBorrowed(StoredProcedure* proc);

  /// Convenience for tests/examples: Submit + WaitForIdle.
  Status RunSync(ProcedurePtr proc);

  /// Blocks until every transaction submitted so far has been executed.
  void WaitForIdle();

  /// Aggregated execution counters plus per-stage stall attribution.
  StatsSnapshot Stats() const;

  /// The execution low-watermark: every batch with id <= Watermark() has
  /// been fully executed by every execution thread (drives GC and batch
  /// slot reuse).
  int64_t Watermark() const;

  /// The CC low-watermark: every CC thread has finished its partition
  /// slice of every batch with id <= CcWatermark(). Execution may only be
  /// inside batches the CC watermark has passed, so
  /// Watermark() <= CcWatermark() always holds.
  int64_t CcWatermark() const;

  /// Test hooks.
  const BohmDatabase& db() const { return db_; }
  /// Installs pipeline observation hooks. Must be called before Start().
  void set_test_hooks(std::shared_ptr<const BohmTestHooks> hooks) {
    hooks_ = std::move(hooks);
  }
  /// Highest batch id the sequencer has sealed so far (-1 before the
  /// first seal).
  int64_t last_sealed_batch() const {
    return last_sealed_batch_.load(std::memory_order_acquire);
  }
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_acquire);
  }
  uint64_t gc_freed_versions() const;
  const BohmConfig& config() const { return cfg_; }

  /// Physical partitions per table (== cc_threads unless adaptive
  /// repartitioning is enabled).
  uint32_t partition_count() const { return db_.partitions(); }
  /// Partitions migrated between CC threads so far (monotone; 0 with
  /// adaptive repartitioning off).
  uint64_t cc_migrations() const { return repart_->migrations(); }
  /// Epoch of the currently promoted partition map (0 = initial).
  uint64_t partition_map_epoch() const { return repart_->epoch(); }
  /// Last folded max/mean CC-thread load ratio x1000 (1000 = balanced).
  uint64_t cc_imbalance_x1000() const { return repart_->imbalance_x1000(); }

  /// Reads the committed value of a record as of "now" (after
  /// WaitForIdle). Test/example helper; not part of the transactional
  /// path. Returns NotFound when absent.
  Status ReadLatest(TableId table, Key key, void* out) const;

 private:
  friend class BohmOps;

  struct alignas(kCacheLineSize) CcState {
    VersionAllocator alloc;
    std::deque<std::pair<Version*, int64_t>> retired;  // (version, batch)
    RelaxedCounter freed;
    RelaxedCounter versions_created;
    /// Per-partition touch counters (adaptive repartitioning only, else
    /// null). Single-writer: at any moment each partition has exactly one
    /// owner, and ownership handoff rides the watermark/feed edges, so a
    /// slot never has two concurrent writers. The sequencer folds them
    /// between batches.
    std::unique_ptr<RelaxedCounter[]> touch;
    /// Retirees allocated by this thread but retired by another (the
    /// partition migrated in between): producers TryPush here, the owner
    /// drains into `retired`. Null when adaptive is off — the allocator
    /// and retirer then always coincide.
    std::unique_ptr<MpmcQueue<std::pair<Version*, int64_t>>> handback;
    /// Producer-side spill when a handback ring is momentarily full;
    /// retried on this thread's next DrainRetired (never blocks CC).
    std::deque<std::pair<Version*, int64_t>> handback_spill;
  };
  /// Single-writer wall-clock stall accumulator, one per pipeline thread
  /// (padded so stall accounting never shares a line across threads).
  struct alignas(kCacheLineSize) StallSlot {
    RelaxedCounter ns;
  };

  // --- sequencer stage (sequencer.cc) ---
  void SequencerLoop();
  void SealBatch(Batch* batch, int64_t id);
  /// Folds the per-thread per-partition touch counters into
  /// touch_totals_ and feeds them to the repartition controller
  /// (sequencer thread only; adaptive repartitioning only).
  void FoldTouchCounters();
  /// Encodes + hands the sealed batch to the log writer (sequencer thread
  /// only; no-op while replaying).
  void LogSealedBatch(const Batch& batch, int64_t id);

  /// Shared admission checks for Submit/SubmitBorrowed.
  Status CheckSubmit(const StoredProcedure* proc) const;

  // --- concurrency-control stage (cc_worker.cc) ---
  void CcLoop(uint32_t cc_id);
  void CcProcessTxn(uint32_t cc_id, BohmTxn* txn, int64_t batch_id);

  // --- execution stage (exec_worker.cc) ---
  void ExecLoop(uint32_t exec_id);
  bool TryExecute(uint32_t exec_id, BohmTxn* txn, uint32_t depth);
  bool EnsureReady(uint32_t exec_id, Version* v, uint32_t depth);
  Version* ResolveRead(ReadRef& ref, uint64_t ts) const;
  bool FillAbortedWrites(uint32_t exec_id, BohmTxn* txn, uint32_t depth);

  // --- garbage collection (gc.cc) ---
  void DrainRetired(uint32_t cc_id);
  void RetireVersion(uint32_t cc_id, Version* v, int64_t batch_id);

  uint64_t CompletedCount() const;

  struct InputItem {
    StoredProcedure* proc = nullptr;
    bool owned = false;
    /// MonotonicNanos() at Submit(); becomes BohmTxn::submit_tick.
    uint64_t submit_tick = 0;
  };

  Catalog catalog_;
  BohmConfig cfg_;
  BohmDatabase db_;
  /// Partition -> owner-thread map machinery (always present; an identity
  /// map that never migrates when adaptive is off). Mutated only by the
  /// sequencer; monitors are release-published.
  std::unique_ptr<RepartitionController> repart_;
  /// Sequencer-private scratch for the per-partition touch-counter fold.
  std::vector<uint64_t> touch_totals_;
  std::vector<uint32_t> record_sizes_;  // by table id
  BatchRing ring_;
  MpmcQueue<InputItem> input_;
  std::vector<std::unique_ptr<CcState>> cc_state_;
  /// Per-thread CC progress; execution admits batch b when Min() >= b.
  WatermarkSet cc_watermark_;
  /// Per-thread execution progress; Min() is Watermark() (GC/slot reuse).
  WatermarkSet exec_watermark_;
  /// Sealed-batch feed rings, one SPSC pair per consumer thread
  /// (sequencer is the sole producer). Capacity >= pipeline depth, so a
  /// push can never fail: at most `depth` sealed batches are un-consumed
  /// thanks to the sequencer's slot-reuse back-pressure.
  std::vector<std::unique_ptr<SpscQueue<int64_t>>> cc_feed_;
  std::vector<std::unique_ptr<SpscQueue<int64_t>>> exec_feed_;
  StatsRegistry stats_;  // one slice per execution thread
  StallSlot seq_stall_;
  std::vector<std::unique_ptr<StallSlot>> cc_stall_;
  std::vector<std::unique_ptr<StallSlot>> exec_stall_;
  std::shared_ptr<const BohmTestHooks> hooks_;

  /// Durable-log state (null when durability is off). Declaration order
  /// matters: the writer references the log, so it is declared after it
  /// (destroyed first).
  std::unique_ptr<BatchLog> log_;
  std::unique_ptr<LogWriter> log_writer_;
  StallSlot seq_log_stall_;  ///< sequencer blocked on the writer ring
  /// Per-exec-thread durable-ack wait (rule R6 gate).
  std::vector<std::unique_ptr<StallSlot>> exec_log_stall_;
  /// True while Recover() is pushing the old log back through the
  /// pipeline: suppresses re-logging and the durable-ack gate. The
  /// release store back to false publishes log_base_ (rule R6).
  std::atomic<bool> replaying_{false};
  /// seqno of batch id b is log_base_ + b; seqno 0 is reserved. Written
  /// by Recover() before replaying_ returns to false; read by the
  /// sequencer and exec threads only when replaying_ is false.
  uint64_t log_base_ = 1;
  bool recovered_ = false;  // Recover() ran (gates Start's nonempty check)
  RecoveryStats recovery_stats_;
  /// Sequencer-private scratch for batch payload encoding.
  std::vector<const StoredProcedure*> log_txn_scratch_;

  std::vector<std::thread> threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> sequencer_done_{false};
  std::atomic<int64_t> last_sealed_batch_{-1};
  std::atomic<uint64_t> submitted_{0};
  uint64_t next_ts_ = 1;         // sequencer-private
  int64_t next_batch_id_ = 0;    // sequencer-private
};

}  // namespace bohm
