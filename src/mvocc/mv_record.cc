#include "mvocc/mv_record.h"

namespace bohm {

MVTable::MVTable(const TableSpec& spec)
    : spec_(spec), capacity_(spec.capacity == 0 ? 1 : spec.capacity) {
  slots_ = std::make_unique<MVRecordSlot[]>(capacity_);
}

MVDatabase::MVDatabase(const Catalog& catalog) : catalog_(catalog) {
  tables_.resize(catalog_.MaxTableId());
  for (const TableSpec& spec : catalog_.tables()) {
    tables_[spec.id] = std::make_unique<MVTable>(spec);
  }
}

}  // namespace bohm
