#include "mvocc/mv_txn.h"

#include <mutex>

namespace bohm {

bool MVTxn::TryRegisterDependent(MVTxn* dependent) {
  std::lock_guard<SpinLock> guard(dep_lock_);
  if (State() != MVTxnState::kPreparing) return false;
  dependents_.push_back(dependent);
  dependent->dep_count.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void MVTxn::FinishAndResolveDependents(MVTxnState outcome) {
  std::vector<MVTxn*> to_resolve;
  {
    std::lock_guard<SpinLock> guard(dep_lock_);
    state.store(static_cast<uint32_t>(outcome), std::memory_order_release);
    to_resolve.swap(dependents_);
  }
  for (MVTxn* dep : to_resolve) {
    if (outcome == MVTxnState::kAborted) {
      dep->dep_failed.store(true, std::memory_order_release);
    }
    dep->dep_count.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace bohm
