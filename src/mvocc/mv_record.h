// Version storage for the Hekaton-style engines (optimistic Hekaton and
// Snapshot Isolation share one codebase, as in the paper's evaluation,
// Section 4).
//
// Following Larson et al. [21], a version's Begin/End fields transiently
// hold a *transaction reference* (tagged pointer) while the owning
// transaction is in flight, and are rewritten to plain timestamps during
// commit postprocessing. Mirroring the paper's configuration, records are
// reached through a simple fixed-size array index for dense-keyed tables
// and versions are never garbage collected.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "storage/schema.h"

namespace bohm {

class MVTxn;

/// Begin/End field encoding: either a timestamp in [0, kMVInfinity], or a
/// tagged MVTxn pointer with bit 63 set.
inline constexpr uint64_t kMVTxnFlag = 1ull << 63;
inline constexpr uint64_t kMVInfinity = (1ull << 62) - 1;
/// Begin value of an aborted (never-visible) version.
inline constexpr uint64_t kMVAbortedBegin = kMVInfinity;

inline bool MVIsTxn(uint64_t field) { return (field & kMVTxnFlag) != 0; }
inline MVTxn* MVTxnPtr(uint64_t field) {
  return reinterpret_cast<MVTxn*>(field & ~kMVTxnFlag);
}
inline uint64_t MVTagTxn(MVTxn* txn) {
  return reinterpret_cast<uint64_t>(txn) | kMVTxnFlag;
}

struct MVVersion {
  std::atomic<uint64_t> begin{kMVAbortedBegin};
  std::atomic<uint64_t> end{kMVInfinity};
  /// Older version (versions are pushed at the head of the chain).
  MVVersion* next = nullptr;

  void* data() { return this + 1; }
  const void* data() const { return this + 1; }
};

/// One record: the head of its version chain (newest first).
struct MVRecordSlot {
  std::atomic<MVVersion*> head{nullptr};
};

/// Array-indexed multi-version table ("a simple fixed-size array index to
/// access records", Section 4). Requires dense keys 0..capacity-1, which
/// all of the paper's workloads satisfy.
class MVTable {
 public:
  explicit MVTable(const TableSpec& spec);
  BOHM_DISALLOW_COPY_AND_ASSIGN(MVTable);

  const TableSpec& spec() const { return spec_; }

  MVRecordSlot* Slot(Key key) const {
    return key < capacity_ ? &slots_[key] : nullptr;
  }
  uint64_t capacity() const { return capacity_; }

 private:
  TableSpec spec_;
  uint64_t capacity_;
  std::unique_ptr<MVRecordSlot[]> slots_;
};

class MVDatabase {
 public:
  explicit MVDatabase(const Catalog& catalog);
  BOHM_DISALLOW_COPY_AND_ASSIGN(MVDatabase);

  MVTable* table(TableId id) const {
    return id < tables_.size() ? tables_[id].get() : nullptr;
  }
  const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
  std::vector<std::unique_ptr<MVTable>> tables_;
};

}  // namespace bohm
