#include "mvocc/engine.h"

#include <cassert>
#include <cstring>

#include "common/spin.h"

namespace bohm {

namespace {

/// Largest record size in the catalog (sizes the per-thread scratch
/// buffer handed to procedures after an internal abort).
uint32_t MaxRecordSize(const Catalog& catalog) {
  uint32_t m = 8;
  for (const auto& t : catalog.tables()) {
    if (t.record_size > m) m = t.record_size;
  }
  return m;
}

}  // namespace

/// TxnOps implementation for the Hekaton/SI engines. A write-write
/// conflict discovered mid-run flips the ops into "doomed" mode: the
/// procedure keeps running against scratch memory until it returns, after
/// which the engine aborts and retries. (Procedures that poll aborted()
/// return early instead.)
class MVOps final : public TxnOps {
 public:
  MVOps(MVOccEngine* engine, MVTxn* txn, MVOccEngine::ThreadCtx* ctx,
        ThreadStats* stats)
      : engine_(engine), txn_(txn), ctx_(ctx), stats_(stats) {}

  const void* Read(TableId table, Key key) override {
    stats_->reads.Inc();
    if (doomed_) return ctx_->scratch.get();
    MVTable* t = engine_->db_.table(table);
    MVRecordSlot* slot = t == nullptr ? nullptr : t->Slot(key);
    if (slot == nullptr) return nullptr;
    MVVersion* v = engine_->VisibleVersion(slot, txn_);
    if (v == nullptr) return nullptr;
    // Track foreign reads for Hekaton validation; reads of this
    // transaction's own writes are trivially stable.
    uint64_t vb = v->begin.load(std::memory_order_acquire);
    if (engine_->cfg_.mode == MVOccMode::kHekaton &&
        !(MVIsTxn(vb) && MVTxnPtr(vb) == txn_)) {
      txn_->read_set.push_back({v});
    }
    return v->data();
  }

  void* Write(TableId table, Key key) override {
    stats_->writes.Inc();
    if (doomed_) return ctx_->scratch.get();
    MVTable* t = engine_->db_.table(table);
    MVRecordSlot* slot = t == nullptr ? nullptr : t->Slot(key);
    assert(slot != nullptr && "write to unknown record");
    if (slot == nullptr) {
      doomed_ = true;
      return ctx_->scratch.get();
    }
    MVVersion* nv = engine_->InstallWrite(slot, txn_, table, *ctx_);
    if (nv == nullptr) {
      doomed_ = true;  // write-write conflict: abort + retry after Run
      return ctx_->scratch.get();
    }
    return nv->data();
  }

  void Abort() override { logic_abort_ = true; }
  bool aborted() const override { return logic_abort_ || doomed_; }

  bool doomed() const { return doomed_; }
  bool logic_abort() const { return logic_abort_; }

 private:
  MVOccEngine* engine_;
  MVTxn* txn_;
  MVOccEngine::ThreadCtx* ctx_;
  ThreadStats* stats_;
  bool doomed_ = false;
  bool logic_abort_ = false;
};

MVOccEngine::MVOccEngine(const Catalog& catalog, MVOccConfig cfg)
    : catalog_(catalog),
      cfg_([&] {
        if (cfg.threads == 0) cfg.threads = 1;
        return cfg;
      }()),
      db_(catalog_),
      stats_(cfg_.threads) {
  record_sizes_.resize(catalog_.MaxTableId(), 0);
  for (const TableSpec& t : catalog_.tables()) {
    record_sizes_[t.id] = t.record_size;
  }
  const uint32_t scratch = MaxRecordSize(catalog_);
  for (uint32_t i = 0; i < cfg_.threads; ++i) {
    ctx_.push_back(std::make_unique<ThreadCtx>());
    ctx_.back()->scratch = std::make_unique<char[]>(scratch);
  }
}

MVOccEngine::~MVOccEngine() = default;

MVVersion* MVOccEngine::AllocVersion(ThreadCtx& ctx, TableId table) {
  void* mem = ctx.version_arena.Allocate(
      sizeof(MVVersion) + record_sizes_[table], alignof(MVVersion));
  return new (mem) MVVersion();
}

Status MVOccEngine::Load(TableId table, Key key, const void* payload) {
  MVTable* t = db_.table(table);
  if (t == nullptr) return Status::NotFound("no such table");
  MVRecordSlot* slot = t->Slot(key);
  if (slot == nullptr) {
    return Status::InvalidArgument("key outside dense capacity");
  }
  // relaxed: Load runs single-threaded before workers start; no
  // concurrent access exists yet and the head release below publishes.
  if (slot->head.load(std::memory_order_relaxed) != nullptr) {
    return Status::InvalidArgument("duplicate key in load");
  }
  MVVersion* v = AllocVersion(*ctx_[0], table);
  if (payload != nullptr) {
    std::memcpy(v->data(), payload, record_sizes_[table]);
  } else {
    std::memset(v->data(), 0, record_sizes_[table]);
  }
  // relaxed: the version is still private; the slot->head release store
  // below is the publication point that orders these initializers.
  v->begin.store(0, std::memory_order_relaxed);
  v->end.store(kMVInfinity, std::memory_order_relaxed);
  slot->head.store(v, std::memory_order_release);
  return Status::OK();
}

MVTxn* MVOccEngine::BeginTxn(ThreadCtx& ctx) {
  ctx.graveyard.push_back(std::make_unique<MVTxn>());
  MVTxn* txn = ctx.graveyard.back().get();
  txn->begin_ts = clock_.fetch_add(1, std::memory_order_acq_rel);
  return txn;
}

MVVersion* MVOccEngine::VisibleVersion(MVRecordSlot* slot, MVTxn* txn) {
  const uint64_t B = txn->begin_ts;
  for (MVVersion* v = slot->head.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    // --- Begin-field test: when was this version born? ---
    uint64_t vb = v->begin.load(std::memory_order_acquire);
    uint64_t effective_begin = kMVAbortedBegin;
    if (MVIsTxn(vb)) {
      MVTxn* tb = MVTxnPtr(vb);
      if (tb == txn) return v;  // own write: newest, end == infinity
      switch (tb->State()) {
        case MVTxnState::kCommitted:
          effective_begin = tb->end_ts.load(std::memory_order_acquire);
          break;
        case MVTxnState::kPreparing: {
          uint64_t tb_end = tb->end_ts.load(std::memory_order_acquire);
          if (cfg_.commit_dependencies && tb_end < B) {
            // Speculatively read the uncommitted version under a commit
            // dependency; if tb later aborts, so do we (cascade).
            if (tb->TryRegisterDependent(txn)) {
              effective_begin = tb_end;
              break;
            }
            // Registration raced with tb finishing: resolve by state.
            if (tb->State() == MVTxnState::kCommitted) {
              effective_begin = tb->end_ts.load(std::memory_order_acquire);
              break;
            }
          }
          continue;  // not visible (or tb aborted): try the older version
        }
        case MVTxnState::kActive:
        case MVTxnState::kAborted:
          continue;
      }
    } else {
      if (vb == kMVAbortedBegin) continue;
      effective_begin = vb;
    }
    if (effective_begin > B) continue;

    // --- End-field test: had it been superseded as of B? ---
    uint64_t ve = v->end.load(std::memory_order_acquire);
    if (MVIsTxn(ve)) {
      MVTxn* te = MVTxnPtr(ve);
      if (te == txn) continue;  // we superseded it; our new version wins
      switch (te->State()) {
        case MVTxnState::kCommitted:
          if (te->end_ts.load(std::memory_order_acquire) <= B) continue;
          return v;
        case MVTxnState::kPreparing: {
          uint64_t te_end = te->end_ts.load(std::memory_order_acquire);
          if (te_end > B) return v;  // stays visible whether te commits or not
          // te would invalidate this version before our snapshot; assume
          // it commits (dependency), so the version is invisible.
          if (cfg_.commit_dependencies && te->TryRegisterDependent(txn)) {
            continue;
          }
          // Raced with te finishing: re-resolve by final state.
          if (te->State() == MVTxnState::kCommitted &&
              te->end_ts.load(std::memory_order_acquire) <= B) {
            continue;
          }
          return v;
        }
        case MVTxnState::kActive:
        case MVTxnState::kAborted:
          return v;  // in-flight or failed overwrite: still visible
      }
    }
    if (ve > B) return v;
    // Superseded before our snapshot; keep walking (can happen when the
    // newer version was skipped as an uncommitted/aborted install).
  }
  return nullptr;
}

MVVersion* MVOccEngine::InstallWrite(MVRecordSlot* slot, MVTxn* txn,
                                     TableId table, ThreadCtx& ctx) {
  MVVersion* head = slot->head.load(std::memory_order_acquire);

  // Find the newest non-aborted version; that is the one whose End field
  // arbitrates write-write conflicts.
  MVVersion* v = head;
  while (v != nullptr) {
    uint64_t vb = v->begin.load(std::memory_order_acquire);
    if (MVIsTxn(vb)) {
      MVTxn* tb = MVTxnPtr(vb);
      if (tb->State() == MVTxnState::kAborted) {
        v = v->next;
        continue;
      }
      // Uncommitted (Active/Preparing) newest version owned by another
      // transaction: first-updater-wins says we lose. (Our own write to
      // the same record twice is excluded by read/write-set validation.)
      if (tb != txn && tb->State() != MVTxnState::kCommitted) return nullptr;
      if (tb == txn) return nullptr;  // duplicate write (programmer error)
    } else if (vb == kMVAbortedBegin) {
      v = v->next;
      continue;
    }
    break;
  }

  if (v != nullptr) {
    // The newest live version must already be visible to us; a version
    // committed after our begin timestamp is a write-write conflict with a
    // committed concurrent transaction (first-committer-wins).
    uint64_t vb = v->begin.load(std::memory_order_acquire);
    uint64_t effective_begin =
        MVIsTxn(vb) ? MVTxnPtr(vb)->end_ts.load(std::memory_order_acquire)
                    : vb;
    if (effective_begin > txn->begin_ts) return nullptr;
    uint64_t expected = kMVInfinity;
    if (!v->end.compare_exchange_strong(expected, MVTagTxn(txn),
                                        std::memory_order_acq_rel)) {
      return nullptr;  // another writer tagged it first
    }
  }

  MVVersion* nv = AllocVersion(ctx, table);
  nv->begin.store(MVTagTxn(txn), std::memory_order_release);
  // relaxed: nv is thread-private until the head CAS below publishes it
  // (acq_rel), which orders this initializing store for readers.
  nv->end.store(kMVInfinity, std::memory_order_relaxed);
  nv->next = head;
  if (!slot->head.compare_exchange_strong(head, nv,
                                          std::memory_order_acq_rel)) {
    // Extremely rare: our head snapshot went stale between the End tag and
    // the push (e.g. an aborted installer re-pushed). Release the tag and
    // report a conflict; the transaction retries.
    if (v != nullptr) {
      v->end.store(kMVInfinity, std::memory_order_release);
    }
    return nullptr;
  }
  txn->write_set.push_back({slot, nv, v});
  return nv;
}

bool MVOccEngine::ValidateReads(MVTxn* txn) {
  const uint64_t E = txn->end_ts.load(std::memory_order_acquire);
  for (const MVTxn::ReadEntry& entry : txn->read_set) {
    MVVersion* v = entry.version;
    uint64_t ve = v->end.load(std::memory_order_acquire);
    if (MVIsTxn(ve)) {
      MVTxn* te = MVTxnPtr(ve);
      if (te == txn) continue;  // our own RMW of the version we read
      switch (te->State()) {
        case MVTxnState::kActive:
          continue;  // te's end timestamp will exceed ours
        case MVTxnState::kAborted:
          continue;
        case MVTxnState::kPreparing:
        case MVTxnState::kCommitted:
          if (te->end_ts.load(std::memory_order_acquire) > E) continue;
          return false;  // superseded within our lifetime: not repeatable
      }
    } else if (ve <= E) {
      return false;
    }
  }
  return true;
}

bool MVOccEngine::WaitForDependencies(MVTxn* txn) {
  SpinWait wait;
  while (txn->dep_count.load(std::memory_order_acquire) > 0) wait.Pause();
  return !txn->dep_failed.load(std::memory_order_acquire);
}

void MVOccEngine::UndoWrites(MVTxn* txn) {
  for (const MVTxn::WriteEntry& w : txn->write_set) {
    // Hide the installed version forever; readers skip aborted begins.
    w.installed->begin.store(kMVAbortedBegin, std::memory_order_release);
    if (w.replaced != nullptr) {
      w.replaced->end.store(kMVInfinity, std::memory_order_release);
    }
  }
}

void MVOccEngine::Postprocess(MVTxn* txn) {
  const uint64_t E = txn->end_ts.load(std::memory_order_acquire);
  for (const MVTxn::WriteEntry& w : txn->write_set) {
    w.installed->begin.store(E, std::memory_order_release);
    if (w.replaced != nullptr) {
      w.replaced->end.store(E, std::memory_order_release);
    }
  }
}

Status MVOccEngine::Execute(StoredProcedure& proc, uint32_t thread_id) {
  if (thread_id >= cfg_.threads) {
    return Status::InvalidArgument("bad thread id");
  }
  ThreadCtx& ctx = *ctx_[thread_id];
  ThreadStats& st = stats_.Slice(thread_id);

  for (;;) {
    MVTxn* txn = BeginTxn(ctx);
    MVOps ops(this, txn, &ctx, &st);
    proc.Run(ops);

    if (ops.doomed()) {
      txn->FinishAndResolveDependents(MVTxnState::kAborted);
      UndoWrites(txn);
      st.cc_aborts.Inc();
      st.retries.Inc();
      continue;  // paper: optimistic baselines retry cc-induced aborts
    }
    if (ops.logic_abort()) {
      txn->FinishAndResolveDependents(MVTxnState::kAborted);
      UndoWrites(txn);
      st.logic_aborts.Inc();
      return Status::Aborted("transaction logic aborted");
    }

    // Precommit: acquire the end timestamp (second global-counter
    // increment), then enter Preparing.
    txn->end_ts.store(clock_.fetch_add(1, std::memory_order_acq_rel),
                      std::memory_order_release);
    txn->state.store(static_cast<uint32_t>(MVTxnState::kPreparing),
                     std::memory_order_release);

    bool ok = cfg_.mode == MVOccMode::kHekaton ? ValidateReads(txn) : true;
    if (ok) ok = WaitForDependencies(txn);

    if (!ok) {
      txn->FinishAndResolveDependents(MVTxnState::kAborted);
      UndoWrites(txn);
      st.cc_aborts.Inc();
      st.retries.Inc();
      continue;
    }

    Postprocess(txn);
    txn->FinishAndResolveDependents(MVTxnState::kCommitted);
    st.commits.Inc();
    return Status::OK();
  }
}

Status MVOccEngine::ReadLatest(TableId table, Key key, void* out) const {
  MVTable* t = db_.table(table);
  MVRecordSlot* slot = t == nullptr ? nullptr : t->Slot(key);
  if (slot == nullptr) return Status::NotFound("no such record");
  for (MVVersion* v = slot->head.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    uint64_t vb = v->begin.load(std::memory_order_acquire);
    if (MVIsTxn(vb) || vb == kMVAbortedBegin) continue;
    std::memcpy(out, v->data(), record_sizes_[table]);
    return Status::OK();
  }
  return Status::NotFound("no committed version");
}

}  // namespace bohm
