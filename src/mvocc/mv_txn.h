// Transaction objects for the Hekaton/SI engines, including commit
// dependencies: "an optimization that allows a transaction to
// speculatively read uncommitted data" (Section 4). A transaction that
// speculatively reads a Preparing transaction's version registers itself
// as a dependent; it cannot commit until the dependency resolves, and
// aborts (cascading) if the dependency aborts.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/spin.h"
#include "mvocc/mv_record.h"

namespace bohm {

enum class MVTxnState : uint32_t {
  kActive = 0,     // executing logic
  kPreparing = 1,  // end timestamp acquired, validating
  kCommitted = 2,
  kAborted = 3,
};

class MVTxn {
 public:
  MVTxn() = default;
  BOHM_DISALLOW_COPY_AND_ASSIGN(MVTxn);

  std::atomic<uint32_t> state{static_cast<uint32_t>(MVTxnState::kActive)};
  uint64_t begin_ts = 0;
  /// Valid once state >= kPreparing (published before the state change).
  std::atomic<uint64_t> end_ts{0};

  /// Outstanding commit dependencies this transaction waits on.
  std::atomic<int32_t> dep_count{0};
  /// Set when any dependency aborted (forces a cascaded abort).
  std::atomic<bool> dep_failed{false};

  MVTxnState State() const {
    return static_cast<MVTxnState>(state.load(std::memory_order_acquire));
  }

  /// Registers `dependent` as waiting on this transaction's outcome.
  /// Returns false when this transaction is no longer Preparing — the
  /// caller must then resolve against the final state itself.
  bool TryRegisterDependent(MVTxn* dependent);

  /// Transitions Preparing -> outcome and resolves all registered
  /// dependents (decrement their counters; flag them on abort).
  void FinishAndResolveDependents(MVTxnState outcome);

  /// Read-set entry: version observed (Hekaton validation re-checks its
  /// visibility as of the end timestamp).
  struct ReadEntry {
    MVVersion* version;
  };
  /// Write-set entry: the version this transaction installed and the
  /// predecessor whose End field it tagged (nullptr for an insert).
  struct WriteEntry {
    MVRecordSlot* slot;
    MVVersion* installed;
    MVVersion* replaced;
  };

  std::vector<ReadEntry> read_set;
  std::vector<WriteEntry> write_set;

 private:
  SpinLock dep_lock_;
  std::vector<MVTxn*> dependents_;
};

}  // namespace bohm
