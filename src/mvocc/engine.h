// Hekaton-style multi-version concurrency control (optimistic variant of
// Larson et al. [21]) and Snapshot Isolation, sharing one codebase exactly
// as the paper's evaluation does (Section 4):
//
//  * A global 64-bit counter issues begin and end timestamps with atomic
//    fetch-and-increment — at least two increments per transaction. This
//    is deliberately faithful to the baseline; it is the scalability
//    bottleneck Figures 6, 7 and 10 expose.
//  * Writers tag the End field of the version they supersede
//    (first-updater-wins write-write conflicts) and install the new
//    version with a transaction-tagged Begin field.
//  * Readers never block: they read the version visible as of their begin
//    timestamp, speculatively reading Preparing transactions' versions
//    under a commit dependency.
//  * In Hekaton mode, reads are validated at precommit ("Validate Reads",
//    Section 2.2): every read must still be visible as of the end
//    timestamp, otherwise the transaction aborts and is retried.
//    In SI mode there is no read validation — write skew is permitted.
//  * Versions are never garbage collected, matching the paper's
//    configuration of these baselines.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"
#include "common/stats.h"
#include "txn/engine_iface.h"
#include "mvocc/mv_record.h"
#include "mvocc/mv_txn.h"

namespace bohm {

enum class MVOccMode {
  kHekaton,  // serializable: validate reads at precommit
  kSnapshotIsolation,
};

struct MVOccConfig {
  MVOccMode mode = MVOccMode::kHekaton;
  uint32_t threads = 1;
  /// Allow speculative reads of Preparing transactions' versions under
  /// commit dependencies (the paper's baselines enable this).
  bool commit_dependencies = true;
};

class MVOccEngine final : public ExecutorEngine {
 public:
  MVOccEngine(const Catalog& catalog, MVOccConfig cfg);
  ~MVOccEngine() override;
  BOHM_DISALLOW_COPY_AND_ASSIGN(MVOccEngine);

  /// Inserts an initial record (timestamp-0 version). Single-threaded,
  /// before first Execute.
  Status Load(TableId table, Key key, const void* payload) override;

  Status Execute(StoredProcedure& proc, uint32_t thread_id) override;
  uint32_t worker_threads() const override { return cfg_.threads; }
  StatsSnapshot Stats() const override { return stats_.Fold(); }
  const char* name() const override {
    return cfg_.mode == MVOccMode::kHekaton ? "Hekaton" : "SI";
  }

  /// Non-transactional helper for tests/examples: reads the newest
  /// committed value. Call only when quiescent.
  Status ReadLatest(TableId table, Key key, void* out) const;

  /// Current value of the global timestamp counter (test hook; the paper's
  /// point is that this number grows by >= 2 per transaction).
  // relaxed: monotonic counter sampled for reporting only; no other data
  // is synchronized through this read.
  uint64_t clock() const { return clock_.load(std::memory_order_relaxed); }

 private:
  friend class MVOps;

  struct alignas(kCacheLineSize) ThreadCtx {
    Arena version_arena{1u << 20};
    /// Keeps transaction objects alive for the engine's lifetime: version
    /// Begin/End fields hold raw MVTxn pointers until postprocessing, and
    /// a concurrent reader may dereference one at any time. (A production
    /// system would recycle them under epoch protection; the paper's
    /// prototypes also keep it simple by never reclaiming versions.)
    std::vector<std::unique_ptr<MVTxn>> graveyard;
    std::unique_ptr<char[]> scratch;  // returned after internal aborts
  };

  MVVersion* AllocVersion(ThreadCtx& ctx, TableId table);
  MVTxn* BeginTxn(ThreadCtx& ctx);

  /// Returns the version of `slot` visible to `txn` as of its begin
  /// timestamp (registering commit dependencies for speculative reads),
  /// or nullptr when no version is visible.
  MVVersion* VisibleVersion(MVRecordSlot* slot, MVTxn* txn);

  /// First-updater-wins write path; returns the installed version or
  /// nullptr on a write-write conflict.
  MVVersion* InstallWrite(MVRecordSlot* slot, MVTxn* txn, TableId table,
                          ThreadCtx& ctx);

  bool ValidateReads(MVTxn* txn);
  /// Waits for registered commit dependencies; false if any aborted.
  bool WaitForDependencies(MVTxn* txn);
  void UndoWrites(MVTxn* txn);
  void Postprocess(MVTxn* txn);

  Catalog catalog_;
  MVOccConfig cfg_;
  MVDatabase db_;
  std::vector<uint32_t> record_sizes_;
  std::vector<std::unique_ptr<ThreadCtx>> ctx_;
  StatsRegistry stats_;

  /// THE global timestamp counter (Section 2.1).
  alignas(kCacheLineSize) std::atomic<uint64_t> clock_{1};
};

}  // namespace bohm
