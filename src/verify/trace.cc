#include "verify/trace.h"

namespace bohm {

SerializationGraph BuildSerializationGraph(
    const std::vector<TraceTxn>& txns,
    const std::unordered_map<RecordId, KeyHistory>& histories) {
  SerializationGraph graph;

  // value -> writer id (write values are unique by contract).
  std::unordered_map<uint64_t, uint64_t> value_writer;
  for (const TraceTxn& t : txns) {
    graph.AddTxn(t.id);
    for (const auto& [rec, value] : t.writes) {
      (void)rec;
      value_writer[value] = t.id;
    }
  }

  // (key, writer id) -> position in the key's version order.
  std::unordered_map<RecordId, std::unordered_map<uint64_t, size_t>>
      position;
  for (const auto& [rec, hist] : histories) {
    auto& pos = position[rec];
    for (size_t i = 0; i < hist.writer_ids.size(); ++i) {
      pos[hist.writer_ids[i]] = i;
    }
  }

  // ww edges: consecutive committed writers of each key.
  for (const auto& [rec, hist] : histories) {
    (void)rec;
    for (size_t i = 1; i < hist.writer_ids.size(); ++i) {
      graph.AddDep(hist.writer_ids[i - 1], hist.writer_ids[i], DepKind::kWw);
    }
  }

  // wr and rw edges from each transaction's reads.
  for (const TraceTxn& t : txns) {
    for (const auto& [rec, value] : t.reads) {
      auto hist_it = histories.find(rec);
      const KeyHistory* hist =
          hist_it == histories.end() ? nullptr : &hist_it->second;

      auto w_it = value_writer.find(value);
      if (w_it != value_writer.end()) {
        const uint64_t writer = w_it->second;
        graph.AddDep(writer, t.id, DepKind::kWr);
        // Anti-dependency on the version that superseded the one read.
        if (hist != nullptr) {
          auto pos_it = position[rec].find(writer);
          if (pos_it != position[rec].end() &&
              pos_it->second + 1 < hist->writer_ids.size()) {
            graph.AddDep(t.id, hist->writer_ids[pos_it->second + 1],
                         DepKind::kRw);
          }
        }
      } else if (hist != nullptr && !hist->writer_ids.empty()) {
        // Read of the initial version: anti-dependency on the first
        // committed writer.
        graph.AddDep(t.id, hist->writer_ids.front(), DepKind::kRw);
      }
    }
  }
  return graph;
}

}  // namespace bohm
