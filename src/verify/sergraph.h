// Serialization graphs — the formalism the paper uses to define
// serializability (Section 2, citing Adya et al.): nodes are committed
// transactions; edges are write-write (ww), write-read (wr) and
// read-write (rw, "anti-dependency") dependencies; an execution is
// serializable iff its graph is acyclic.
//
// Used as a *testing oracle*: tests extract dependency edges from engine
// executions (exactly, for Bohm, from its version chains) and assert
// acyclicity — or, for Snapshot Isolation's write-skew anomaly, assert
// that the expected rw-rw cycle is present.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/macros.h"

namespace bohm {

enum class DepKind : uint8_t { kWw, kWr, kRw };

const char* DepKindName(DepKind kind);

class SerializationGraph {
 public:
  using TxnId = uint64_t;

  void AddTxn(TxnId id);
  /// Adds a dependency edge `from` -> `to` (self-edges are ignored:
  /// a transaction trivially depends on itself). Nodes are added
  /// implicitly.
  void AddDep(TxnId from, TxnId to, DepKind kind);

  size_t NodeCount() const { return adj_.size(); }
  size_t EdgeCount() const { return edges_; }

  /// True when the graph contains a cycle.
  bool HasCycle() const;

  /// Returns one cycle as a list of transaction ids (first == last), or
  /// an empty vector when the graph is acyclic. Iterative DFS — safe for
  /// graphs with very long paths.
  std::vector<TxnId> FindCycle() const;

  /// A topological order of the transactions (a valid serial order), or
  /// an empty vector when the graph is cyclic.
  std::vector<TxnId> SerialOrder() const;

  /// Human-readable edge dump for diagnostics.
  std::string ToString() const;

 private:
  struct Edge {
    TxnId to;
    DepKind kind;
  };

  std::unordered_map<TxnId, std::vector<Edge>> adj_;
  size_t edges_ = 0;
};

}  // namespace bohm
