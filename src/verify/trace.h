// Building serialization graphs from execution traces.
//
// Verification workloads make every write value unique (the value encodes
// the writing transaction), so the "reads-from" relation is recoverable
// from observed values alone. Combined with the per-key version order —
// which Bohm's version chains expose exactly (run with GC disabled) —
// this yields the complete Adya dependency graph of an execution:
//
//   ww: consecutive writers of a key, in version order
//   wr: version's writer -> any transaction that observed the version
//   rw: observer of version i -> writer of version i+1 (anti-dependency)
//
// The graph must be acyclic for every serializable engine; SI traces may
// contain the write-skew rw-rw cycle (Section 2 / Figure 1 of the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "txn/key.h"
#include "verify/sergraph.h"

namespace bohm {

/// What one committed transaction observed and produced. Values must be
/// globally unique per (writer, key) across the trace.
struct TraceTxn {
  uint64_t id = 0;
  /// key -> value observed (omit keys that read "record absent").
  std::unordered_map<RecordId, uint64_t> reads;
  /// key -> value written.
  std::unordered_map<RecordId, uint64_t> writes;
};

/// Committed write order of one record, oldest to newest, as transaction
/// ids; the initially-loaded version is implicit and precedes writers[0].
struct KeyHistory {
  std::vector<uint64_t> writer_ids;
};

/// Builds the dependency graph. Reads of values not written by any traced
/// transaction are treated as reads of the initial version (rw edge to
/// the key's first writer, no wr edge).
SerializationGraph BuildSerializationGraph(
    const std::vector<TraceTxn>& txns,
    const std::unordered_map<RecordId, KeyHistory>& histories);

}  // namespace bohm
