#include "verify/sergraph.h"

#include <algorithm>
#include <sstream>

namespace bohm {

const char* DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kWw:
      return "ww";
    case DepKind::kWr:
      return "wr";
    case DepKind::kRw:
      return "rw";
  }
  return "?";
}

void SerializationGraph::AddTxn(TxnId id) { (void)adj_[id]; }

void SerializationGraph::AddDep(TxnId from, TxnId to, DepKind kind) {
  if (from == to) return;
  adj_[from].push_back(Edge{to, kind});
  (void)adj_[to];
  ++edges_;
}

bool SerializationGraph::HasCycle() const { return !FindCycle().empty(); }

std::vector<SerializationGraph::TxnId> SerializationGraph::FindCycle() const {
  // Iterative three-color DFS; when a back edge (to a gray node) is found,
  // the path from that node to the top of the stack is a cycle.
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<TxnId, Color> color;
  color.reserve(adj_.size());
  for (const auto& [id, _] : adj_) color[id] = Color::kWhite;

  struct Frame {
    TxnId id;
    size_t next_edge;
  };

  for (const auto& [root, _] : adj_) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack;
    stack.push_back({root, 0});
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto it = adj_.find(frame.id);
      const std::vector<Edge>& out = it->second;
      if (frame.next_edge < out.size()) {
        TxnId next = out[frame.next_edge].to;
        ++frame.next_edge;
        Color c = color[next];
        if (c == Color::kGray) {
          // Found a cycle: slice the stack from `next` to the top.
          std::vector<TxnId> cycle;
          size_t start = 0;
          for (size_t i = 0; i < stack.size(); ++i) {
            if (stack[i].id == next) {
              start = i;
              break;
            }
          }
          for (size_t i = start; i < stack.size(); ++i) {
            cycle.push_back(stack[i].id);
          }
          cycle.push_back(next);
          return cycle;
        }
        if (c == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back({next, 0});
        }
      } else {
        color[frame.id] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

std::vector<SerializationGraph::TxnId> SerializationGraph::SerialOrder()
    const {
  // Kahn's algorithm.
  std::unordered_map<TxnId, size_t> indegree;
  indegree.reserve(adj_.size());
  for (const auto& [id, _] : adj_) indegree[id];
  for (const auto& [id, out] : adj_) {
    for (const Edge& e : out) ++indegree[e.to];
  }
  std::vector<TxnId> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.push_back(id);
  }
  // Deterministic output order helps test diagnostics.
  std::sort(ready.begin(), ready.end());
  std::vector<TxnId> order;
  order.reserve(adj_.size());
  while (!ready.empty()) {
    // Pop the smallest ready id (stable across runs).
    auto min_it = std::min_element(ready.begin(), ready.end());
    TxnId id = *min_it;
    *min_it = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const Edge& e : adj_.at(id)) {
      if (--indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != adj_.size()) return {};  // cyclic
  return order;
}

std::string SerializationGraph::ToString() const {
  std::ostringstream os;
  for (const auto& [id, out] : adj_) {
    for (const Edge& e : out) {
      os << "T" << id << " -" << DepKindName(e.kind) << "-> T" << e.to
         << "\n";
    }
  }
  return os.str();
}

}  // namespace bohm
