// Single-version storage used by the Silo-OCC and 2PL baselines.
//
// Each record slot carries a 64-bit header word in front of its payload.
// Silo uses it as the TID word (lock bit | epoch | sequence) of its
// seqlock-style commit protocol; 2PL leaves it untouched (its locks live
// in a separate lock table, as in the paper's locking implementation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/status.h"
#include "storage/schema.h"

namespace bohm {

/// One record: header word + payload bytes, laid out contiguously.
struct SVSlot {
  std::atomic<uint64_t> header{0};
  // payload follows immediately
  void* payload() { return this + 1; }
  const void* payload() const { return this + 1; }
};

/// Hash-indexed fixed-capacity single-version table. Records are inserted
/// during a single-threaded load phase; steady-state access is lookup-only
/// (the paper's workloads do not insert), so lookups need no latching.
class SVTable {
 public:
  explicit SVTable(const TableSpec& spec);
  BOHM_DISALLOW_COPY_AND_ASSIGN(SVTable);

  const TableSpec& spec() const { return spec_; }

  /// Inserts a record with the given initial payload (nullptr zero-fills).
  /// Single-threaded load phase only. Fails with ResourceExhausted when
  /// capacity is reached, InvalidArgument on duplicate key.
  Status Insert(Key key, const void* initial);

  /// Returns the slot for `key`, or nullptr when absent. Safe to call
  /// concurrently with other lookups and with payload mutation.
  SVSlot* Lookup(Key key) const;

  uint64_t size() const { return count_; }

 private:
  struct IndexEntry {
    Key key;
    uint32_t slot_plus_one;  // 0 = empty
  };

  SVSlot* SlotAt(uint64_t i) const {
    return reinterpret_cast<SVSlot*>(slab_.get() + i * slot_bytes_);
  }

  TableSpec spec_;
  size_t slot_bytes_;
  uint64_t capacity_;
  uint64_t count_ = 0;
  std::unique_ptr<char[]> slab_;
  // Open-addressing index, power-of-two sized, linear probing.
  std::vector<IndexEntry> index_;
  uint64_t index_mask_;
};

/// All single-version tables of a database instance.
class SVDatabase {
 public:
  explicit SVDatabase(const Catalog& catalog);
  BOHM_DISALLOW_COPY_AND_ASSIGN(SVDatabase);

  SVTable* table(TableId id) const {
    return id < tables_.size() ? tables_[id].get() : nullptr;
  }
  const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
  std::vector<std::unique_ptr<SVTable>> tables_;
};

}  // namespace bohm
