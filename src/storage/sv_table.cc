#include "storage/sv_table.h"

#include <cstring>
#include <new>

namespace bohm {
namespace {

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

SVTable::SVTable(const TableSpec& spec) : spec_(spec) {
  slot_bytes_ = AlignUp(sizeof(SVSlot) + spec.record_size, alignof(SVSlot));
  capacity_ = spec.capacity == 0 ? 1 : spec.capacity;
  slab_ = std::make_unique<char[]>(slot_bytes_ * capacity_);
  // 2x capacity keeps the probe sequences short.
  uint64_t index_size = NextPow2(capacity_ * 2);
  index_.assign(index_size, IndexEntry{0, 0});
  index_mask_ = index_size - 1;
}

Status SVTable::Insert(Key key, const void* initial) {
  if (count_ >= capacity_) {
    return Status::ResourceExhausted("table full: " + spec_.name);
  }
  uint64_t pos = HashKey(key) & index_mask_;
  for (;;) {
    IndexEntry& e = index_[pos];
    if (e.slot_plus_one == 0) {
      SVSlot* slot = new (SlotAt(count_)) SVSlot();
      // plain-copy: Insert runs in the single-threaded load phase, before
      // any worker (and so any seqlock reader) can reach this slot.
      if (initial != nullptr) {
        std::memcpy(slot->payload(), initial, spec_.record_size);
      } else {
        std::memset(slot->payload(), 0, spec_.record_size);
      }
      e.key = key;
      e.slot_plus_one = static_cast<uint32_t>(count_ + 1);
      ++count_;
      return Status::OK();
    }
    if (e.key == key) {
      return Status::InvalidArgument("duplicate key");
    }
    pos = (pos + 1) & index_mask_;
  }
}

SVSlot* SVTable::Lookup(Key key) const {
  uint64_t pos = HashKey(key) & index_mask_;
  for (;;) {
    const IndexEntry& e = index_[pos];
    if (e.slot_plus_one == 0) return nullptr;
    if (e.key == key) return SlotAt(e.slot_plus_one - 1);
    pos = (pos + 1) & index_mask_;
  }
}

SVDatabase::SVDatabase(const Catalog& catalog) : catalog_(catalog) {
  tables_.resize(catalog_.MaxTableId());
  for (const TableSpec& spec : catalog_.tables()) {
    tables_[spec.id] = std::make_unique<SVTable>(spec);
  }
}

}  // namespace bohm
