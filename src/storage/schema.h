// Table schemas. The paper's workloads use fixed-size records (YCSB:
// 1,000 bytes; SmallBank and the microbenchmark: 8 bytes), so tables are
// declared with a fixed record size and a capacity hint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/key.h"

namespace bohm {

struct TableSpec {
  TableId id = 0;
  std::string name;
  /// Fixed payload size of every record in this table, in bytes.
  uint32_t record_size = 8;
  /// Expected number of distinct keys; sizes hash indexes and, for
  /// dense-keyed tables, the array index used by the Hekaton/SI engines.
  uint64_t capacity = 0;
  /// True when keys are exactly 0..capacity-1. All of the paper's
  /// workloads are dense-keyed; dense tables let the MV-OCC engines use
  /// the "simple fixed-size array index" the paper describes.
  bool dense_keys = true;
};

/// The set of tables a database instance serves. Immutable once built.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::vector<TableSpec> tables);

  /// Adds a table; ids must be unique. Returns InvalidArgument otherwise.
  Status AddTable(TableSpec spec);

  const TableSpec* Find(TableId id) const;
  const std::vector<TableSpec>& tables() const { return tables_; }
  /// Largest table id + 1 (tables are typically densely numbered).
  TableId MaxTableId() const;

 private:
  std::vector<TableSpec> tables_;
};

}  // namespace bohm
