#include "storage/schema.h"

namespace bohm {

Catalog::Catalog(std::vector<TableSpec> tables) {
  for (auto& t : tables) {
    Status s = AddTable(std::move(t));
    (void)s;  // duplicate ids in an initializer are a programmer error
  }
}

Status Catalog::AddTable(TableSpec spec) {
  if (Find(spec.id) != nullptr) {
    return Status::InvalidArgument("duplicate table id");
  }
  if (spec.record_size == 0) {
    return Status::InvalidArgument("record_size must be > 0");
  }
  tables_.push_back(std::move(spec));
  return Status::OK();
}

const TableSpec* Catalog::Find(TableId id) const {
  for (const auto& t : tables_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

TableId Catalog::MaxTableId() const {
  TableId max = 0;
  for (const auto& t : tables_) {
    if (t.id + 1 > max) max = t.id + 1;
  }
  return max;
}

}  // namespace bohm
