// Common interface for the caller-thread ("executor") engines: Silo-OCC,
// 2PL, Hekaton, and SI. These engines execute a transaction on the thread
// that submits it, retrying internally on concurrency-control aborts —
// the paper's baselines are all "configured to retry transactions in the
// event of an abort induced by concurrency control" (Section 4).
//
// Bohm itself is pipelined (transactions flow through dedicated sequencer
// / CC / execution threads) and exposes Submit/WaitForIdle instead; the
// harness adapts both shapes to one workload driver.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/status.h"
#include "txn/key.h"
#include "txn/procedure.h"

namespace bohm {

class ExecutorEngine {
 public:
  virtual ~ExecutorEngine() = default;

  /// Inserts an initial record (nullptr payload zero-fills). Load is
  /// single-threaded and must complete before the first Execute.
  virtual Status Load(TableId table, Key key, const void* payload) = 0;

  /// Runs one transaction to completion on the calling thread.
  /// `thread_id` identifies the caller's pre-registered worker slot
  /// (0 <= thread_id < worker_threads()). Returns OK on commit, Aborted
  /// when the transaction's own logic aborted. Concurrency-control aborts
  /// are retried internally and surface only in Stats().
  virtual Status Execute(StoredProcedure& proc, uint32_t thread_id) = 0;

  /// Number of worker slots the engine was configured with.
  virtual uint32_t worker_threads() const = 0;

  /// Aggregated counters across all worker slots.
  virtual StatsSnapshot Stats() const = 0;

  /// Engine name for reports ("2PL", "OCC", "Hekaton", "SI").
  virtual const char* name() const = 0;
};

}  // namespace bohm
