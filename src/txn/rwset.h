// Declared read/write sets.
//
// Bohm's concurrency-control phase requires each transaction's write-set
// before execution, and exploits the read-set when available (Section 3,
// "the write-set of a transaction must be deducible before the transaction
// begins"). The 2PL baseline uses both sets for ordered, deadlock-free
// lock acquisition. The optimistic engines ignore the declarations and
// discover accesses dynamically, as real optimistic systems do.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "txn/key.h"

namespace bohm {

/// Access intent for one element of a read/write set.
enum class AccessMode : uint8_t {
  kRead = 0,
  kWrite = 1,
};

/// A transaction's declared footprint. Element order is preserved: the
/// Bohm engine annotates reads[i] / writes[i] with version references in
/// declaration order, so procedures can refer to their accesses by index.
/// Duplicates within a set are invalid (Validate rejects them); a record
/// that is read and written (an RMW) appears once in each set.
class ReadWriteSet {
 public:
  ReadWriteSet() = default;

  void AddRead(TableId table, Key key) { reads_.push_back({table, key}); }
  void AddWrite(TableId table, Key key) { writes_.push_back({table, key}); }
  void AddRmw(TableId table, Key key) {
    AddRead(table, key);
    AddWrite(table, key);
  }

  const std::vector<RecordId>& reads() const { return reads_; }
  const std::vector<RecordId>& writes() const { return writes_; }

  /// True when `id` appears in the write set.
  bool IsWritten(const RecordId& id) const;

  /// Checks structural validity: no duplicate element within either set.
  /// O(n log n); called once at submission in debug-heavy paths and by
  /// tests, not per execution.
  Status Validate() const;

  /// Returns the union of both sets in lexicographic (table, key) order,
  /// with AccessMode::kWrite winning for records present in both — the
  /// exact sequence in which the 2PL engine acquires locks.
  std::vector<std::pair<RecordId, AccessMode>> LockOrder() const;

 private:
  std::vector<RecordId> reads_;
  std::vector<RecordId> writes_;
};

}  // namespace bohm
