// Record identification. Every record in the database is addressed by a
// (table id, 64-bit key) pair. Keys are opaque integers; workloads that
// need string keys hash them into this space before submission (the
// paper's workloads — YCSB and SmallBank — are integer-keyed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace bohm {

using TableId = uint32_t;
using Key = uint64_t;

/// Fully-qualified record id. Ordered lexicographically by (table, key),
/// which is the global lock-acquisition order used by the 2PL engine
/// ("acquire locks in lexicographic order", Section 4).
struct RecordId {
  TableId table = 0;
  Key key = 0;

  friend auto operator<=>(const RecordId&, const RecordId&) = default;
};

}  // namespace bohm

template <>
struct std::hash<bohm::RecordId> {
  size_t operator()(const bohm::RecordId& r) const noexcept {
    uint64_t z = r.key + 0x9e3779b97f4a7c15ull * (r.table + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};
