// TxnOps: the data-access interface a stored procedure sees while it runs.
//
// Each engine supplies its own implementation with the semantics of its
// protocol (Bohm reads version placeholders resolved by the CC phase;
// Silo reads seqlock-stable copies and buffers writes; 2PL touches storage
// in place under locks; Hekaton/SI read visible versions and install new
// ones). Procedure logic is therefore written once and runs unmodified on
// every engine, mirroring how the paper evaluates one workload across five
// systems.
#pragma once

#include <cstdint>

#include "txn/key.h"

namespace bohm {

class TxnOps {
 public:
  virtual ~TxnOps() = default;

  /// Returns a pointer to the current (visible) value of a record declared
  /// in the read set, or nullptr when the record does not exist / is
  /// deleted. The pointee is stable and immutable for the remainder of
  /// Run(); it holds exactly `record_size` bytes of the record's table.
  virtual const void* Read(TableId table, Key key) = 0;

  /// Returns the buffer for the new value of a record declared in the
  /// write set. The buffer's contents are unspecified on entry; the
  /// procedure must fully populate all record_size bytes before returning
  /// (engines may hand out uninitialized version placeholders).
  virtual void* Write(TableId table, Key key) = 0;

  /// Deletes a record declared in the write set: subsequent transactions
  /// observe the record as absent. Returns false when the engine does not
  /// support deletes (the single-version baselines use fixed pre-loaded
  /// storage, matching the paper's evaluation workloads, which never
  /// delete). Bohm implements deletes as tombstone versions.
  virtual bool Delete(TableId table, Key key) {
    (void)table;
    (void)key;
    return false;
  }

  /// Requests a logical abort: the transaction's writes must not become
  /// visible. Run() should return soon after calling this.
  virtual void Abort() = 0;

  /// True once Abort() has been called (either by the procedure or — for
  /// optimistic engines — internally when the procedure must be re-run).
  virtual bool aborted() const = 0;
};

}  // namespace bohm
