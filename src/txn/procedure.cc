#include "txn/procedure.h"

#include <cstring>

#include "log/codec.h"

namespace bohm {

PutProcedure::PutProcedure(TableId table, Key key, uint64_t value)
    : table_(table), key_(key), value_(value) {
  set_.AddWrite(table, key);
}

void PutProcedure::Run(TxnOps& ops) {
  void* buf = ops.Write(table_, key_);
  std::memcpy(buf, &value_, sizeof(value_));
}

uint32_t PutProcedure::codec_id() const { return kCodecPut; }

void PutProcedure::EncodeArgs(std::string* out) const {
  AppendFixed32(out, static_cast<uint32_t>(table_));
  AppendFixed64(out, static_cast<uint64_t>(key_));
  AppendFixed64(out, value_);
}

GetProcedure::GetProcedure(TableId table, Key key, uint64_t* out, bool* found)
    : table_(table), key_(key), out_(out), found_(found) {
  set_.AddRead(table, key);
}

void GetProcedure::Run(TxnOps& ops) {
  const void* src = ops.Read(table_, key_);
  if (found_ != nullptr) *found_ = (src != nullptr);
  if (src != nullptr) std::memcpy(out_, src, sizeof(uint64_t));
}

IncrementProcedure::IncrementProcedure(TableId table, Key key, uint64_t delta)
    : table_(table), key_(key), delta_(delta) {
  set_.AddRmw(table, key);
}

void IncrementProcedure::Run(TxnOps& ops) {
  const void* src = ops.Read(table_, key_);
  uint64_t v = 0;
  if (src != nullptr) std::memcpy(&v, src, sizeof(v));
  v += delta_;
  void* dst = ops.Write(table_, key_);
  std::memcpy(dst, &v, sizeof(v));
}

uint32_t IncrementProcedure::codec_id() const { return kCodecIncrement; }

void IncrementProcedure::EncodeArgs(std::string* out) const {
  AppendFixed32(out, static_cast<uint32_t>(table_));
  AppendFixed64(out, static_cast<uint64_t>(key_));
  AppendFixed64(out, delta_);
}

}  // namespace bohm
