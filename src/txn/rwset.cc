#include "txn/rwset.h"

#include <algorithm>

namespace bohm {
namespace {

bool HasDuplicates(std::vector<RecordId> v) {
  std::sort(v.begin(), v.end());
  return std::adjacent_find(v.begin(), v.end()) != v.end();
}

}  // namespace

bool ReadWriteSet::IsWritten(const RecordId& id) const {
  return std::find(writes_.begin(), writes_.end(), id) != writes_.end();
}

Status ReadWriteSet::Validate() const {
  if (HasDuplicates(reads_)) {
    return Status::InvalidArgument("duplicate record in read set");
  }
  if (HasDuplicates(writes_)) {
    return Status::InvalidArgument("duplicate record in write set");
  }
  return Status::OK();
}

std::vector<std::pair<RecordId, AccessMode>> ReadWriteSet::LockOrder() const {
  std::vector<std::pair<RecordId, AccessMode>> order;
  order.reserve(reads_.size() + writes_.size());
  for (const RecordId& r : reads_) order.emplace_back(r, AccessMode::kRead);
  for (const RecordId& w : writes_) order.emplace_back(w, AccessMode::kWrite);
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              // Write sorts first among duplicates so the dedup pass below
              // keeps the stronger mode.
              return a.second == AccessMode::kWrite &&
                     b.second == AccessMode::kRead;
            });
  // Collapse RMW duplicates to a single exclusive acquisition.
  auto last = std::unique(order.begin(), order.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          });
  order.erase(last, order.end());
  return order;
}

}  // namespace bohm
