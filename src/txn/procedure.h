// Stored procedures: the unit of work every engine executes.
//
// The paper's model requires the entire transaction up front with a
// deducible write-set (Section 3); this maps exactly onto the stored-
// procedure style used by performance-sensitive OLTP applications, which
// the paper calls out as the intended interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "txn/ops.h"
#include "txn/rwset.h"

namespace bohm {

/// codec_id() value for procedures that cannot be serialized into the
/// durable log (e.g. they capture out-pointers). An engine running with
/// durability enabled rejects them at Submit — a transaction the log
/// cannot reproduce would make replay diverge from the original run.
inline constexpr uint32_t kNotLoggable = 0;

/// Base class for transactions. Subclasses populate `set_` in their
/// constructor (the declared footprint) and implement Run().
///
/// Contract for Run():
///  * It may only access records declared in rwset(). Engines are allowed
///    to (and do) treat undeclared access as a programming error.
///  * It must be deterministic given the values returned by ops.Read():
///    optimistic engines re-run it after validation failures, and the Bohm
///    engine may re-run it if a read dependency forces a back-out.
///  * It must not retain pointers obtained from ops between runs.
///  * After ops.Abort(), none of its writes become visible.
class StoredProcedure {
 public:
  virtual ~StoredProcedure() = default;

  const ReadWriteSet& rwset() const { return set_; }

  /// Executes the transaction's logic against an engine-provided accessor.
  virtual void Run(TxnOps& ops) = 0;

  /// Stable identifier of this procedure's log codec (see log/codec.h), or
  /// kNotLoggable. A procedure with a codec can be rebuilt, bit-identical
  /// in behavior, from its EncodeArgs() bytes — which is all Bohm needs
  /// for recovery: the sequenced input log *is* the redo log.
  virtual uint32_t codec_id() const { return kNotLoggable; }

  /// Serializes constructor arguments for the log (only called when
  /// codec_id() != kNotLoggable).
  virtual void EncodeArgs(std::string* out) const { (void)out; }

 protected:
  ReadWriteSet set_;
};

using ProcedurePtr = std::unique_ptr<StoredProcedure>;

/// A trivially reusable procedure for tests and examples: reads nothing,
/// writes a constant 8-byte value into one record.
class PutProcedure final : public StoredProcedure {
 public:
  PutProcedure(TableId table, Key key, uint64_t value);
  void Run(TxnOps& ops) override;
  uint32_t codec_id() const override;
  void EncodeArgs(std::string* out) const override;

 private:
  TableId table_;
  Key key_;
  uint64_t value_;
};

/// Reads one 8-byte record into `out` (test/example helper).
class GetProcedure final : public StoredProcedure {
 public:
  GetProcedure(TableId table, Key key, uint64_t* out, bool* found = nullptr);
  void Run(TxnOps& ops) override;

 private:
  TableId table_;
  Key key_;
  uint64_t* out_;
  bool* found_;
};

/// Atomically increments an 8-byte counter record (test/example helper;
/// also the core of the paper's microbenchmark transactions).
class IncrementProcedure final : public StoredProcedure {
 public:
  IncrementProcedure(TableId table, Key key, uint64_t delta = 1);
  void Run(TxnOps& ops) override;
  uint32_t codec_id() const override;
  void EncodeArgs(std::string* out) const override;

 private:
  TableId table_;
  Key key_;
  uint64_t delta_;
};

}  // namespace bohm
