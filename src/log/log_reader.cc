#include "log/log_reader.h"

#include <algorithm>
#include <cstring>

#include "log/batch_log.h"
#include "log/codec.h"
#include "log/record.h"

namespace bohm {

namespace {

/// Segment names in ascending first-seqno order (foreign files ignored).
Status SortedSegments(const std::string& dir, LogEnv* env,
                      std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  std::vector<std::string> names;
  Status st = env->ListDir(dir, &names);
  if (st.IsNotFound()) return Status::OK();  // absent dir: empty log
  BOHM_RETURN_NOT_OK(st);
  for (const std::string& name : names) {
    uint64_t first;
    if (ParseSegmentFileName(name, &first)) out->emplace_back(first, name);
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

/// True if a plausible record header (magic + valid header CRC) exists
/// anywhere in [data, data+len). Used to distinguish a crash-damaged tail
/// (nothing intelligible after it) from mid-log corruption (good records
/// survive past the damage — a hole we must not replay across).
bool HasRecordBeyond(const uint8_t* data, size_t len) {
  if (len < kRecordHeaderSize) return false;
  for (size_t off = 1; off + kRecordHeaderSize <= len; ++off) {
    if (DecodeFixed32(data + off) == kRecordMagic &&
        DecodeFixed32(data + off + 20) == Crc32c(data + off, 20)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status ReadBatchLog(const std::string& dir, LogEnv* env,
                    std::vector<ReplayedBatch>* out, LogScanStats* stats) {
  out->clear();
  *stats = LogScanStats{};

  std::vector<std::pair<uint64_t, std::string>> segments;
  BOHM_RETURN_NOT_OK(SortedSegments(dir, env, &segments));

  // The log is anchored, not floating: seqnos start at 1 (0 is reserved)
  // and each segment's filename carries its first record's seqno. Anchoring
  // the scan at 1 and cross-checking every filename against the running
  // expectation means lost or deleted *leading* segments are refused
  // instead of silently replaying only a suffix of history.
  uint64_t expected_seqno = 1;
  for (size_t si = 0; si < segments.size(); ++si) {
    const bool last_segment = (si + 1 == segments.size());
    const std::string path = dir + "/" + segments[si].second;
    if (segments[si].first != expected_seqno) {
      return Status::Internal(
          "log segment " + path + " starts at seqno " +
          std::to_string(segments[si].first) + " but " +
          std::to_string(expected_seqno) +
          " was expected — earlier segments are missing or misnamed");
    }
    std::string contents;
    BOHM_RETURN_NOT_OK(env->ReadFileToString(path, &contents));
    ++stats->segments;

    const auto* data = reinterpret_cast<const uint8_t*>(contents.data());
    size_t off = 0;
    while (off < contents.size()) {
      RecordHeader hdr;
      RecordScan scan =
          CheckRecord(data + off, contents.size() - off, &hdr);
      if (scan != RecordScan::kOk) {
        const size_t tail_len = contents.size() - off;
        // kBadPayload frames an exact damaged region; anything following
        // it is proof of mid-log damage. For the unframed cases, scrub
        // the remaining bytes for a surviving record.
        const bool more_beyond =
            (scan == RecordScan::kBadPayload)
                ? (tail_len > kRecordHeaderSize + hdr.payload_len)
                : HasRecordBeyond(data + off, tail_len);
        if (!last_segment || more_beyond) {
          return Status::Internal(
              "log corruption before the tail in " + path + " at offset " +
              std::to_string(off) + " — refusing to replay past a hole");
        }
        BOHM_RETURN_NOT_OK(env->TruncateFile(path, off));
        // The repair itself must be durable before the engine starts and
        // appends new synced segments: a crash that resurrects the damaged
        // tail once this segment is no longer last would read as mid-log
        // corruption and brick an otherwise recoverable log.
        BOHM_RETURN_NOT_OK(env->SyncFile(path));
        BOHM_RETURN_NOT_OK(env->SyncDir(dir));
        stats->tail_truncated = true;
        stats->truncated_bytes = tail_len;
        stats->tail_detail =
            std::string("dropped ") + std::to_string(tail_len) +
            " damaged tail byte(s) (" +
            (scan == RecordScan::kTornHeader    ? "torn header"
             : scan == RecordScan::kBadHeader   ? "unreadable header"
             : scan == RecordScan::kTornPayload ? "torn payload"
                                                : "payload checksum") +
            ") from " + path;
        break;
      }

      if (hdr.seqno != expected_seqno) {
        return Status::Internal("log seqno gap in " + path + ": expected " +
                                std::to_string(expected_seqno) + ", found " +
                                std::to_string(hdr.seqno));
      }
      expected_seqno = hdr.seqno + 1;

      ReplayedBatch batch;
      batch.seqno = hdr.seqno;
      BOHM_RETURN_NOT_OK(DecodeBatchPayload(data + off + kRecordHeaderSize,
                                            hdr.payload_len, &batch.txns));
      ++stats->records;
      stats->txns += batch.txns.size();
      out->push_back(std::move(batch));
      off += kRecordHeaderSize + hdr.payload_len;
    }
  }
  return Status::OK();
}

Status ScanRecordSpans(const std::string& dir, LogEnv* env,
                       std::vector<RecordSpan>* out) {
  out->clear();
  std::vector<std::pair<uint64_t, std::string>> segments;
  BOHM_RETURN_NOT_OK(SortedSegments(dir, env, &segments));
  for (const auto& [first, name] : segments) {
    const std::string path = dir + "/" + name;
    std::string contents;
    BOHM_RETURN_NOT_OK(env->ReadFileToString(path, &contents));
    const auto* data = reinterpret_cast<const uint8_t*>(contents.data());
    size_t off = 0;
    while (off < contents.size()) {
      RecordHeader hdr;
      RecordScan scan =
          CheckRecord(data + off, contents.size() - off, &hdr);
      if (scan != RecordScan::kOk) {
        return Status::Internal("ScanRecordSpans on a damaged log: " + path);
      }
      out->push_back(RecordSpan{path, off, kRecordHeaderSize + hdr.payload_len,
                                hdr.seqno});
      off += kRecordHeaderSize + hdr.payload_len;
    }
  }
  return Status::OK();
}

}  // namespace bohm
