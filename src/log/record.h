// On-disk record format for the durable sequencer log.
//
// Each sealed batch becomes one record:
//
//   offset  size  field
//   0       4     magic        0xB0B77A19 ("Bohm log record")
//   4       4     payload_len  bytes following the header
//   8       8     seqno        strictly increasing across the whole log
//   16      4     payload_crc  CRC32C of the payload bytes
//   20      4     header_crc   CRC32C of bytes [0, 20)
//   24      ...   payload      see codec.h (txn count + encoded txns)
//
// All integers little-endian (coding.h). Two checksums because they fail
// differently: a bad header_crc means the framing itself is untrustworthy
// (torn mid-header — length/seqno are garbage, stop scanning); a good
// header with a bad payload_crc means the frame is intact but the body is
// torn or flipped. Both are legal only at the tail of the final segment,
// where recovery truncates them away; anywhere else they are corruption
// and recovery refuses to proceed (replaying past a hole would silently
// reorder the deterministic input log).
#pragma once

#include <cstdint>
#include <string>

#include "log/coding.h"
#include "log/crc32c.h"

namespace bohm {

constexpr uint32_t kRecordMagic = 0xB0B77A19u;
constexpr size_t kRecordHeaderSize = 24;

/// Appends a complete framed record (header + payload) to `out`.
inline void EncodeRecord(std::string* out, uint64_t seqno,
                         const std::string& payload) {
  size_t header_at = out->size();
  AppendFixed32(out, kRecordMagic);
  AppendFixed32(out, static_cast<uint32_t>(payload.size()));
  AppendFixed64(out, seqno);
  AppendFixed32(out, Crc32c(payload.data(), payload.size()));
  AppendFixed32(out, Crc32c(out->data() + header_at, 20));
  out->append(payload);
}

struct RecordHeader {
  uint32_t payload_len = 0;
  uint64_t seqno = 0;
  uint32_t payload_crc = 0;
};

enum class RecordScan {
  kOk,            // header valid, payload present and checksummed
  kTornHeader,    // fewer than kRecordHeaderSize bytes remain
  kBadHeader,     // magic or header_crc mismatch — framing untrustworthy
  kTornPayload,   // header valid but payload extends past end of data
  kBadPayload,    // payload present but fails its CRC
};

/// Examines the record starting at `data` (with `len` bytes available).
/// On kOk fills `*hdr`; on kTornPayload/kBadPayload fills `*hdr` too so
/// the caller can report what was lost.
inline RecordScan CheckRecord(const uint8_t* data, size_t len,
                              RecordHeader* hdr) {
  if (len < kRecordHeaderSize) return RecordScan::kTornHeader;
  if (DecodeFixed32(data) != kRecordMagic ||
      DecodeFixed32(data + 20) != Crc32c(data, 20)) {
    return RecordScan::kBadHeader;
  }
  hdr->payload_len = DecodeFixed32(data + 4);
  hdr->seqno = DecodeFixed64(data + 8);
  hdr->payload_crc = DecodeFixed32(data + 16);
  if (len - kRecordHeaderSize < hdr->payload_len) {
    return RecordScan::kTornPayload;
  }
  if (Crc32c(data + kRecordHeaderSize, hdr->payload_len) !=
      hdr->payload_crc) {
    return RecordScan::kBadPayload;
  }
  return RecordScan::kOk;
}

}  // namespace bohm
