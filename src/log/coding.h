// Little-endian fixed-width encoding helpers for the log record format
// and the procedure codecs. Byte-order is pinned (not host order) so a
// log written on one machine replays on another.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace bohm {

inline void AppendFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

inline void AppendFixed64(std::string* out, uint64_t v) {
  AppendFixed32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendFixed32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t DecodeFixed32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t DecodeFixed64(const uint8_t* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

/// Cursor for decoding a byte span; every Get checks bounds and reports
/// exhaustion instead of reading past the end (log payloads are untrusted
/// after a crash — a torn write can leave any prefix).
class Slice {
 public:
  Slice(const uint8_t* data, size_t len) : p_(data), end_(data + len) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool GetFixed32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }

  bool GetBytes(const uint8_t** data, size_t n) {
    if (remaining() < n) return false;
    *data = p_;
    p_ += n;
    return true;
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace bohm
