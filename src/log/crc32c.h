// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every record in the durable sequencer log. Chosen over
// plain CRC32 for its better error-detection properties on storage-sized
// payloads and because it is the de-facto log-framing checksum (RocksDB,
// LevelDB, ext4). Software table implementation — the log writer runs on
// its own thread off the pipeline hot path, so hardware acceleration is
// not worth a platform dependency here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bohm {

/// Extends `crc` (initially 0 for a fresh checksum) with `n` bytes.
uint32_t Crc32c(uint32_t crc, const void* data, size_t n);

/// One-shot convenience.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32c(0, data, n);
}

}  // namespace bohm
