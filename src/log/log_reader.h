// Log reading and crash repair: turns whatever a crash left in the log
// directory back into the sequenced batch stream.
//
// Tail policy — the heart of recovery correctness:
//
//  * Damage is only legal at the *tail of the highest segment*. The
//    writer appends and syncs in order, so a crash can lose only a
//    suffix; a good record physically after damage proves the damage is
//    not a crash artifact, and recovery refuses to proceed (replaying
//    past a hole would silently reorder the deterministic input log).
//  * A torn or checksum-failing tail record is truncated away — never
//    replayed, never "repaired". Those transactions were by definition
//    not durable, and with durable-ack on, never acknowledged either.
//  * Seqnos must be consecutive across the whole scan (the writer
//    allocates them densely); a gap is corruption, not a crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "log/log_env.h"
#include "txn/procedure.h"

namespace bohm {

/// One recovered batch: its log sequence number and the rebuilt
/// transactions, in original sequenced order.
struct ReplayedBatch {
  uint64_t seqno = 0;
  std::vector<ProcedurePtr> txns;
};

struct LogScanStats {
  uint64_t segments = 0;
  uint64_t records = 0;
  uint64_t txns = 0;
  bool tail_truncated = false;      ///< a damaged tail was repaired
  uint64_t truncated_bytes = 0;     ///< bytes dropped by the repair
  std::string tail_detail;          ///< human-readable repair description
};

/// Scans `dir`, repairs the tail if damaged (truncating the segment file
/// in place), and returns the durable batches in seqno order. An empty or
/// absent directory recovers to zero batches. Returns Internal for
/// mid-log damage, InvalidArgument for undecodable (but checksum-valid)
/// payloads.
Status ReadBatchLog(const std::string& dir, LogEnv* env,
                    std::vector<ReplayedBatch>* out, LogScanStats* stats);

/// Byte span of one record inside one segment file — the crash-point
/// enumeration the fault tests iterate over ("truncate mid-record 3",
/// "flip a payload byte of record 5", ...).
struct RecordSpan {
  std::string path;     // full path to the segment file
  uint64_t offset = 0;  // record start within the file
  uint64_t length = 0;  // header + payload bytes
  uint64_t seqno = 0;
};

/// Enumerates record spans of an intact log (no repair; errors on any
/// damage — call it before injecting faults, not after).
Status ScanRecordSpans(const std::string& dir, LogEnv* env,
                       std::vector<RecordSpan>* out);

}  // namespace bohm
