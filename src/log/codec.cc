#include "log/codec.h"

#include "workload/ycsb.h"

namespace bohm {

void EncodeTxn(std::string* out, const StoredProcedure& proc) {
  const uint32_t id = proc.codec_id();
  assert(id != kNotLoggable && "caller must filter non-loggable procedures");
  AppendFixed32(out, id);
  size_t len_at = out->size();
  AppendFixed32(out, 0);  // arg_len placeholder
  proc.EncodeArgs(out);
  const uint32_t arg_len =
      static_cast<uint32_t>(out->size() - len_at - 4);
  // Patch the placeholder in place (little-endian, same as AppendFixed32).
  (*out)[len_at] = static_cast<char>(arg_len & 0xFF);
  (*out)[len_at + 1] = static_cast<char>((arg_len >> 8) & 0xFF);
  (*out)[len_at + 2] = static_cast<char>((arg_len >> 16) & 0xFF);
  (*out)[len_at + 3] = static_cast<char>((arg_len >> 24) & 0xFF);
}

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("log codec: malformed ") + what);
}

Status DecodePut(Slice* in, ProcedurePtr* out) {
  uint32_t table;
  uint64_t key, value;
  if (!in->GetFixed32(&table) || !in->GetFixed64(&key) ||
      !in->GetFixed64(&value)) {
    return Malformed("Put args");
  }
  *out = std::make_unique<PutProcedure>(static_cast<TableId>(table),
                                        static_cast<Key>(key), value);
  return Status::OK();
}

Status DecodeIncrement(Slice* in, ProcedurePtr* out) {
  uint32_t table;
  uint64_t key, delta;
  if (!in->GetFixed32(&table) || !in->GetFixed64(&key) ||
      !in->GetFixed64(&delta)) {
    return Malformed("Increment args");
  }
  *out = std::make_unique<IncrementProcedure>(static_cast<TableId>(table),
                                              static_cast<Key>(key), delta);
  return Status::OK();
}

Status DecodeYcsbRmw(Slice* in, ProcedurePtr* out) {
  uint32_t record_size, n_keys;
  if (!in->GetFixed32(&record_size) || !in->GetFixed32(&n_keys)) {
    return Malformed("YcsbRmw args");
  }
  if (in->remaining() < static_cast<size_t>(n_keys) * 8) {
    return Malformed("YcsbRmw key list");
  }
  std::vector<Key> keys;
  keys.reserve(n_keys);
  for (uint32_t i = 0; i < n_keys; ++i) {
    uint64_t k;
    (void)in->GetFixed64(&k);
    keys.push_back(static_cast<Key>(k));
  }
  *out = std::make_unique<YcsbRmwProcedure>(std::move(keys), record_size);
  return Status::OK();
}

}  // namespace

Status DecodeTxn(Slice* in, ProcedurePtr* out) {
  uint32_t id, arg_len;
  if (!in->GetFixed32(&id) || !in->GetFixed32(&arg_len)) {
    return Malformed("txn header");
  }
  const uint8_t* args;
  if (!in->GetBytes(&args, arg_len)) return Malformed("txn args length");
  Slice arg_slice(args, arg_len);
  switch (id) {
    case kCodecPut:
      return DecodePut(&arg_slice, out);
    case kCodecIncrement:
      return DecodeIncrement(&arg_slice, out);
    case kCodecYcsbRmw:
      return DecodeYcsbRmw(&arg_slice, out);
    default:
      return Status::InvalidArgument("log codec: unknown codec id " +
                                     std::to_string(id));
  }
}

void EncodeBatchPayload(std::string* out,
                        const std::vector<const StoredProcedure*>& txns) {
  AppendFixed32(out, static_cast<uint32_t>(txns.size()));
  for (const StoredProcedure* p : txns) EncodeTxn(out, *p);
}

Status DecodeBatchPayload(const uint8_t* data, size_t len,
                          std::vector<ProcedurePtr>* out) {
  out->clear();
  Slice in(data, len);
  uint32_t count;
  if (!in.GetFixed32(&count)) return Malformed("txn count");
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ProcedurePtr p;
    BOHM_RETURN_NOT_OK(DecodeTxn(&in, &p));
    out->push_back(std::move(p));
  }
  if (in.remaining() != 0) return Malformed("trailing payload bytes");
  return Status::OK();
}

}  // namespace bohm
