// LogEnv: the file-system indirection behind the durable sequencer log.
//
// All raw I/O in the tree lives behind this interface and inside src/log/
// (enforced by scripts/lint_concurrency.py rule `io-containment`): the
// pipeline stages never issue a write or fsync themselves, they hand
// sealed batches to the LogWriter thread, which talks to a LogEnv. The
// indirection exists for exactly one reason — fault injection
// (src/log/fault_env.h): the crash-recovery proof suite swaps in an env
// that drops, truncates, corrupts or fails writes at controlled points,
// which is how "kill -9 at byte N" becomes a deterministic unit test.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace bohm {

/// An open append-only file. Not thread-safe; owned and driven by a
/// single writer thread.
class LogWritableFile {
 public:
  virtual ~LogWritableFile() = default;

  /// Appends exactly `n` bytes (looping over short writes internally).
  virtual Status Append(const void* data, size_t n) = 0;

  /// Durably flushes everything appended so far (fsync).
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

class LogEnv {
 public:
  virtual ~LogEnv() = default;

  virtual Status CreateDirIfMissing(const std::string& dir) = 0;

  /// Regular-file names in `dir` (no ordering guarantee; callers sort).
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  /// Opens `path` for appending, creating it (the segment-rotation path
  /// always creates; re-opening an existing file appends after its tail).
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<LogWritableFile>* file) = 0;

  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  /// Shrinks `path` to `size` bytes — the tail-repair primitive used by
  /// recovery to drop a torn or corrupt final record.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Durably persists the directory itself (fsync of an O_DIRECTORY fd).
  /// Data fsyncs cover a file's bytes, not its *name*: on power loss the
  /// entry for a freshly created segment can vanish with all its records.
  /// The log syncs the directory after every segment creation, before the
  /// durable watermark may cover any record in it.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Durably persists an existing file by path (open + fsync + close).
  /// Recovery uses it to make tail repair (TruncateFile) itself durable —
  /// an un-persisted truncate could resurrect damaged tail bytes after
  /// the segment is no longer last, turning repairable damage into a
  /// refused mid-log hole.
  virtual Status SyncFile(const std::string& path) = 0;

  /// The real POSIX-backed environment (process-wide singleton).
  static LogEnv* Default();
};

}  // namespace bohm
