// BatchLog: the segmented append-only file behind the durable sequencer
// log. Storage only — framing from record.h, no threading, no policy;
// the group-commit machinery lives in LogWriter, which is this class's
// single caller on the write path.
//
// Segment files are named log-<first-seqno>.seg (seqno zero-padded so
// lexicographic order is numeric order). A segment is created lazily on
// the first append after open/rotation, so its name always carries the
// seqno of its first record; rotation happens at the first append past
// `segment_bytes`. Recovery never appends to an existing segment — a
// recovered engine starts a fresh one — so a segment, once rotated away
// or left behind by a crash, is immutable (modulo tail truncation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "log/log_env.h"

namespace bohm {

/// Builds the canonical segment file name for its first seqno.
std::string SegmentFileName(uint64_t first_seqno);

/// Parses a segment file name; returns false for foreign files (recovery
/// ignores them rather than erroring on e.g. editor droppings).
bool ParseSegmentFileName(const std::string& name, uint64_t* first_seqno);

class BatchLog {
 public:
  BatchLog(std::string dir, LogEnv* env, uint64_t segment_bytes)
      : dir_(std::move(dir)), env_(env), segment_bytes_(segment_bytes) {}
  BOHM_DISALLOW_COPY_AND_ASSIGN(BatchLog);
  ~BatchLog() { (void)Close(); }

  /// Creates the directory if needed. Does not open a segment — that
  /// happens on the first Append, when the first seqno is known.
  Status Open();

  /// Appends one framed record. Seqnos must be strictly increasing.
  Status Append(uint64_t seqno, const std::string& payload);

  /// Durably flushes the current segment (no-op before the first append).
  Status Sync();

  Status Close();

  // Monotone counters for the stats plumbing (single-threaded with the
  // writer; read via LogWriter's published copies).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records() const { return records_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  std::string dir_;
  LogEnv* env_;
  uint64_t segment_bytes_;
  std::unique_ptr<LogWritableFile> file_;
  uint64_t segment_size_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t records_ = 0;
  uint64_t fsyncs_ = 0;
  std::string scratch_;  // reused encode buffer
};

}  // namespace bohm
