#include "log/log_writer.h"

#include "common/spin.h"
#include "common/stats.h"

namespace bohm {

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kInterval:
      return "interval";
  }
  return "unknown";
}

LogWriter::LogWriter(BatchLog* log, const LogWriterOptions& opts)
    : log_(log), opts_(opts), queue_(opts.queue_capacity) {}

LogWriter::~LogWriter() {
  if (thread_.joinable()) Stop();
}

void LogWriter::Start() {
  thread_ = std::thread([this] { WriterLoop(); });
}

void LogWriter::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

uint64_t LogWriter::Append(uint64_t seqno, std::string payload) {
  // relaxed: advisory — the authoritative failed check is the engine's;
  // here it only short-circuits the wait so a dead writer can't wedge
  // the sequencer.
  if (failed_.load(std::memory_order_relaxed)) return 0;
  if (!queue_.Full()) {
    (void)queue_.TryPush(Pending{seqno, std::move(payload)});
    return 0;
  }
  const uint64_t t0 = MonotonicNanos();
  SpinWait wait;
  while (queue_.Full()) {
    // relaxed: advisory, as above — escape hatch so the spin can't wedge.
    if (failed_.load(std::memory_order_relaxed)) {
      return MonotonicNanos() - t0;  // discard: the log is dead anyway
    }
    wait.Pause();
  }
  (void)queue_.TryPush(Pending{seqno, std::move(payload)});
  return MonotonicNanos() - t0;
}

Status LogWriter::error() const {
  // failed_ was release-stored after error_ was written, so an acquire
  // observer of failed() == true reads a complete Status here.
  return failed() ? error_ : Status::OK();
}

void LogWriter::Fail(Status st) {
  error_ = std::move(st);
  failed_.store(true, std::memory_order_release);
}

bool LogWriter::SyncThrough(uint64_t through_seqno) {
  Status st = log_->Sync();
  if (!st.ok()) {
    Fail(std::move(st));
    return false;
  }
  durable_seqno_.store(through_seqno, std::memory_order_release);
  PublishCounters();
  return true;
}

void LogWriter::PublishCounters() {
  // relaxed: plain monitoring numbers; nothing is ordered against them.
  pub_bytes_.store(log_->bytes_written(), std::memory_order_relaxed);
  pub_records_.store(log_->records(), std::memory_order_relaxed);
  pub_fsyncs_.store(log_->fsyncs(), std::memory_order_relaxed);
}

void LogWriter::WriterLoop() {
  SpinWait wait;
  uint64_t unsynced = 0;  // records appended since the last durability point
  uint64_t last_appended = 0;
  uint64_t last_sync_ns = MonotonicNanos();

  auto sync_now = [&] {
    if (SyncThrough(last_appended)) {
      unsynced = 0;
      last_sync_ns = MonotonicNanos();
    }
  };

  for (;;) {
    Pending p;
    if (queue_.TryPop(&p)) {
      wait.Reset();
      // relaxed: failed_ is only ever set by this thread (Fail below).
      if (failed_.load(std::memory_order_relaxed)) {
        continue;  // drain-and-discard: never wedge the sequencer
      }
      Status st = log_->Append(p.seqno, p.payload);
      if (!st.ok()) {
        Fail(std::move(st));
        continue;
      }
      last_appended = p.seqno;
      ++unsynced;
      PublishCounters();
      switch (opts_.policy) {
        case FsyncPolicy::kNone:
          // Durability point is the kernel handoff itself.
          durable_seqno_.store(p.seqno, std::memory_order_release);
          unsynced = 0;
          break;
        case FsyncPolicy::kBatch:
          sync_now();
          break;
        case FsyncPolicy::kGroup:
          if (unsynced >= opts_.group_size) sync_now();
          break;
        case FsyncPolicy::kInterval:
          if (MonotonicNanos() - last_sync_ns >= opts_.interval_us * 1000) {
            sync_now();
          }
          break;
      }
      continue;
    }

    // Ring is dry. Group commit syncs whatever accumulated (an idle
    // pipeline must not leave acknowledged-later batches hanging);
    // interval syncs when its clock expires. (relaxed: failed_ is
    // written only by this thread.)
    if (unsynced > 0 && !failed_.load(std::memory_order_relaxed)) {
      if (opts_.policy == FsyncPolicy::kGroup) {
        sync_now();
        continue;
      }
      if (opts_.policy == FsyncPolicy::kInterval &&
          MonotonicNanos() - last_sync_ns >= opts_.interval_us * 1000) {
        sync_now();
        continue;
      }
    }
    if (stop_.load(std::memory_order_acquire) && queue_.Empty()) break;
    wait.Pause();
  }

  // relaxed: failed_ is written only by this thread.
  if (!failed_.load(std::memory_order_relaxed)) {
    // Clean shutdown leaves a fully durable log under every policy
    // (including kNone — one trailing fsync costs nothing at exit).
    Status st = log_->Sync();
    if (st.ok()) {
      if (last_appended != 0) {
        durable_seqno_.store(last_appended, std::memory_order_release);
      }
    } else {
      Fail(std::move(st));
    }
    PublishCounters();
  }
  Status st = log_->Close();
  // relaxed: failed_ is written only by this thread.
  if (!st.ok() && !failed_.load(std::memory_order_relaxed)) {
    Fail(std::move(st));
  }
}

}  // namespace bohm
