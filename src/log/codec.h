// Procedure codecs: how transactions cross the durability boundary.
//
// Bohm's recovery story (paper Section 2.3) is that the totally-ordered
// input log is itself the redo log — replaying the same transactions in
// the same order deterministically reproduces the database. That only
// works if a transaction can be rebuilt from bytes, so every loggable
// StoredProcedure carries a codec id plus an EncodeArgs() serialization
// of its constructor arguments, and this module owns the inverse: a
// registry keyed by codec id that re-instantiates the procedure.
//
// The registry is a closed switch, not runtime registration: static
// registrars are linker-fragile, and the set of loggable procedures is a
// deliberate, reviewed list (a codec id is an on-disk format commitment —
// ids are never reused or renumbered).
//
// Payload layout for one batch (the record payload in record.h):
//
//   u32 txn_count
//   repeated txn_count times:
//     u32 codec_id
//     u32 arg_len
//     arg_len bytes (codec-specific, see each Encode/Decode pair)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "log/coding.h"
#include "txn/procedure.h"

namespace bohm {

// On-disk codec ids. Append-only; never renumber.
inline constexpr uint32_t kCodecPut = 1;
inline constexpr uint32_t kCodecIncrement = 2;
inline constexpr uint32_t kCodecYcsbRmw = 3;

/// Appends one encoded transaction (codec id + args) to `out`.
/// Precondition: proc.codec_id() != kNotLoggable.
void EncodeTxn(std::string* out, const StoredProcedure& proc);

/// Rebuilds a procedure from its encoded form, consuming from `in`.
/// Fails with InvalidArgument on an unknown codec id or malformed args —
/// which, given CRC-verified payloads, indicates a format bug rather than
/// disk corruption.
Status DecodeTxn(Slice* in, ProcedurePtr* out);

/// Encodes a whole batch payload (txn count + each loggable txn).
/// Transactions with codec_id() == kNotLoggable must not appear (the
/// engine rejects them at Submit when durability is on).
void EncodeBatchPayload(std::string* out,
                        const std::vector<const StoredProcedure*>& txns);

/// Decodes a batch payload back into procedures.
Status DecodeBatchPayload(const uint8_t* data, size_t len,
                          std::vector<ProcedurePtr>* out);

}  // namespace bohm
