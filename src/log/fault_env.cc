#include "log/fault_env.h"

namespace bohm {

namespace {
constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();
}  // namespace

/// Buffers appended bytes until they are "persisted": a successful Sync()
/// flushes the buffer to the base file, a programmed crash discards it.
/// This is what makes the sync-crash model honest — bytes the writer
/// appended but never synced genuinely vanish from the recovered file.
/// A byte-budget crash flushes the surviving prefix first (a torn write
/// can reach disk without a sync), then drops everything after.
class FaultLogFile final : public LogWritableFile {
 public:
  FaultLogFile(FaultLogEnv* env, std::unique_ptr<LogWritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    // relaxed: all fault state is owned by the single writer thread (see
    // header); only crashed_ is release-published (relaxed: throughout).
    if (env_->crashed_.load(std::memory_order_relaxed)) {
      return Status::OK();  // lying success: the process never learns
    }
    const char* p = static_cast<const char*>(data);

    uint64_t fail = env_->fail_budget_.load(std::memory_order_relaxed);
    if (fail != kNoLimit) {
      if (fail < n) {
        // Short write, then an honest error the writer gets to handle
        // (relaxed: same single-thread ownership as above).
        pending_.append(p, static_cast<size_t>(fail));
        env_->fail_budget_.store(0, std::memory_order_relaxed);
        env_->bytes_written_.fetch_add(fail, std::memory_order_relaxed);
        return Status::ResourceExhausted("injected: disk full");
      }
      env_->fail_budget_.store(fail - n, std::memory_order_relaxed);
    }

    // relaxed: single-thread ownership again; crashed_ alone is released.
    uint64_t budget = env_->write_budget_.load(std::memory_order_relaxed);
    if (budget != kNoLimit && budget < n) {
      // Torn tail: the prefix that fit the budget persists immediately
      // (no sync needed — it made it out of the page cache), the rest of
      // this write and every later one is silently gone (relaxed: ditto).
      pending_.append(p, static_cast<size_t>(budget));
      env_->bytes_written_.fetch_add(budget, std::memory_order_relaxed);
      Status st = FlushPending();
      env_->crashed_.store(true, std::memory_order_release);
      return st.ok() ? Status::OK() : st;
    }
    if (budget != kNoLimit) {
      // relaxed: same single-thread ownership.
      env_->write_budget_.store(budget - n, std::memory_order_relaxed);
    }

    pending_.append(p, n);
    // relaxed: observation-only counter.
    env_->bytes_written_.fetch_add(n, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Sync() override {
    // relaxed: writer-thread-owned fault state (see header); the crash
    // store below is release so crashed() observers see it promptly.
    if (env_->crashed_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    env_->syncs_.fetch_add(1, std::memory_order_relaxed);
    uint64_t budget = env_->sync_budget_.load(std::memory_order_relaxed);
    if (budget != kNoLimit) {
      if (budget <= 1) {
        // Power loss at this group commit: un-synced bytes vanish
        // (relaxed: same single-thread ownership).
        pending_.clear();
        env_->crashed_.store(true, std::memory_order_release);
        return Status::OK();
      }
      env_->sync_budget_.store(budget - 1, std::memory_order_relaxed);
    }
    BOHM_RETURN_NOT_OK(FlushPending());
    return base_->Sync();
  }

  Status Close() override {
    // relaxed: writer-thread-owned flag, as above.
    if (env_->crashed_.load(std::memory_order_relaxed)) {
      return Status::OK();
    }
    // A clean close persists everything outstanding, like a clean
    // shutdown's final flush.
    BOHM_RETURN_NOT_OK(FlushPending());
    return base_->Close();
  }

 private:
  Status FlushPending() {
    if (pending_.empty()) return Status::OK();
    Status st = base_->Append(pending_.data(), pending_.size());
    pending_.clear();
    return st;
  }

  FaultLogEnv* env_;
  std::unique_ptr<LogWritableFile> base_;
  std::string pending_;  // appended but not yet "persisted"
};

Status FaultLogEnv::NewWritableFile(const std::string& path,
                                    std::unique_ptr<LogWritableFile>* file) {
  std::unique_ptr<LogWritableFile> base_file;
  BOHM_RETURN_NOT_OK(base_->NewWritableFile(path, &base_file));
  *file = std::make_unique<FaultLogFile>(this, std::move(base_file));
  return Status::OK();
}

Status FaultLogEnv::FlipByte(const std::string& path, uint64_t offset,
                             uint8_t mask) {
  std::string contents;
  BOHM_RETURN_NOT_OK(base_->ReadFileToString(path, &contents));
  if (offset >= contents.size()) {
    return Status::InvalidArgument("FlipByte offset past end of file");
  }
  contents[offset] = static_cast<char>(contents[offset] ^ mask);
  BOHM_RETURN_NOT_OK(base_->TruncateFile(path, 0));
  std::unique_ptr<LogWritableFile> f;
  BOHM_RETURN_NOT_OK(base_->NewWritableFile(path, &f));
  BOHM_RETURN_NOT_OK(f->Append(contents.data(), contents.size()));
  BOHM_RETURN_NOT_OK(f->Sync());
  return f->Close();
}

}  // namespace bohm
