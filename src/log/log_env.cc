#include "log/log_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bohm {

namespace {

Status Errno(const char* op, const std::string& path) {
  if (errno == ENOSPC) {
    return Status::ResourceExhausted(std::string(op) + " " + path +
                                     ": ENOSPC");
  }
  if (errno == ENOENT) {
    return Status::NotFound(std::string(op) + " " + path + ": ENOENT");
  }
  return Status::Internal(std::string(op) + " " + path + ": " +
                          std::strerror(errno));
}

class PosixLogFile final : public LogWritableFile {
 public:
  PosixLogFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixLogFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixLogEnv final : public LogEnv {
 public:
  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return Errno("mkdir", dir);
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<LogWritableFile>* file) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Errno("open", path);
    *file = std::make_unique<PosixLogFile>(fd, path);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    char buf[1u << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Errno("read", path);
      }
      if (r == 0) break;
      out->append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open", dir);
    return FsyncAndClose(fd, dir);
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    return FsyncAndClose(fd, path);
  }

 private:
  static Status FsyncAndClose(int fd, const std::string& path) {
    if (::fsync(fd) != 0) {
      Status st = Errno("fsync", path);
      ::close(fd);
      return st;
    }
    if (::close(fd) != 0) return Errno("close", path);
    return Status::OK();
  }
};

}  // namespace

LogEnv* LogEnv::Default() {
  static PosixLogEnv env;
  return &env;
}

}  // namespace bohm
