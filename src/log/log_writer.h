// LogWriter: the dedicated I/O thread between the sequencer and the
// BatchLog.
//
// The Bohm hot path must never block on disk (the pipeline's whole point
// is keeping every stage compute-bound), so the sequencer hands each
// sealed batch's encoded payload into an SPSC ring and moves on; this
// thread drains the ring, appends records, and fsyncs according to the
// configured group-commit policy. The one cross-thread output is the
// durable watermark: `durable_seqno()` is release-published after the
// fsync that covers a record, and the execution stage acquire-reads it to
// gate batch admission when durable-ack is on (docs/CONCURRENCY.md rule
// R6). That ordering is what turns "executed" into "durably logged, then
// executed" — the invariant the crash tests check.
//
// On an I/O error the writer trips `failed()` and switches to drain-and-
// discard: the ring keeps emptying (so the sequencer never wedges), the
// watermark freezes, and the engine degrades to rejecting new submits.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/macros.h"
#include "common/queue.h"
#include "common/status.h"
#include "log/batch_log.h"

namespace bohm {

/// When the log writer calls fsync.
enum class FsyncPolicy {
  kNone,      // never (OS decides); "durable" means handed to the kernel
  kBatch,     // after every batch record — strongest, slowest
  kGroup,     // after `group_size` records, or when the ring runs dry
  kInterval,  // at most every `interval_us` microseconds
};

const char* FsyncPolicyName(FsyncPolicy policy);

struct LogWriterOptions {
  FsyncPolicy policy = FsyncPolicy::kGroup;
  uint32_t group_size = 8;
  uint64_t interval_us = 1000;
  size_t queue_capacity = 256;  // power of two
};

class LogWriter {
 public:
  LogWriter(BatchLog* log, const LogWriterOptions& opts);
  BOHM_DISALLOW_COPY_AND_ASSIGN(LogWriter);
  ~LogWriter();

  void Start();

  /// Drains everything already enqueued, issues a final sync (all
  /// policies — a clean shutdown leaves a fully durable log), and joins.
  void Stop();

  /// Producer side; sequencer thread only. Blocks (spin-then-yield) while
  /// the ring is full — that wait is the log back-pressure and is
  /// returned in nanoseconds for stall attribution. After a writer
  /// failure the payload is discarded immediately (the caller checks
  /// failed() at its own pace).
  uint64_t Append(uint64_t seqno, std::string payload);

  /// Highest seqno covered by the policy's durability point
  /// (release-published; pair loads with acquire).
  uint64_t durable_seqno() const {
    return durable_seqno_.load(std::memory_order_acquire);
  }

  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// First error that tripped failed() (call only after failed()).
  Status error() const;

  // Published copies of the BatchLog counters (safe from any thread).
  // relaxed: monitoring values; nothing is ordered against them.
  uint64_t bytes_written() const {
    return pub_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t records() const {
    // relaxed: monitoring value, as above.
    return pub_records_.load(std::memory_order_relaxed);
  }
  uint64_t fsyncs() const {
    // relaxed: monitoring value, as above.
    return pub_fsyncs_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    uint64_t seqno = 0;
    std::string payload;
  };

  void WriterLoop();
  void Fail(Status st);
  /// Syncs and advances the durable watermark to `through_seqno`.
  bool SyncThrough(uint64_t through_seqno);
  void PublishCounters();

  BatchLog* log_;
  LogWriterOptions opts_;
  SpscQueue<Pending> queue_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> durable_seqno_{0};  // 0 = nothing durable yet
  std::atomic<uint64_t> pub_bytes_{0};
  std::atomic<uint64_t> pub_records_{0};
  std::atomic<uint64_t> pub_fsyncs_{0};
  Status error_;  // written by the writer thread before failed_ release
};

}  // namespace bohm
