#include "log/batch_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "log/record.h"

namespace bohm {

std::string SegmentFileName(uint64_t first_seqno) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "log-%020" PRIu64 ".seg", first_seqno);
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* first_seqno) {
  if (name.size() != 28 || name.compare(0, 4, "log-") != 0 ||
      name.compare(24, 4, ".seg") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *first_seqno = v;
  return true;
}

namespace {

/// Parent directory of `path` (no trailing slash expected), for syncing
/// the entry of a freshly created log directory.
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status BatchLog::Open() {
  BOHM_RETURN_NOT_OK(env_->CreateDirIfMissing(dir_));
  // Persist the log directory's own entry: segments fsynced into a
  // directory that itself vanishes on power loss are just as lost.
  BOHM_RETURN_NOT_OK(env_->SyncDir(ParentDir(dir_)));
  ++fsyncs_;
  return Status::OK();
}

Status BatchLog::Append(uint64_t seqno, const std::string& payload) {
  if (file_ != nullptr && segment_size_ >= segment_bytes_) {
    BOHM_RETURN_NOT_OK(file_->Sync());  // rotation is a durability point
    ++fsyncs_;
    BOHM_RETURN_NOT_OK(file_->Close());
    file_.reset();
  }
  if (file_ == nullptr) {
    BOHM_RETURN_NOT_OK(
        env_->NewWritableFile(dir_ + "/" + SegmentFileName(seqno), &file_));
    // The new segment's directory entry must be durable before any data
    // fsync can advance the watermark over its records — otherwise power
    // loss can drop the whole file while its contents were "durable".
    BOHM_RETURN_NOT_OK(env_->SyncDir(dir_));
    ++fsyncs_;
    segment_size_ = 0;
  }
  scratch_.clear();
  EncodeRecord(&scratch_, seqno, payload);
  BOHM_RETURN_NOT_OK(file_->Append(scratch_.data(), scratch_.size()));
  segment_size_ += scratch_.size();
  bytes_written_ += scratch_.size();
  ++records_;
  return Status::OK();
}

Status BatchLog::Sync() {
  if (file_ == nullptr) return Status::OK();
  BOHM_RETURN_NOT_OK(file_->Sync());
  ++fsyncs_;
  return Status::OK();
}

Status BatchLog::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

}  // namespace bohm
