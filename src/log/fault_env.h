// FaultLogEnv: deterministic fault injection for the durable log.
//
// Wraps a real LogEnv and corrupts the write path at controlled points so
// the recovery tests can simulate every crash mode the log must survive:
//
//   - crash mid-record: a write is cut short at a byte budget, the rest of
//     that write and everything after is silently dropped (the process
//     "thinks" it succeeded — models data that died in the page cache);
//   - crash at fsync N: the Nth Sync() call drops all not-yet-synced bytes
//     and every later write, modelling power loss between group commits;
//   - honest failures: write or sync starts returning an error (ENOSPC or
//     EIO) so the writer's degraded-mode path can be exercised in-process;
//   - bit flip at offset: one byte of one file is corrupted after the
//     fact, which the CRC must catch on recovery.
//
// "Silently dropped" is the key design choice: a real crash does not
// return an error to the writer — it simply never persists the tail. The
// in-process run completes normally; what the test then recovers from is
// the file as the fault env actually left it.
//
// Single-threaded discipline: only the LogWriter thread touches the write
// path, so the fault state needs no locking beyond the atomics used for
// cross-thread test observation.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "log/log_env.h"

namespace bohm {

class FaultLogEnv final : public LogEnv {
 public:
  explicit FaultLogEnv(LogEnv* base = LogEnv::Default()) : base_(base) {}

  // --- fault programming (call before or during a run) ---

  /// After `n` more payload bytes have been appended (across files), the
  /// current write is truncated at the budget and all later writes are
  /// silently dropped: the torn-tail / mid-record crash.
  void CrashAfterBytes(uint64_t n) {
    // relaxed: programmed before the run; consumed by the writer thread.
    write_budget_.store(n, std::memory_order_relaxed);
  }

  /// The `n`-th Sync() from now (1-based) crashes: bytes appended since
  /// the previous sync are dropped, as is everything after.
  void CrashAtSync(uint64_t n) {
    // relaxed: programmed before the run; consumed by the writer thread.
    sync_budget_.store(n, std::memory_order_relaxed);
  }

  /// Appends start failing honestly with ResourceExhausted ("disk full")
  /// after `n` more bytes. Unlike CrashAfterBytes the writer *sees* the
  /// error and can enter degraded mode.
  void FailWritesAfterBytes(uint64_t n) {
    // relaxed: programmed before the run; consumed by the writer thread.
    fail_budget_.store(n, std::memory_order_relaxed);
  }

  /// XORs the byte at `offset` of `path` with `mask` (post-hoc surgery;
  /// applied immediately via the base env).
  Status FlipByte(const std::string& path, uint64_t offset, uint8_t mask);

  // --- observation ---

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  uint64_t bytes_written() const {
    // relaxed: test observation after the run (the join orders it).
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t syncs() const {
    // relaxed: test observation after the run (the join orders it).
    return syncs_.load(std::memory_order_relaxed);
  }
  uint64_t dir_syncs() const {
    // relaxed: test observation after the run (the join orders it).
    return dir_syncs_.load(std::memory_order_relaxed);
  }
  uint64_t file_syncs() const {
    // relaxed: test observation after the run (the join orders it).
    return file_syncs_.load(std::memory_order_relaxed);
  }

  // --- LogEnv ---

  Status CreateDirIfMissing(const std::string& dir) override {
    return base_->CreateDirIfMissing(dir);
  }
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    return base_->ListDir(dir, names);
  }
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<LogWritableFile>* file) override;
  Status ReadFileToString(const std::string& path, std::string* out) override {
    return base_->ReadFileToString(path, out);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  // Directory entries are outside the crash model (CrashAfterBytes /
  // CrashAtSync only drop *file data*): after a programmed crash these
  // become silent no-ops like every other write-path call; otherwise they
  // forward, and the counters let tests assert the log issued them.
  Status SyncDir(const std::string& dir) override {
    // relaxed: observation-only counter / writer-thread-owned flag.
    dir_syncs_.fetch_add(1, std::memory_order_relaxed);
    if (crashed_.load(std::memory_order_relaxed)) return Status::OK();
    return base_->SyncDir(dir);
  }
  Status SyncFile(const std::string& path) override {
    // relaxed: observation-only counter / writer-thread-owned flag.
    file_syncs_.fetch_add(1, std::memory_order_relaxed);
    if (crashed_.load(std::memory_order_relaxed)) return Status::OK();
    return base_->SyncFile(path);
  }

 private:
  friend class FaultLogFile;
  static constexpr uint64_t kNoLimit = std::numeric_limits<uint64_t>::max();

  LogEnv* base_;
  std::atomic<uint64_t> write_budget_{kNoLimit};
  std::atomic<uint64_t> sync_budget_{kNoLimit};
  std::atomic<uint64_t> fail_budget_{kNoLimit};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> dir_syncs_{0};
  std::atomic<uint64_t> file_syncs_{0};
};

}  // namespace bohm
