#include "log/crc32c.h"

#include <array>

namespace bohm {

namespace {

// Byte-wise table for the reflected Castagnoli polynomial, generated once
// at first use. Throughput (~1 byte/cycle) is far beyond what the log
// writer needs: payloads are key lists, a few hundred bytes per batch.
struct Crc32cTable {
  std::array<uint32_t, 256> t;
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32c(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bohm
