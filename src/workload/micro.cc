#include "workload/micro.h"

namespace bohm {

namespace {

YcsbConfig ToYcsb(const MicroConfig& cfg) {
  YcsbConfig y;
  y.record_count = cfg.record_count;
  y.record_size = 8;
  y.theta = 0.0;  // uniform: "transactions rarely conflict" (Section 4.1)
  return y;
}

}  // namespace

Catalog MicroCatalog(const MicroConfig& cfg) { return YcsbCatalog(ToYcsb(cfg)); }

MicroGenerator::MicroGenerator(const MicroConfig& cfg, uint64_t seed)
    : cfg_(cfg), inner_(ToYcsb(cfg), seed) {}

ProcedurePtr MicroGenerator::Make() {
  return std::make_unique<YcsbRmwProcedure>(
      inner_.DrawDistinctKeys(cfg_.ops_per_txn), 8);
}

}  // namespace bohm
