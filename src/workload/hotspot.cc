#include "workload/hotspot.h"

#include <algorithm>
#include <memory>

namespace bohm {

HotspotGenerator::HotspotGenerator(const HotspotConfig& cfg, uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      zipf_(cfg.hot_keys == 0 ? 1 : cfg.hot_keys, cfg.theta) {
  if (cfg_.record_count == 0) cfg_.record_count = 1;
  if (cfg_.hot_keys == 0) cfg_.hot_keys = 1;
  if (cfg_.hot_keys > cfg_.record_count) cfg_.hot_keys = cfg_.record_count;
  if (cfg_.shift_period == 0) cfg_.shift_period = 1;
  // Jump far each shift so successive windows land on disjoint partition
  // sets; ~1/7 of the table is co-prime-ish with the power-of-two strides
  // a hash would be blind to, and never a multiple of the window width.
  stride_ = cfg_.record_count / 7 + cfg_.hot_keys + 1;
}

Key HotspotGenerator::NextKey() {
  if (++draws_ % cfg_.shift_period == 0) {
    base_ = (base_ + stride_) % cfg_.record_count;
  }
  if (rng_.NextDouble() < cfg_.hot_fraction) {
    const uint64_t rank = zipf_.Next(rng_);
    return static_cast<Key>((base_ + rank) % cfg_.record_count);
  }
  return static_cast<Key>(rng_.Uniform(cfg_.record_count));
}

std::vector<Key> HotspotGenerator::DrawDistinctKeys(uint32_t n) {
  if (static_cast<uint64_t>(n) > cfg_.record_count) {
    n = static_cast<uint32_t>(cfg_.record_count);
  }
  std::vector<Key> keys;
  keys.reserve(n);
  uint32_t attempts = 0;
  while (keys.size() < n) {
    // A window narrower than n can starve the hot path of fresh keys;
    // fall back to uniform draws once the duplicate rate shows it.
    Key k = ++attempts > 4 * n ? static_cast<Key>(rng_.Uniform(cfg_.record_count))
                               : NextKey();
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  return keys;
}

ProcedurePtr HotspotGenerator::Make() {
  return std::make_unique<YcsbRmwProcedure>(DrawDistinctKeys(cfg_.rmw_keys),
                                            cfg_.record_size);
}

}  // namespace bohm
