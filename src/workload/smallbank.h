// The SmallBank benchmark (Cahill [9]) as used in Section 4.3: three
// tables (Customer, Savings, Checking) and five transaction types
// (Balance, DepositChecking, TransactSaving, Amalgamate, WriteCheck).
// Contention is controlled by the number of customers (50 = high
// contention, 100,000 = low). Balances are 8-byte signed integers; each
// transaction additionally spins for a configurable duration ("each
// transaction spins for 50 microseconds", Section 4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rand.h"
#include "common/status.h"
#include "storage/schema.h"
#include "txn/procedure.h"

namespace bohm {

inline constexpr TableId kSbCustomerTable = 0;
inline constexpr TableId kSbSavingsTable = 1;
inline constexpr TableId kSbCheckingTable = 2;

struct SmallBankConfig {
  uint64_t customers = 100'000;
  int64_t initial_savings = 1000;
  int64_t initial_checking = 1000;
  /// Per-transaction busy-spin (microseconds); 50 in the paper. 0 disables.
  uint32_t spin_us = 0;
};

Catalog SmallBankCatalog(const SmallBankConfig& cfg);

/// Loads all three tables through an engine Load function.
template <typename LoadFn>
Status SmallBankLoad(const SmallBankConfig& cfg, LoadFn&& sink) {
  for (uint64_t c = 0; c < cfg.customers; ++c) {
    int64_t cid = static_cast<int64_t>(c);
    Status s = sink(kSbCustomerTable, c, &cid);
    if (!s.ok()) return s;
    s = sink(kSbSavingsTable, c, &cfg.initial_savings);
    if (!s.ok()) return s;
    s = sink(kSbCheckingTable, c, &cfg.initial_checking);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Busy-spins for `us` microseconds (the paper's per-transaction work).
void SmallBankSpin(uint32_t us);

/// Balance: read-only — returns a customer's total balance.
class BalanceProcedure final : public StoredProcedure {
 public:
  BalanceProcedure(Key customer, uint32_t spin_us);
  void Run(TxnOps& ops) override;
  int64_t total() const { return total_; }

 private:
  Key customer_;
  uint32_t spin_us_;
  int64_t total_ = 0;
};

/// DepositChecking: checking(c) += amount.
class DepositCheckingProcedure final : public StoredProcedure {
 public:
  DepositCheckingProcedure(Key customer, int64_t amount, uint32_t spin_us);
  void Run(TxnOps& ops) override;

 private:
  Key customer_;
  int64_t amount_;
  uint32_t spin_us_;
};

/// TransactSaving: savings(c) += amount; aborts when the result would be
/// negative (the benchmark's only logic abort).
class TransactSavingProcedure final : public StoredProcedure {
 public:
  TransactSavingProcedure(Key customer, int64_t amount, uint32_t spin_us);
  void Run(TxnOps& ops) override;

 private:
  Key customer_;
  int64_t amount_;
  uint32_t spin_us_;
};

/// Amalgamate: moves all funds of customer0 into customer1's checking.
class AmalgamateProcedure final : public StoredProcedure {
 public:
  AmalgamateProcedure(Key customer0, Key customer1, uint32_t spin_us);
  void Run(TxnOps& ops) override;

 private:
  Key customer0_;
  Key customer1_;
  uint32_t spin_us_;
};

/// WriteCheck: writes a check against the total balance; overdrafts incur
/// a 1-unit penalty (Cahill's semantics).
class WriteCheckProcedure final : public StoredProcedure {
 public:
  WriteCheckProcedure(Key customer, int64_t amount, uint32_t spin_us);
  void Run(TxnOps& ops) override;

 private:
  Key customer_;
  int64_t amount_;
  uint32_t spin_us_;
};

/// Per-thread generator producing the uniform five-way mix (20% of
/// transactions are the read-only Balance, as the paper notes).
class SmallBankGenerator {
 public:
  enum class TxnType : uint32_t {
    kBalance = 0,
    kDepositChecking = 1,
    kTransactSaving = 2,
    kAmalgamate = 3,
    kWriteCheck = 4,
  };

  SmallBankGenerator(const SmallBankConfig& cfg, uint64_t seed);

  ProcedurePtr Make();                // uniform mix
  ProcedurePtr Make(TxnType type);    // specific type
  /// Restricted mix used by conservation property tests: Balance +
  /// Amalgamate only (no external money flow).
  ProcedurePtr MakeConserving();

  Rng& rng() { return rng_; }

 private:
  Key RandomCustomer() { return rng_.Uniform(cfg_.customers); }

  SmallBankConfig cfg_;
  Rng rng_;
};

}  // namespace bohm
