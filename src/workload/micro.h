// The concurrency-control scalability microbenchmark of Section 4.1 /
// Figure 4: "short, simple transactions, involving only 10 RMWs of
// different records ... each record is very small (a single 64-bit
// integer) ... 1,000,000 records ... chosen from a uniform distribution."
// Structurally a YCSB 10RMW workload with 8-byte records and theta = 0;
// expressed as its own config so the Figure-4 bench reads like the paper.
#pragma once

#include "workload/ycsb.h"

namespace bohm {

struct MicroConfig {
  uint64_t record_count = 1'000'000;
  uint32_t ops_per_txn = 10;
};

/// The microbenchmark's single table: 8-byte integer records.
Catalog MicroCatalog(const MicroConfig& cfg);

/// Per-thread generator of uniform N-RMW increment transactions.
class MicroGenerator {
 public:
  MicroGenerator(const MicroConfig& cfg, uint64_t seed);
  ProcedurePtr Make();

 private:
  MicroConfig cfg_;
  YcsbGenerator inner_;
};

}  // namespace bohm
