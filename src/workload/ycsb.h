// YCSB workload (Cooper et al. [11]) as configured in the paper's
// evaluation (Section 4.2): one table of fixed-size records (1,000 bytes;
// the paper's "standard record size"), keys drawn from a scrambled zipfian
// distribution whose theta parameter is the contention knob (theta = 0 is
// uniform / low contention; theta = 0.9 is the paper's high contention).
//
// Three transaction types:
//  * 10RMW      — ten read-modify-writes of distinct records (4.2.1)
//  * 2RMW-8R    — two RMWs plus eight reads, distinct records (4.2.2)
//  * ReadOnly   — reads 10,000 uniformly-chosen records (4.2.3)
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rand.h"
#include "common/status.h"
#include "common/zipf.h"
#include "storage/schema.h"
#include "txn/procedure.h"

namespace bohm {

inline constexpr TableId kYcsbTableId = 0;

struct YcsbConfig {
  uint64_t record_count = 1'000'000;
  uint32_t record_size = 1000;  // >= 8; the first 8 bytes are a counter
  double theta = 0.0;           // zipfian contention parameter
  uint32_t scan_size = 10'000;  // records read by a read-only transaction
};

/// Catalog with the single YCSB table.
Catalog YcsbCatalog(const YcsbConfig& cfg);

/// Loads all records through `sink` (records start zeroed with a
/// recognizable byte pattern in the non-counter tail). `sink` is the
/// engine's Load function.
template <typename LoadFn>
Status YcsbLoad(const YcsbConfig& cfg, LoadFn&& sink) {
  std::vector<char> payload(cfg.record_size, static_cast<char>(0xAB));
  std::memset(payload.data(), 0, 8);  // 64-bit counter in the prefix
  for (uint64_t k = 0; k < cfg.record_count; ++k) {
    Status s = sink(kYcsbTableId, static_cast<Key>(k), payload.data());
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// N read-modify-writes of distinct records: read, copy, increment the
/// 64-bit counter prefix, write back the full record.
class YcsbRmwProcedure final : public StoredProcedure {
 public:
  YcsbRmwProcedure(std::vector<Key> keys, uint32_t record_size);
  void Run(TxnOps& ops) override;
  uint32_t codec_id() const override;
  void EncodeArgs(std::string* out) const override;

 private:
  std::vector<Key> keys_;
  uint32_t record_size_;
};

/// 2RMW-8R: keys[0..rmw_count) are RMWs, the rest are plain reads.
class YcsbMixedProcedure final : public StoredProcedure {
 public:
  YcsbMixedProcedure(std::vector<Key> keys, uint32_t rmw_count,
                     uint32_t record_size);
  void Run(TxnOps& ops) override;

  /// Sum of counter prefixes observed by the read portion (prevents the
  /// reads from being optimized away; also a test observable).
  uint64_t observed_sum() const { return observed_sum_; }

 private:
  std::vector<Key> keys_;
  uint32_t rmw_count_;
  uint32_t record_size_;
  uint64_t observed_sum_ = 0;
};

/// Long read-only transaction: reads `keys` and accumulates their counter
/// prefixes.
class YcsbScanProcedure final : public StoredProcedure {
 public:
  explicit YcsbScanProcedure(std::vector<Key> keys);
  void Run(TxnOps& ops) override;

  uint64_t observed_sum() const { return observed_sum_; }

 private:
  std::vector<Key> keys_;
  uint64_t observed_sum_ = 0;
};

/// Per-thread transaction generator.
class YcsbGenerator {
 public:
  enum class TxnType { k10Rmw, k2Rmw8R, kReadOnlyScan };

  YcsbGenerator(const YcsbConfig& cfg, uint64_t seed);

  /// Draws `n` *distinct* keys from the zipfian distribution ("each
  /// element of a transaction's read- and write-set is unique",
  /// Section 4.2.1).
  std::vector<Key> DrawDistinctKeys(uint32_t n);
  /// Draws `n` distinct keys uniformly (read-only scans, Section 4.2.3).
  std::vector<Key> DrawUniformKeys(uint32_t n);

  ProcedurePtr Make(TxnType type);

  /// Mixed update / read-only stream: with probability
  /// `read_only_fraction` produce a scan, else a 10RMW (Section 4.2.3).
  ProcedurePtr MakeMixed(double read_only_fraction);

  Rng& rng() { return rng_; }

 private:
  YcsbConfig cfg_;
  Rng rng_;
  ScrambledZipf zipf_;
};

}  // namespace bohm
