#include "workload/smallbank.h"

#include <chrono>
#include <cstring>

namespace bohm {

namespace {

int64_t ReadBalance(TxnOps& ops, TableId table, Key key) {
  const void* p = ops.Read(table, key);
  int64_t v = 0;
  if (p != nullptr) std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteBalance(TxnOps& ops, TableId table, Key key, int64_t v) {
  void* p = ops.Write(table, key);
  if (p != nullptr) std::memcpy(p, &v, sizeof(v));
}

}  // namespace

Catalog SmallBankCatalog(const SmallBankConfig& cfg) {
  Catalog catalog;
  (void)catalog.AddTable(TableSpec{kSbCustomerTable, "customer", 8,
                                   cfg.customers, true});
  (void)catalog.AddTable(TableSpec{kSbSavingsTable, "savings", 8,
                                   cfg.customers, true});
  (void)catalog.AddTable(TableSpec{kSbCheckingTable, "checking", 8,
                                   cfg.customers, true});
  return catalog;
}

void SmallBankSpin(uint32_t us) {
  if (us == 0) return;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

BalanceProcedure::BalanceProcedure(Key customer, uint32_t spin_us)
    : customer_(customer), spin_us_(spin_us) {
  set_.AddRead(kSbCustomerTable, customer);
  set_.AddRead(kSbSavingsTable, customer);
  set_.AddRead(kSbCheckingTable, customer);
}

void BalanceProcedure::Run(TxnOps& ops) {
  (void)ops.Read(kSbCustomerTable, customer_);  // the "name lookup"
  total_ = ReadBalance(ops, kSbSavingsTable, customer_) +
           ReadBalance(ops, kSbCheckingTable, customer_);
  SmallBankSpin(spin_us_);
}

DepositCheckingProcedure::DepositCheckingProcedure(Key customer,
                                                   int64_t amount,
                                                   uint32_t spin_us)
    : customer_(customer), amount_(amount), spin_us_(spin_us) {
  set_.AddRead(kSbCustomerTable, customer);
  set_.AddRmw(kSbCheckingTable, customer);
}

void DepositCheckingProcedure::Run(TxnOps& ops) {
  (void)ops.Read(kSbCustomerTable, customer_);
  int64_t bal = ReadBalance(ops, kSbCheckingTable, customer_);
  WriteBalance(ops, kSbCheckingTable, customer_, bal + amount_);
  SmallBankSpin(spin_us_);
}

TransactSavingProcedure::TransactSavingProcedure(Key customer,
                                                 int64_t amount,
                                                 uint32_t spin_us)
    : customer_(customer), amount_(amount), spin_us_(spin_us) {
  set_.AddRead(kSbCustomerTable, customer);
  set_.AddRmw(kSbSavingsTable, customer);
}

void TransactSavingProcedure::Run(TxnOps& ops) {
  (void)ops.Read(kSbCustomerTable, customer_);
  int64_t bal = ReadBalance(ops, kSbSavingsTable, customer_);
  int64_t updated = bal + amount_;
  SmallBankSpin(spin_us_);
  if (updated < 0) {
    ops.Abort();
    return;
  }
  WriteBalance(ops, kSbSavingsTable, customer_, updated);
}

AmalgamateProcedure::AmalgamateProcedure(Key customer0, Key customer1,
                                         uint32_t spin_us)
    : customer0_(customer0), customer1_(customer1), spin_us_(spin_us) {
  set_.AddRead(kSbCustomerTable, customer0);
  set_.AddRead(kSbCustomerTable, customer1);
  set_.AddRmw(kSbSavingsTable, customer0);
  set_.AddRmw(kSbCheckingTable, customer0);
  set_.AddRmw(kSbCheckingTable, customer1);
}

void AmalgamateProcedure::Run(TxnOps& ops) {
  (void)ops.Read(kSbCustomerTable, customer0_);
  (void)ops.Read(kSbCustomerTable, customer1_);
  int64_t savings0 = ReadBalance(ops, kSbSavingsTable, customer0_);
  int64_t checking0 = ReadBalance(ops, kSbCheckingTable, customer0_);
  int64_t checking1 = ReadBalance(ops, kSbCheckingTable, customer1_);
  WriteBalance(ops, kSbSavingsTable, customer0_, 0);
  WriteBalance(ops, kSbCheckingTable, customer0_, 0);
  WriteBalance(ops, kSbCheckingTable, customer1_,
               checking1 + savings0 + checking0);
  SmallBankSpin(spin_us_);
}

WriteCheckProcedure::WriteCheckProcedure(Key customer, int64_t amount,
                                         uint32_t spin_us)
    : customer_(customer), amount_(amount), spin_us_(spin_us) {
  set_.AddRead(kSbCustomerTable, customer);
  set_.AddRead(kSbSavingsTable, customer);
  set_.AddRmw(kSbCheckingTable, customer);
}

void WriteCheckProcedure::Run(TxnOps& ops) {
  (void)ops.Read(kSbCustomerTable, customer_);
  int64_t savings = ReadBalance(ops, kSbSavingsTable, customer_);
  int64_t checking = ReadBalance(ops, kSbCheckingTable, customer_);
  int64_t debit = amount_;
  if (savings + checking < amount_) debit += 1;  // overdraft penalty
  WriteBalance(ops, kSbCheckingTable, customer_, checking - debit);
  SmallBankSpin(spin_us_);
}

SmallBankGenerator::SmallBankGenerator(const SmallBankConfig& cfg,
                                       uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

ProcedurePtr SmallBankGenerator::Make() {
  return Make(static_cast<TxnType>(rng_.Uniform(5)));
}

ProcedurePtr SmallBankGenerator::Make(TxnType type) {
  const uint32_t spin = cfg_.spin_us;
  switch (type) {
    case TxnType::kBalance:
      return std::make_unique<BalanceProcedure>(RandomCustomer(), spin);
    case TxnType::kDepositChecking:
      return std::make_unique<DepositCheckingProcedure>(
          RandomCustomer(), static_cast<int64_t>(rng_.Uniform(100)) + 1,
          spin);
    case TxnType::kTransactSaving: {
      // Mix deposits and withdrawals so the logic-abort path is exercised.
      int64_t amount = static_cast<int64_t>(rng_.Uniform(200)) - 100;
      return std::make_unique<TransactSavingProcedure>(RandomCustomer(),
                                                       amount, spin);
    }
    case TxnType::kAmalgamate: {
      Key c0 = RandomCustomer();
      Key c1 = RandomCustomer();
      if (cfg_.customers > 1) {
        while (c1 == c0) c1 = RandomCustomer();
      }
      if (cfg_.customers == 1) return Make(TxnType::kBalance);
      return std::make_unique<AmalgamateProcedure>(c0, c1, spin);
    }
    case TxnType::kWriteCheck:
      return std::make_unique<WriteCheckProcedure>(
          RandomCustomer(), static_cast<int64_t>(rng_.Uniform(100)) + 1,
          spin);
  }
  return nullptr;
}

ProcedurePtr SmallBankGenerator::MakeConserving() {
  if (rng_.Uniform(2) == 0 || cfg_.customers < 2) {
    return Make(TxnType::kBalance);
  }
  return Make(TxnType::kAmalgamate);
}

}  // namespace bohm
