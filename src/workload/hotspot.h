// Shifting-hotspot workload: the adaptive-repartitioning stressor.
//
// YCSB's scrambled-zipfian knob (workload/ycsb.h) spreads its hot keys
// uniformly over the key space, so every CC thread sees roughly the same
// version-insertion load no matter how skewed theta gets. This workload
// does the opposite on purpose: most traffic concentrates on a small
// *window* of keys ([base, base + hot_keys), inner zipfian), and the
// window jumps to a different region of the key space every shift_period
// draws. Because keys hash to physical partitions, a small window lands on
// a handful of partitions — whichever CC threads own them become the
// bottleneck while the rest idle, and the bottleneck *moves* every shift.
// A static partition -> CC-thread map cannot follow it; the adaptive
// controller (bohm/repartition.h) migrates the hot partitions between
// batches.
//
// Uses the same table / catalog / loader as YCSB (kYcsbTableId via
// Ycsb()), and emits the standard YcsbRmwProcedure, so engines need no
// new code to run it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rand.h"
#include "common/zipf.h"
#include "workload/ycsb.h"

namespace bohm {

struct HotspotConfig {
  uint64_t record_count = 100'000;
  uint32_t record_size = 1000;  // >= 8, as in YCSB
  /// Probability a key is drawn from the hot window (rest: uniform).
  double hot_fraction = 0.9;
  /// Width of the hot window. Small on purpose: the window should cover
  /// few enough physical partitions that their owners saturate.
  uint64_t hot_keys = 16;
  /// Draws (per generator) between window shifts.
  uint64_t shift_period = 50'000;
  /// Inner zipfian skew across the window's hot_keys ranks.
  double theta = 0.99;
  /// Distinct RMW keys per transaction.
  uint32_t rmw_keys = 8;

  /// The equivalent YCSB config (same table shape) for catalog + load.
  YcsbConfig Ycsb() const {
    YcsbConfig cfg;
    cfg.record_count = record_count;
    cfg.record_size = record_size;
    return cfg;
  }
};

/// Per-thread generator. Deterministic given (cfg, seed): the window
/// shift schedule is a fixed stride, so two generators with the same seed
/// produce identical transaction streams.
class HotspotGenerator {
 public:
  HotspotGenerator(const HotspotConfig& cfg, uint64_t seed);

  /// Draws the next key: hot-window zipfian with probability
  /// hot_fraction, uniform over the whole table otherwise. Advances the
  /// shift clock.
  Key NextKey();

  /// `n` distinct keys (transactions require unique read/write sets).
  std::vector<Key> DrawDistinctKeys(uint32_t n);

  /// A standard YCSB RMW transaction over rmw_keys distinct keys.
  ProcedurePtr Make();

  /// First key of the current hot window (test observable).
  uint64_t window_base() const { return base_; }

 private:
  HotspotConfig cfg_;
  Rng rng_;
  ZipfGenerator zipf_;  // ranks within the window
  uint64_t base_ = 0;
  uint64_t stride_;
  uint64_t draws_ = 0;
};

}  // namespace bohm
