#include "workload/ycsb.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "log/codec.h"

namespace bohm {

Catalog YcsbCatalog(const YcsbConfig& cfg) {
  TableSpec spec;
  spec.id = kYcsbTableId;
  spec.name = "usertable";
  spec.record_size = cfg.record_size;
  spec.capacity = cfg.record_count;
  spec.dense_keys = true;
  Catalog catalog;
  (void)catalog.AddTable(std::move(spec));
  return catalog;
}

YcsbRmwProcedure::YcsbRmwProcedure(std::vector<Key> keys,
                                   uint32_t record_size)
    : keys_(std::move(keys)), record_size_(record_size) {
  for (Key k : keys_) set_.AddRmw(kYcsbTableId, k);
}

uint32_t YcsbRmwProcedure::codec_id() const { return kCodecYcsbRmw; }

void YcsbRmwProcedure::EncodeArgs(std::string* out) const {
  AppendFixed32(out, record_size_);
  AppendFixed32(out, static_cast<uint32_t>(keys_.size()));
  for (Key k : keys_) AppendFixed64(out, static_cast<uint64_t>(k));
}

void YcsbRmwProcedure::Run(TxnOps& ops) {
  for (Key k : keys_) {
    const void* old = ops.Read(kYcsbTableId, k);
    void* buf = ops.Write(kYcsbTableId, k);
    if (buf == nullptr) return;
    uint64_t counter = 0;
    if (old != nullptr) {
      std::memcpy(&counter, old, sizeof(counter));
      // The multi-version overhead the paper measures: the *entire* new
      // record must be produced, not just the 8 bytes that change.
      std::memcpy(buf, old, record_size_);
    } else {
      std::memset(buf, 0, record_size_);
    }
    ++counter;
    std::memcpy(buf, &counter, sizeof(counter));
  }
}

YcsbMixedProcedure::YcsbMixedProcedure(std::vector<Key> keys,
                                       uint32_t rmw_count,
                                       uint32_t record_size)
    : keys_(std::move(keys)),
      rmw_count_(rmw_count),
      record_size_(record_size) {
  for (uint32_t i = 0; i < keys_.size(); ++i) {
    if (i < rmw_count_) {
      set_.AddRmw(kYcsbTableId, keys_[i]);
    } else {
      set_.AddRead(kYcsbTableId, keys_[i]);
    }
  }
}

void YcsbMixedProcedure::Run(TxnOps& ops) {
  observed_sum_ = 0;
  for (uint32_t i = 0; i < keys_.size(); ++i) {
    const void* old = ops.Read(kYcsbTableId, keys_[i]);
    uint64_t counter = 0;
    if (old != nullptr) std::memcpy(&counter, old, sizeof(counter));
    if (i < rmw_count_) {
      void* buf = ops.Write(kYcsbTableId, keys_[i]);
      if (buf == nullptr) return;
      if (old != nullptr) {
        std::memcpy(buf, old, record_size_);
      } else {
        std::memset(buf, 0, record_size_);
      }
      ++counter;
      std::memcpy(buf, &counter, sizeof(counter));
    } else {
      observed_sum_ += counter;
    }
  }
}

YcsbScanProcedure::YcsbScanProcedure(std::vector<Key> keys)
    : keys_(std::move(keys)) {
  for (Key k : keys_) set_.AddRead(kYcsbTableId, k);
}

void YcsbScanProcedure::Run(TxnOps& ops) {
  observed_sum_ = 0;
  for (Key k : keys_) {
    const void* p = ops.Read(kYcsbTableId, k);
    uint64_t counter = 0;
    if (p != nullptr) std::memcpy(&counter, p, sizeof(counter));
    observed_sum_ += counter;
  }
}

YcsbGenerator::YcsbGenerator(const YcsbConfig& cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed), zipf_(cfg.record_count, cfg.theta) {}

std::vector<Key> YcsbGenerator::DrawDistinctKeys(uint32_t n) {
  std::vector<Key> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    Key k = zipf_.Next(rng_);
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  return keys;
}

std::vector<Key> YcsbGenerator::DrawUniformKeys(uint32_t n) {
  std::vector<Key> keys;
  keys.reserve(n);
  // Scans draw thousands of keys; linear dedup would be quadratic.
  std::unordered_set<Key> seen;
  seen.reserve(n * 2);
  while (keys.size() < n) {
    Key k = rng_.Uniform(cfg_.record_count);
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

ProcedurePtr YcsbGenerator::Make(TxnType type) {
  switch (type) {
    case TxnType::k10Rmw:
      return std::make_unique<YcsbRmwProcedure>(DrawDistinctKeys(10),
                                                cfg_.record_size);
    case TxnType::k2Rmw8R:
      return std::make_unique<YcsbMixedProcedure>(DrawDistinctKeys(10), 2,
                                                  cfg_.record_size);
    case TxnType::kReadOnlyScan:
      return std::make_unique<YcsbScanProcedure>(
          DrawUniformKeys(cfg_.scan_size));
  }
  return nullptr;
}

ProcedurePtr YcsbGenerator::MakeMixed(double read_only_fraction) {
  if (rng_.NextDouble() < read_only_fraction) {
    return Make(TxnType::kReadOnlyScan);
  }
  return Make(TxnType::k10Rmw);
}

}  // namespace bohm
