// Negative tests for the thread-safety annotations (ISSUE: the analysis
// must actually reject racy code, not just decorate it). Case 0 is the
// control: correctly-locked code that compiles on every compiler and runs
// as a normal gtest. Cases 1..4 each contain one deliberate locking bug;
// CMake registers them (Clang only) as `-fsyntax-only` compiles with
// `-Werror=thread-safety-analysis` and WILL_FAIL, so the suite goes red if
// the analysis ever stops catching them — e.g. if the macros in
// common/thread_annotations.h silently degrade to no-ops under Clang.
//
//   case 1 — touching a BOHM_GUARDED_BY member without the lock
//   case 2 — returning while still holding a lock (leak / forgot unlock)
//   case 3 — calling a BOHM_REQUIRES function without the capability
//   case 4 — re-acquiring a lock already held (self-deadlock)

#include "common/spin.h"
#include "common/thread_annotations.h"

#ifndef BOHM_ANNOTATION_CASE
#define BOHM_ANNOTATION_CASE 0
#endif

namespace bohm {
namespace {

class Account {
 public:
  void Deposit(int amount) {
    SpinLockGuard guard(mu_);
    balance_ += amount;
  }

  int Balance() {
    SpinLockGuard guard(mu_);
    return balance_;
  }

  void DepositLocked(int amount) BOHM_REQUIRES(mu_) { balance_ += amount; }

  SpinLock mu_;

 private:
  int balance_ BOHM_GUARDED_BY(mu_) = 0;

#if BOHM_ANNOTATION_CASE == 1
 public:
  int RacyRead() { return balance_; }  // no lock: must not compile
#elif BOHM_ANNOTATION_CASE == 2
 public:
  int LeakyRead() {
    mu_.lock();
    return balance_;  // returns with mu_ held: must not compile
  }
#elif BOHM_ANNOTATION_CASE == 3
 public:
  void UnlockedCall() { DepositLocked(1); }  // missing mu_: must not compile
#elif BOHM_ANNOTATION_CASE == 4
 public:
  void DoubleLock() {
    SpinLockGuard outer(mu_);
    SpinLockGuard inner(mu_);  // self-deadlock: must not compile
    balance_ += 1;
  }
#endif
};

}  // namespace
}  // namespace bohm

#if BOHM_ANNOTATION_CASE == 0

#include <gtest/gtest.h>

namespace bohm {
namespace {

TEST(AnnotationCompileTest, ControlCompilesAndRuns) {
  Account a;
  a.Deposit(3);
  {
    SpinLockGuard guard(a.mu_);
    a.DepositLocked(4);
  }
  EXPECT_EQ(a.Balance(), 7);
}

}  // namespace
}  // namespace bohm

#else

// The failure cases are compiled with -fsyntax-only (never linked), but
// give them a main so the TU is a complete program regardless.
int main() { return 0; }

#endif
