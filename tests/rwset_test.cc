#include "txn/rwset.h"

#include <gtest/gtest.h>

namespace bohm {
namespace {

TEST(RecordIdTest, LexicographicOrder) {
  EXPECT_LT((RecordId{0, 5}), (RecordId{1, 0}));
  EXPECT_LT((RecordId{1, 2}), (RecordId{1, 3}));
  EXPECT_EQ((RecordId{2, 2}), (RecordId{2, 2}));
}

TEST(RwSetTest, AddAndInspect) {
  ReadWriteSet s;
  s.AddRead(0, 1);
  s.AddWrite(0, 2);
  s.AddRmw(1, 3);
  EXPECT_EQ(s.reads().size(), 2u);   // read(0,1) + rmw-read(1,3)
  EXPECT_EQ(s.writes().size(), 2u);  // write(0,2) + rmw-write(1,3)
  EXPECT_TRUE(s.IsWritten(RecordId{0, 2}));
  EXPECT_TRUE(s.IsWritten(RecordId{1, 3}));
  EXPECT_FALSE(s.IsWritten(RecordId{0, 1}));
}

TEST(RwSetTest, ValidateAcceptsDistinct) {
  ReadWriteSet s;
  s.AddRead(0, 1);
  s.AddRead(0, 2);
  s.AddWrite(0, 1);  // same record read+written is an RMW, allowed
  EXPECT_TRUE(s.Validate().ok());
}

TEST(RwSetTest, ValidateRejectsDuplicateReads) {
  ReadWriteSet s;
  s.AddRead(0, 1);
  s.AddRead(0, 1);
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(RwSetTest, ValidateRejectsDuplicateWrites) {
  ReadWriteSet s;
  s.AddWrite(2, 9);
  s.AddWrite(2, 9);
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(RwSetTest, LockOrderSortedLexicographically) {
  ReadWriteSet s;
  s.AddWrite(1, 5);
  s.AddRead(0, 9);
  s.AddRead(1, 2);
  auto order = s.LockOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, (RecordId{0, 9}));
  EXPECT_EQ(order[1].first, (RecordId{1, 2}));
  EXPECT_EQ(order[2].first, (RecordId{1, 5}));
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1].first, order[i].first);
  }
}

TEST(RwSetTest, LockOrderCollapsesRmwToExclusive) {
  ReadWriteSet s;
  s.AddRmw(0, 7);
  s.AddRead(0, 3);
  auto order = s.LockOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, (RecordId{0, 3}));
  EXPECT_EQ(order[0].second, AccessMode::kRead);
  EXPECT_EQ(order[1].first, (RecordId{0, 7}));
  EXPECT_EQ(order[1].second, AccessMode::kWrite);
}

TEST(RwSetTest, LockOrderEmptySet) {
  ReadWriteSet s;
  EXPECT_TRUE(s.LockOrder().empty());
}

TEST(RwSetTest, HashDistinguishesTableAndKey) {
  std::hash<RecordId> h;
  EXPECT_NE(h(RecordId{0, 1}), h(RecordId{1, 0}));
}

}  // namespace
}  // namespace bohm
