// Pipeline-level behaviour of the Bohm engine: multi-client submission,
// back-pressure through tiny rings, partial-batch sealing, interest
// pre-processing equivalence, large records, and configuration edge
// cases.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

TEST(BohmPipelineTest, MultipleClientThreadsSubmitConcurrently) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 32;
  BohmEngine engine(OneTable(16), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 16; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kClients = 4, kPerClient = 500;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(c);
      for (int i = 0; i < kPerClient; ++i) {
        ASSERT_TRUE(engine
                        .Submit(std::make_unique<IncrementProcedure>(
                            0, rng.Uniform(16)))
                        .ok());
      }
    });
  }
  for (auto& c : clients) c.join();
  engine.WaitForIdle();

  uint64_t total = 0;
  for (Key k = 0; k < 16; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(engine.Stats().commits,
            static_cast<uint64_t>(kClients) * kPerClient);
  engine.Stop();
}

TEST(BohmPipelineTest, TinyPipelineBackpressureIsCorrect) {
  // pipeline_depth=2 with batch_size=1 forces constant slot reuse and
  // sequencer back-pressure; all effects must still apply exactly once.
  BohmConfig cfg;
  cfg.pipeline_depth = 2;
  cfg.batch_size = 1;
  cfg.input_queue_capacity = 4;
  BohmEngine engine(OneTable(2), cfg);
  uint64_t zero = 0;
  ASSERT_TRUE(engine.Load(0, 0, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine.WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine.ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, static_cast<uint64_t>(kN));
  engine.Stop();
}

TEST(BohmPipelineTest, PartialBatchSealsWithoutMoreInput) {
  // A single transaction must complete promptly even with a huge batch
  // size: the sequencer seals a partial batch when the queue runs dry.
  BohmConfig cfg;
  cfg.batch_size = 100000;
  BohmEngine engine(OneTable(2), cfg);
  uint64_t zero = 0;
  ASSERT_TRUE(engine.Load(0, 0, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.RunSync(std::make_unique<IncrementProcedure>(0, 0)).ok());
  uint64_t out = 0;
  ASSERT_TRUE(engine.ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 1u);
  engine.Stop();
}

struct InterestParams {
  bool preprocessing;
  bool annotation;
};

class InterestEquivalence : public ::testing::TestWithParam<InterestParams> {
};

TEST_P(InterestEquivalence, SameResultWithAndWithoutPreprocessing) {
  const InterestParams p = GetParam();
  BohmConfig cfg;
  cfg.cc_threads = 4;
  cfg.exec_threads = 2;
  cfg.batch_size = 16;
  cfg.interest_preprocessing = p.preprocessing;
  cfg.read_annotation = p.annotation;
  BohmEngine engine(OneTable(32), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 32; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  std::vector<uint64_t> golden(32, 0);
  Rng rng(55);
  for (int i = 0; i < 800; ++i) {
    Key k = rng.Uniform(32);
    uint64_t delta = rng.Uniform(9) + 1;
    golden[k] += delta;
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, k, delta))
            .ok());
  }
  engine.WaitForIdle();
  for (Key k = 0; k < 32; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    EXPECT_EQ(v, golden[k]) << "key " << k;
  }
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Configs, InterestEquivalence,
                         ::testing::Values(InterestParams{true, true},
                                           InterestParams{true, false},
                                           InterestParams{false, true},
                                           InterestParams{false, false}));

TEST(BohmPipelineTest, LargeRecordsRoundTrip) {
  TableSpec spec;
  spec.id = 0;
  spec.name = "big";
  spec.record_size = 1000;
  spec.capacity = 8;
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(std::move(spec)).ok());
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  BohmEngine engine(catalog, cfg);
  std::vector<char> init(1000, 0x11);
  ASSERT_TRUE(engine.Load(0, 0, init.data()).ok());
  ASSERT_TRUE(engine.Start().ok());

  class BigRmw final : public StoredProcedure {
   public:
    BigRmw() { set_.AddRmw(0, 0); }
    void Run(TxnOps& ops) override {
      const void* old = ops.Read(0, 0);
      void* buf = ops.Write(0, 0);
      std::memcpy(buf, old, 1000);
      static_cast<char*>(buf)[500] += 1;
    }
  };
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Submit(std::make_unique<BigRmw>()).ok());
  }
  engine.WaitForIdle();
  std::vector<char> out(1000);
  ASSERT_TRUE(engine.ReadLatest(0, 0, out.data()).ok());
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[500], static_cast<char>(0x11 + 50));
  EXPECT_EQ(out[999], 0x11);
  engine.Stop();
}

TEST(BohmPipelineTest, MultiTableTransactions) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(TableSpec{0, "a", 8, 8, true}).ok());
  ASSERT_TRUE(catalog.AddTable(TableSpec{1, "b", 8, 8, true}).ok());
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  BohmEngine engine(catalog, cfg);
  uint64_t hundred = 100;
  for (Key k = 0; k < 8; ++k) {
    ASSERT_TRUE(engine.Load(0, k, &hundred).ok());
    ASSERT_TRUE(engine.Load(1, k, &hundred).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // Move value from table 0 to table 1 atomically.
  class CrossTableMove final : public StoredProcedure {
   public:
    CrossTableMove(Key k, uint64_t amt) : k_(k), amt_(amt) {
      set_.AddRmw(0, k);
      set_.AddRmw(1, k);
    }
    void Run(TxnOps& ops) override {
      uint64_t a = testutil::ReadU64(ops, 0, k_);
      uint64_t b = testutil::ReadU64(ops, 1, k_);
      testutil::WriteU64(ops, 0, k_, a - amt_);
      testutil::WriteU64(ops, 1, k_, b + amt_);
    }

   private:
    Key k_;
    uint64_t amt_;
  };
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<CrossTableMove>(i % 8, 1)).ok());
  }
  engine.WaitForIdle();
  for (Key k = 0; k < 8; ++k) {
    uint64_t a = 0, b = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &a).ok());
    ASSERT_TRUE(engine.ReadLatest(1, k, &b).ok());
    EXPECT_EQ(a + b, 200u);
    EXPECT_EQ(a, 100u - 25u);
    EXPECT_EQ(b, 100u + 25u);
  }
  engine.Stop();
}

TEST(BohmPipelineTest, EmptyFootprintTransactionCompletes) {
  BohmConfig cfg;
  BohmEngine engine(OneTable(2), cfg);
  ASSERT_TRUE(engine.Start().ok());
  class Noop final : public StoredProcedure {
   public:
    void Run(TxnOps&) override { ran = true; }
    bool ran = false;
  };
  auto noop = std::make_unique<Noop>();
  Noop* raw = noop.get();
  ASSERT_TRUE(engine.SubmitBorrowed(raw).ok());
  engine.WaitForIdle();
  EXPECT_TRUE(raw->ran);
  EXPECT_EQ(engine.Stats().commits, 1u);
  (void)noop;
  engine.Stop();
}

TEST(BohmPipelineTest, ManyCcThreadsFewKeys) {
  // More CC threads than distinct keys: some partitions are empty for
  // every transaction; barriers must still align.
  BohmConfig cfg;
  cfg.cc_threads = 8;
  cfg.exec_threads = 2;
  cfg.batch_size = 4;
  BohmEngine engine(OneTable(2), cfg);
  uint64_t zero = 0;
  ASSERT_TRUE(engine.Load(0, 0, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine.WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine.ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 200u);
  engine.Stop();
}

TEST(BohmPipelineTest, SubmittedCounterTracks) {
  BohmConfig cfg;
  BohmEngine engine(OneTable(2), cfg);
  uint64_t zero = 0;
  ASSERT_TRUE(engine.Load(0, 0, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.submitted(), 0u);
  ASSERT_TRUE(engine.Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  ASSERT_TRUE(engine.Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  EXPECT_EQ(engine.submitted(), 2u);
  engine.WaitForIdle();
  engine.Stop();
}

}  // namespace
}  // namespace bohm
