#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/arena.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/rand.h"
#include "common/stable_buffer.h"
#include "common/stats.h"

namespace bohm {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  uint64_t v = rng.Next();
  EXPECT_NE(v, 0u);
}

// ---------- Hash ----------

TEST(HashTest, DenseKeysScatter) {
  // Dense integer keys must not all land in the same low bits.
  std::set<uint64_t> buckets;
  for (uint64_t k = 0; k < 256; ++k) buckets.insert(HashKey(k) & 63);
  EXPECT_GT(buckets.size(), 48u);
}

TEST(HashTest, Deterministic) { EXPECT_EQ(HashKey(42), HashKey(42)); }

TEST(HashTest, TableDisambiguates) {
  EXPECT_NE(HashTableKey(0, 5), HashTableKey(1, 5));
}

TEST(HashTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

// ---------- Arena ----------

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);
  char* a = static_cast<char*>(arena.Allocate(100));
  char* b = static_cast<char*>(arena.Allocate(100));
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[99]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
}

TEST(ArenaTest, AlignmentHonored) {
  Arena arena;
  (void)arena.Allocate(1);
  void* p = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, OversizedAllocationGetsOwnBlock) {
  Arena arena(128);
  void* p = arena.Allocate(4096);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 4096);  // must be fully usable
  EXPECT_GE(arena.allocated_bytes(), 4096u);
}

TEST(ArenaTest, ResetReclaims) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) (void)arena.Allocate(64);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  void* p = arena.Allocate(16);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, NewConstructsInPlace) {
  struct Pod {
    int x;
    int y;
  };
  Arena arena;
  Pod* p = arena.New<Pod>();
  p->x = 1;
  p->y = 2;
  EXPECT_EQ(p->x + p->y, 3);
}

// ---------- StableBuffer ----------

TEST(StableBufferTest, PointersSurviveGrowth) {
  StableBuffer buf(64);
  char* first = static_cast<char*>(buf.Allocate(32));
  std::memset(first, 0x5A, 32);
  for (int i = 0; i < 100; ++i) (void)buf.Allocate(48);
  EXPECT_EQ(static_cast<unsigned char>(first[31]), 0x5A);
}

TEST(StableBufferTest, ResetReusesChunks) {
  StableBuffer buf(64);
  for (int i = 0; i < 10; ++i) (void)buf.Allocate(40);
  size_t chunks = buf.chunk_count();
  buf.Reset();
  for (int i = 0; i < 10; ++i) (void)buf.Allocate(40);
  EXPECT_EQ(buf.chunk_count(), chunks);
}

TEST(StableBufferTest, LargeAllocation) {
  StableBuffer buf(64);
  void* p = buf.Allocate(10000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 10000);
}

TEST(StableBufferTest, AllocationsAligned) {
  StableBuffer buf;
  (void)buf.Allocate(3);
  void* p = buf.Allocate(8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
}

// ---------- Stats ----------

TEST(StatsTest, FoldSumsSlices) {
  StatsRegistry reg(3);
  reg.Slice(0).commits.Inc(5);
  reg.Slice(1).commits.Inc(7);
  reg.Slice(2).cc_aborts.Inc(2);
  StatsSnapshot s = reg.Fold();
  EXPECT_EQ(s.commits, 12u);
  EXPECT_EQ(s.cc_aborts, 2u);
}

TEST(StatsTest, AbortRate) {
  StatsSnapshot s;
  s.commits = 75;
  s.cc_aborts = 25;
  EXPECT_DOUBLE_EQ(s.AbortRate(), 0.25);
}

TEST(StatsTest, AbortRateZeroAttempts) {
  StatsSnapshot s;
  EXPECT_DOUBLE_EQ(s.AbortRate(), 0.0);
}

TEST(StatsTest, ResetClears) {
  StatsRegistry reg(2);
  reg.Slice(0).commits.Inc(5);
  reg.Reset();
  EXPECT_EQ(reg.Fold().commits, 0u);
}

TEST(StatsTest, ToStringMentionsFields) {
  StatsSnapshot s;
  s.commits = 3;
  EXPECT_NE(s.ToString().find("commits=3"), std::string::npos);
}

// ---------- Env ----------

TEST(EnvTest, Int64Default) {
  ::unsetenv("BOHM_TEST_ENV_X");
  EXPECT_EQ(EnvInt64("BOHM_TEST_ENV_X", 42), 42);
}

TEST(EnvTest, Int64Parses) {
  ::setenv("BOHM_TEST_ENV_X", "123", 1);
  EXPECT_EQ(EnvInt64("BOHM_TEST_ENV_X", 42), 123);
  ::unsetenv("BOHM_TEST_ENV_X");
}

TEST(EnvTest, Int64BadFallsBack) {
  ::setenv("BOHM_TEST_ENV_X", "abc", 1);
  EXPECT_EQ(EnvInt64("BOHM_TEST_ENV_X", 42), 42);
  ::unsetenv("BOHM_TEST_ENV_X");
}

TEST(EnvTest, IntList) {
  ::setenv("BOHM_TEST_ENV_L", "1,2,8", 1);
  std::vector<int> v = EnvIntList("BOHM_TEST_ENV_L", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 8);
  ::unsetenv("BOHM_TEST_ENV_L");
}

TEST(EnvTest, IntListDefault) {
  ::unsetenv("BOHM_TEST_ENV_L");
  std::vector<int> v = EnvIntList("BOHM_TEST_ENV_L", {4, 5});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 4);
}

TEST(EnvTest, DoubleParses) {
  ::setenv("BOHM_TEST_ENV_D", "0.9", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("BOHM_TEST_ENV_D", 0.0), 0.9);
  ::unsetenv("BOHM_TEST_ENV_D");
}

}  // namespace
}  // namespace bohm
