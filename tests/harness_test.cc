#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/driver.h"
#include "harness/engines.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "test_util.h"
#include "workload/micro.h"

namespace bohm {
namespace {

using testutil::OneTable;

TEST(DriverTest, ExecutorCountRunsExactly) {
  auto engine = MakeExecutorEngine(EngineKind::k2PL, OneTable(64), 2);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine->Load(0, k, &zero).ok());
  BenchResult r = RunExecutorCount(
      *engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      100);
  EXPECT_EQ(r.commits, 200u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.Throughput(), 0.0);
}

TEST(DriverTest, ExecutorTimedWindowCommitsSomething) {
  auto engine = MakeExecutorEngine(EngineKind::kOCC, OneTable(64), 2);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine->Load(0, k, &zero).ok());
  DriverOptions opt;
  opt.warmup_ms = 10;
  opt.measure_ms = 50;
  BenchResult r = RunExecutorBench(
      *engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      opt);
  EXPECT_GT(r.commits, 0u);
  EXPECT_NEAR(r.seconds, 0.05, 0.05);
}

TEST(DriverTest, BohmCountCompletesAll) {
  BohmConfig cfg;
  cfg.batch_size = 16;
  BohmEngine engine(OneTable(64), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  BenchResult r = RunBohmCount(
      engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      500);
  EXPECT_EQ(r.commits, 500u);
  engine.Stop();
}

TEST(DriverTest, BohmTimedWindow) {
  BohmConfig cfg;
  cfg.batch_size = 32;
  BohmEngine engine(OneTable(64), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  DriverOptions opt;
  opt.warmup_ms = 10;
  opt.measure_ms = 50;
  BenchResult r = RunBohmBench(
      engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      1, opt);
  EXPECT_GT(r.commits, 0u);
  engine.Stop();
}

TEST(DriverTest, ExecutorWarmupExcludedFromWindow) {
  // The latency gate opens after the `before` counter snapshot and closes
  // before the `after` one, so warmup commits never enter the histogram
  // and the histogram count tracks window commits to within one
  // in-flight transaction per worker at each edge.
  const uint32_t threads = 2;
  auto engine = MakeExecutorEngine(EngineKind::k2PL, OneTable(64), threads);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine->Load(0, k, &zero).ok());
  DriverOptions opt;
  opt.warmup_ms = 30;
  opt.measure_ms = 60;
  BenchResult r = RunExecutorBench(
      *engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      opt);
  ASSERT_GT(r.commits, 0u);
  uint64_t hist = r.latency_us.count();
  uint64_t lo = r.commits > threads ? r.commits - threads : 0;
  EXPECT_GE(hist, lo);
  EXPECT_LE(hist, r.commits + threads);
  // Warmup ran for a comparable duration, so the engine's lifetime commit
  // total strictly exceeds the window's.
  EXPECT_GT(engine->Stats().commits, r.commits);
}

TEST(DriverTest, BohmWarmupExcludedFromWindow) {
  // Both window edges are quiesced, so the histogram delta covers exactly
  // the window's commits — no warmup leakage in either direction.
  BohmConfig cfg;
  cfg.batch_size = 32;
  BohmEngine engine(OneTable(64), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  DriverOptions opt;
  opt.warmup_ms = 30;
  opt.measure_ms = 60;
  BenchResult r = RunBohmBench(
      engine,
      [&](uint32_t tid) {
        auto rng = std::make_shared<Rng>(tid);
        return [rng]() -> ProcedurePtr {
          return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
        };
      },
      2, opt);
  ASSERT_GT(r.commits, 0u);
  EXPECT_EQ(r.latency_us.count(), r.commits);
  EXPECT_GT(engine.Stats().commits, r.commits);
  engine.Stop();
}

TEST(DriverTest, BohmRepeatedCountWindowsExact) {
  // Back-to-back fixed-count runs on one engine: each window's commit and
  // histogram counts are exact despite the monotonically growing
  // engine-side counters.
  BohmConfig cfg;
  cfg.batch_size = 16;
  BohmEngine engine(OneTable(64), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 64; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  auto maker = [&](uint32_t tid) {
    auto rng = std::make_shared<Rng>(tid);
    return [rng]() -> ProcedurePtr {
      return std::make_unique<IncrementProcedure>(0, rng->Uniform(64));
    };
  };
  for (int round = 0; round < 3; ++round) {
    BenchResult r = RunBohmCount(engine, maker, 200);
    EXPECT_EQ(r.commits, 200u) << "round " << round;
    EXPECT_EQ(r.latency_us.count(), 200u) << "round " << round;
  }
  EXPECT_EQ(engine.Stats().commits, 600u);
  engine.Stop();
}

TEST(SweepTest, BohmSplitCoversCases) {
  BohmConfig c1 = BohmSplit(1);
  EXPECT_EQ(c1.cc_threads, 1u);
  EXPECT_EQ(c1.exec_threads, 1u);
  BohmConfig c4 = BohmSplit(4);
  EXPECT_EQ(c4.cc_threads + c4.exec_threads, 4u);
  BohmConfig c5 = BohmSplit(5);
  EXPECT_EQ(c5.cc_threads + c5.exec_threads, 5u);
  BohmConfig c0 = BohmSplit(0);
  EXPECT_GE(c0.cc_threads, 1u);
  EXPECT_GE(c0.exec_threads, 1u);
}

TEST(SweepTest, EnvOverridesThreads) {
  ::setenv("BOHM_BENCH_THREADS", "3,9", 1);
  auto v = BenchThreads();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 9);
  ::unsetenv("BOHM_BENCH_THREADS");
}

TEST(SweepTest, ScanSizeClampedToHalfTable) {
  ::unsetenv("BOHM_BENCH_SCAN_SIZE");
  EXPECT_EQ(BenchScanSize(1'000'000), 10'000u);
  EXPECT_EQ(BenchScanSize(100), 50u);
}

TEST(ReportTest, FormatTput) {
  EXPECT_EQ(Report::FormatTput(2'500'000), "2.50M");
  EXPECT_EQ(Report::FormatTput(12'300), "12.3K");
  EXPECT_EQ(Report::FormatTput(42), "42");
}

TEST(ReportTest, PrintDoesNotCrash) {
  Report r("test table", {"threads", "tput"});
  r.AddRow({"1", "10K"});
  r.AddRow({"2", "20K"});
  r.Print();
}

TEST(ReportTest, BenchResultMath) {
  BenchResult r;
  r.seconds = 2.0;
  r.commits = 100;
  r.cc_aborts = 100;
  EXPECT_DOUBLE_EQ(r.Throughput(), 50.0);
  EXPECT_DOUBLE_EQ(r.AbortRate(), 0.5);
}

TEST(EngineFactoryTest, NamesMatch) {
  Catalog c = OneTable(4);
  EXPECT_STREQ(MakeExecutorEngine(EngineKind::k2PL, c, 1)->name(), "2PL");
  EXPECT_STREQ(MakeExecutorEngine(EngineKind::kOCC, c, 1)->name(), "OCC");
  EXPECT_STREQ(MakeExecutorEngine(EngineKind::kSI, c, 1)->name(), "SI");
  EXPECT_STREQ(MakeExecutorEngine(EngineKind::kHekaton, c, 1)->name(),
               "Hekaton");
}

}  // namespace
}  // namespace bohm
