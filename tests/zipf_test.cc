#include "common/zipf.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <vector>

namespace bohm {
namespace {

// Parameterized over theta: distribution-shape properties that must hold
// for every contention level the paper sweeps (Figure 7 uses theta 0..1).
class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, StaysInRange) {
  const double theta = GetParam();
  ZipfGenerator gen(1000, theta);
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.Next(rng), 1000u);
  }
}

TEST_P(ZipfThetaTest, Rank0IsModalForSkewed) {
  const double theta = GetParam();
  ZipfGenerator gen(1000, theta);
  Rng rng(7);
  std::map<uint64_t, int> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next(rng)];
  if (theta >= 0.5) {
    // Rank 0 must be (one of) the most frequent items.
    int max_count = 0;
    for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
    EXPECT_GE(counts[0] * 2, max_count);
  }
}

TEST_P(ZipfThetaTest, SkewIncreasesHeadMass) {
  const double theta = GetParam();
  ZipfGenerator skewed(1000, theta);
  ZipfGenerator uniform(1000, 0.0);
  Rng r1(3), r2(3);
  const int kDraws = 30000;
  int head_skewed = 0, head_uniform = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (skewed.Next(r1) < 10) ++head_skewed;
    if (uniform.Next(r2) < 10) ++head_uniform;
  }
  if (theta >= 0.5) {
    EXPECT_GT(head_skewed, head_uniform * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.99));

TEST(ZipfTest, UniformThetaIsRoughlyUniform) {
  ZipfGenerator gen(100, 0.0);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next(rng)];
  // Every item within 3x of the expected frequency.
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 100 / 3);
    EXPECT_LT(c, kDraws / 100 * 3);
  }
}

TEST(ZipfTest, ThetaNearOneClamped) {
  ZipfGenerator gen(100, 1.0);  // must not divide by zero
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.Next(rng), 100u);
}

TEST(ZipfTest, HighContentionConcentration) {
  // theta = 0.9 on 1M items: the paper's high-contention setting needs a
  // heavy head. Top-10 items should draw a large share.
  ZipfGenerator gen(1'000'000, 0.9);
  Rng rng(17);
  int head = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next(rng) < 10) ++head;
  }
  EXPECT_GT(head, kDraws / 10);  // > 10% of draws on 0.001% of keys
}

TEST(ScrambledZipfTest, ScattersHotKeys) {
  ScrambledZipf gen(1000, 0.9);
  Rng rng(23);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next(rng)];
  // Find the hottest key; it should NOT be key 0 specifically (scrambled),
  // and everything stays in range.
  uint64_t hottest = 0;
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 1000u);
    if (c > max_count) {
      max_count = c;
      hottest = k;
    }
  }
  EXPECT_NE(hottest, 0u);  // rank 0 maps elsewhere under the scramble
  EXPECT_GT(max_count, 20000 / 1000 * 5);
}

TEST(ScrambledZipfTest, DeterministicGivenSeed) {
  ScrambledZipf a(1000, 0.5), b(1000, 0.5);
  Rng r1(9), r2(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(r1), b.Next(r2));
}

// ---------------------------------------------------------------------------
// Distribution-correctness regressions: the generator must match the
// Zipf law it claims (Gray et al.), not merely stay in range. These
// caught the n < 2 eta underflow and the theta >= 1 divide-by-zero.
// ---------------------------------------------------------------------------

// Zipf with ranks 1..n: P(rank r, 0-based) = (1 / (r+1)^theta) / zeta(n).
double TheoreticalZeta(uint64_t n, double theta) {
  double z = 0.0;
  for (uint64_t i = 1; i <= n; ++i) z += 1.0 / std::pow(i, theta);
  return z;
}

TEST(ZipfTest, EmpiricalCdfMatchesTheoryAtHighSkew) {
  constexpr uint64_t kN = 100;
  constexpr double kTheta = 0.99;
  constexpr int kDraws = 200000;
  ZipfGenerator gen(kN, kTheta);
  Rng rng(31);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next(rng)];

  const double zetan = TheoreticalZeta(kN, kTheta);
  double cdf_theory = 0.0, cdf_emp = 0.0;
  for (uint64_t r = 0; r < kN; ++r) {
    cdf_theory += 1.0 / std::pow(static_cast<double>(r + 1), kTheta) / zetan;
    cdf_emp += static_cast<double>(counts[r]) / kDraws;
    // The empirical CDF is monotone by construction; the regression is it
    // tracking the *theoretical* CDF at every rank, which pins down both
    // the head (eta/alpha branch math) and the tail.
    EXPECT_NEAR(cdf_emp, cdf_theory, 0.02) << "rank " << r;
  }
}

TEST(ZipfTest, Rank0FrequencyMatchesTheory) {
  // P(rank 0) = 1 / zeta(n) exactly; the old eta formula got the head
  // wrong for tiny n and theta near 1.
  for (uint64_t n : {2ull, 10ull, 1000ull}) {
    ZipfGenerator gen(n, 0.99);
    Rng rng(59);
    constexpr int kDraws = 100000;
    int head = 0;
    for (int i = 0; i < kDraws; ++i) head += gen.Next(rng) == 0 ? 1 : 0;
    const double want = 1.0 / TheoreticalZeta(n, 0.99);
    EXPECT_NEAR(static_cast<double>(head) / kDraws, want, 0.01) << "n=" << n;
  }
}

TEST(ZipfTest, SingleItemAlwaysDrawsZero) {
  // n = 1 used to evaluate 0/0 inside eta. Must return the only rank for
  // every theta, including the clamped >= 1 region.
  for (double theta : {0.0, 0.5, 0.99, 1.0, 2.0}) {
    ZipfGenerator gen(1, theta);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(gen.Next(rng), 0u) << theta;
  }
}

TEST(ZipfTest, ZeroItemsTreatedAsOne) {
  ZipfGenerator gen(0, 0.9);  // degenerate config: clamp, don't UB
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.Next(rng), 0u);
}

TEST(ZipfTest, TwoItemsBothReachableWithCorrectRatio) {
  ZipfGenerator gen(2, 0.99);
  Rng rng(13);
  constexpr int kDraws = 100000;
  int zeros = 0;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = gen.Next(rng);
    ASSERT_LT(v, 2u);
    zeros += v == 0 ? 1 : 0;
  }
  // P(0) = 1 / (1 + 2^-0.99) ~= 0.665. The pre-fix generator pinned
  // n = 2 to rank 0 with probability ~1.
  const double want = 1.0 / (1.0 + std::pow(2.0, -0.99));
  EXPECT_NEAR(static_cast<double>(zeros) / kDraws, want, 0.01);
  EXPECT_GT(kDraws - zeros, 0);
}

TEST(ZipfTest, ThetaAboveOneClampedAndSkewed) {
  ZipfGenerator gen(1000, 1.5);  // clamped to 0.9999, not NaN/hang
  Rng rng(37);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = gen.Next(rng);
    ASSERT_LT(v, 1000u);
    head += v < 10 ? 1 : 0;
  }
  EXPECT_GT(head, 3000);  // still strongly skewed after the clamp
}

TEST(ZipfTest, CachedZetanGivesIdenticalStreams) {
  // Second construction with the same (n, theta) hits the memo cache; the
  // draws must be bit-identical to the cold-path generator's.
  ZipfGenerator cold(50'000, 0.83);
  ZipfGenerator cached(50'000, 0.83);
  Rng r1(71), r2(71);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(cold.Next(r1), cached.Next(r2));
}

TEST(ZipfTest, CachedZetanAmortizesConstruction) {
  // The harness builds one generator per bench thread over the same
  // (record_count, theta); before the cache each construction re-walked
  // the full O(n) zeta sum. Cold once, then 32 cached constructions must
  // cost less wall-clock than the single cold one (they are ~O(1) lookups
  // vs a 20M-term sum, so this holds with orders of magnitude to spare).
  constexpr uint64_t kN = 20'000'000;
  constexpr double kTheta = 0.731;  // unique to this test => first is cold
  const auto t0 = std::chrono::steady_clock::now();
  ZipfGenerator cold(kN, kTheta);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 32; ++i) ZipfGenerator warm(kN, kTheta);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_LT(t2 - t1, t1 - t0);
}

TEST(ScrambledZipfTest, StaysInRangeAcrossSizes) {
  for (uint64_t n : {1ull, 2ull, 3ull, 1000ull}) {
    ScrambledZipf gen(n, 0.99);
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) EXPECT_LT(gen.Next(rng), n) << "n=" << n;
  }
}

}  // namespace
}  // namespace bohm
