#include "common/zipf.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace bohm {
namespace {

// Parameterized over theta: distribution-shape properties that must hold
// for every contention level the paper sweeps (Figure 7 uses theta 0..1).
class ZipfThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaTest, StaysInRange) {
  const double theta = GetParam();
  ZipfGenerator gen(1000, theta);
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(gen.Next(rng), 1000u);
  }
}

TEST_P(ZipfThetaTest, Rank0IsModalForSkewed) {
  const double theta = GetParam();
  ZipfGenerator gen(1000, theta);
  Rng rng(7);
  std::map<uint64_t, int> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next(rng)];
  if (theta >= 0.5) {
    // Rank 0 must be (one of) the most frequent items.
    int max_count = 0;
    for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
    EXPECT_GE(counts[0] * 2, max_count);
  }
}

TEST_P(ZipfThetaTest, SkewIncreasesHeadMass) {
  const double theta = GetParam();
  ZipfGenerator skewed(1000, theta);
  ZipfGenerator uniform(1000, 0.0);
  Rng r1(3), r2(3);
  const int kDraws = 30000;
  int head_skewed = 0, head_uniform = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (skewed.Next(r1) < 10) ++head_skewed;
    if (uniform.Next(r2) < 10) ++head_uniform;
  }
  if (theta >= 0.5) {
    EXPECT_GT(head_skewed, head_uniform * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 0.99));

TEST(ZipfTest, UniformThetaIsRoughlyUniform) {
  ZipfGenerator gen(100, 0.0);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next(rng)];
  // Every item within 3x of the expected frequency.
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 100 / 3);
    EXPECT_LT(c, kDraws / 100 * 3);
  }
}

TEST(ZipfTest, ThetaNearOneClamped) {
  ZipfGenerator gen(100, 1.0);  // must not divide by zero
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.Next(rng), 100u);
}

TEST(ZipfTest, HighContentionConcentration) {
  // theta = 0.9 on 1M items: the paper's high-contention setting needs a
  // heavy head. Top-10 items should draw a large share.
  ZipfGenerator gen(1'000'000, 0.9);
  Rng rng(17);
  int head = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next(rng) < 10) ++head;
  }
  EXPECT_GT(head, kDraws / 10);  // > 10% of draws on 0.001% of keys
}

TEST(ScrambledZipfTest, ScattersHotKeys) {
  ScrambledZipf gen(1000, 0.9);
  Rng rng(23);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.Next(rng)];
  // Find the hottest key; it should NOT be key 0 specifically (scrambled),
  // and everything stays in range.
  uint64_t hottest = 0;
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 1000u);
    if (c > max_count) {
      max_count = c;
      hottest = k;
    }
  }
  EXPECT_NE(hottest, 0u);  // rank 0 maps elsewhere under the scramble
  EXPECT_GT(max_count, 20000 / 1000 * 5);
}

TEST(ScrambledZipfTest, DeterministicGivenSeed) {
  ScrambledZipf a(1000, 0.5), b(1000, 0.5);
  Rng r1(9), r2(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(r1), b.Next(r2));
}

}  // namespace
}  // namespace bohm
