// Delete (tombstone) semantics in the Bohm engine: the paper's version
// machinery supports inserts and deletes through begin/end timestamps and
// tombstones (the correctness argument in Section 3.3.3 explicitly covers
// them).
#include <gtest/gtest.h>

#include "bohm/engine.h"
#include "harness/engines.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

/// Deletes one record.
class DeleteProcedure final : public StoredProcedure {
 public:
  DeleteProcedure(TableId table, Key key, bool* supported = nullptr)
      : table_(table), key_(key), supported_(supported) {
    set_.AddWrite(table, key);
  }
  void Run(TxnOps& ops) override {
    bool ok = ops.Delete(table_, key_);
    if (supported_ != nullptr) *supported_ = ok;
  }

 private:
  TableId table_;
  Key key_;
  bool* supported_;
};

/// Deletes then aborts: the record must survive.
class AbortedDelete final : public StoredProcedure {
 public:
  AbortedDelete(TableId table, Key key) : table_(table), key_(key) {
    set_.AddWrite(table, key);
  }
  void Run(TxnOps& ops) override {
    (void)ops.Delete(table_, key_);
    ops.Abort();
  }

 private:
  TableId table_;
  Key key_;
};

std::unique_ptr<BohmEngine> MakeEngine(uint64_t keys, uint64_t initial) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 8;
  auto engine = std::make_unique<BohmEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  EXPECT_TRUE(engine->Start().ok());
  return engine;
}

TEST(BohmDeleteTest, DeletedRecordBecomesAbsent) {
  auto engine = MakeEngine(4, 77);
  bool supported = false;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<DeleteProcedure>(0, 1, &supported))
          .ok());
  EXPECT_TRUE(supported);
  uint64_t out = 0;
  bool found = true;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 1, &out, &found))
          .ok());
  EXPECT_FALSE(found);
  // Other records untouched.
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 77u);
  engine->Stop();
}

TEST(BohmDeleteTest, ReadBeforeDeleteStillSeesValue) {
  // reader(ts) < delete(ts'): the reader must see the pre-delete value
  // even though the delete is processed in the same pipeline.
  auto engine = MakeEngine(4, 55);
  uint64_t out = 0;
  bool found = false;
  auto probe = std::make_unique<GetProcedure>(0, 0, &out, &found);
  ASSERT_TRUE(engine->SubmitBorrowed(probe.get()).ok());
  ASSERT_TRUE(engine->Submit(std::make_unique<DeleteProcedure>(0, 0)).ok());
  engine->WaitForIdle();
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 55u);
  // And after the delete, it is gone.
  uint64_t out2 = 0;
  bool found2 = true;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 0, &out2, &found2))
          .ok());
  EXPECT_FALSE(found2);
  engine->Stop();
}

TEST(BohmDeleteTest, ReinsertAfterDelete) {
  auto engine = MakeEngine(4, 10);
  ASSERT_TRUE(engine->Submit(std::make_unique<DeleteProcedure>(0, 3)).ok());
  ASSERT_TRUE(engine->Submit(std::make_unique<PutProcedure>(0, 3, 99)).ok());
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 3, &out).ok());
  EXPECT_EQ(out, 99u);
  engine->Stop();
}

TEST(BohmDeleteTest, IncrementAfterDeleteStartsFromZero) {
  // IncrementProcedure treats an absent record as 0.
  auto engine = MakeEngine(4, 500);
  ASSERT_TRUE(engine->Submit(std::make_unique<DeleteProcedure>(0, 2)).ok());
  ASSERT_TRUE(
      engine->Submit(std::make_unique<IncrementProcedure>(0, 2, 7)).ok());
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 7u);
  engine->Stop();
}

TEST(BohmDeleteTest, AbortedDeleteKeepsRecord) {
  auto engine = MakeEngine(4, 33);
  ASSERT_TRUE(engine->RunSync(std::make_unique<AbortedDelete>(0, 1)).ok());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 1, &out).ok());
  EXPECT_EQ(out, 33u);
  engine->Stop();
}

TEST(BohmDeleteTest, DeleteAbsentRecordIsNoop) {
  auto engine = MakeEngine(2, 1);
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<DeleteProcedure>(0, 999)).ok());
  uint64_t out = 0;
  bool found = true;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 999, &out, &found))
          .ok());
  EXPECT_FALSE(found);
  engine->Stop();
}

TEST(BohmDeleteTest, DeleteChurnWithGc) {
  // Repeated delete/insert cycles on one key stress tombstone versions
  // flowing through Condition-3 GC.
  auto engine = MakeEngine(2, 0);
  for (int round = 0; round < 300; ++round) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<PutProcedure>(0, 0, round)).ok());
    ASSERT_TRUE(
        engine->Submit(std::make_unique<DeleteProcedure>(0, 0)).ok());
  }
  ASSERT_TRUE(engine->Submit(std::make_unique<PutProcedure>(0, 0, 4242)).ok());
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 4242u);
  EXPECT_GT(engine->gc_freed_versions(), 100u);
  engine->Stop();
}

TEST(BohmDeleteTest, ExecutorEnginesReportUnsupported) {
  // The single-version baselines decline deletes (fixed pre-loaded
  // storage, as in the paper's workloads).
  for (auto kind : {EngineKind::k2PL, EngineKind::kOCC, EngineKind::kSI,
                    EngineKind::kHekaton}) {
    auto engine = MakeExecutorEngine(kind, OneTable(2), 1);
    uint64_t v = 1;
    ASSERT_TRUE(engine->Load(0, 0, &v).ok());
    bool supported = true;
    DeleteProcedure proc(0, 0, &supported);
    ASSERT_TRUE(engine->Execute(proc, 0).ok());
    EXPECT_FALSE(supported) << EngineKindName(kind);
  }
}

}  // namespace
}  // namespace bohm
