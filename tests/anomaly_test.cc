// Isolation-anomaly tests, directly mirroring Section 2's discussion:
// write skew (two transactions with overlapping read sets and disjoint
// write sets drawn from the shared read set) must be PERMITTED by Snapshot
// Isolation and PREVENTED by every serializable engine (Bohm, Hekaton,
// OCC, 2PL).
//
// Setup (Figure 1's shape): records A = B = 1.
//   T1: B := A * 10      T2: A := B * 100
// Serial outcomes: (A,B) = (1000, 10) or (100, 1000).
// The non-serializable snapshot outcome: (100, 10).
#include <gtest/gtest.h>

#include <thread>

#include "bohm/engine.h"
#include "harness/engines.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;
using testutil::Rendezvous;
using testutil::RendezvousMulWrite;

struct Outcome {
  uint64_t a;
  uint64_t b;
  bool overlapped;
};

/// Runs the write-skew pair with a mid-transaction rendezvous on an
/// executor engine; returns the final state.
Outcome RunWriteSkew(ExecutorEngine& engine) {
  Rendezvous rv(2);
  RendezvousMulWrite t1(0, /*src=*/0, /*dst=*/1, 10, &rv);
  RendezvousMulWrite t2(0, /*src=*/1, /*dst=*/0, 100, &rv);
  std::thread th1([&] { ASSERT_TRUE(engine.Execute(t1, 0).ok()); });
  std::thread th2([&] { ASSERT_TRUE(engine.Execute(t2, 1).ok()); });
  th1.join();
  th2.join();
  Outcome out{};
  uint64_t a = 0, b = 0;
  // All executor engines expose ReadLatest via concrete type; use a probe
  // transaction instead to stay interface-generic.
  bool found = false;
  GetProcedure ga(0, 0, &a, &found);
  GetProcedure gb(0, 1, &b, &found);
  EXPECT_TRUE(engine.Execute(ga, 0).ok());
  EXPECT_TRUE(engine.Execute(gb, 0).ok());
  out.a = a;
  out.b = b;
  out.overlapped = rv.Overlapped();
  return out;
}

std::unique_ptr<ExecutorEngine> MakeLoaded(EngineKind kind) {
  auto engine = MakeExecutorEngine(kind, OneTable(2), 2);
  uint64_t one = 1;
  EXPECT_TRUE(engine->Load(0, 0, &one).ok());
  EXPECT_TRUE(engine->Load(0, 1, &one).ok());
  return engine;
}

bool IsSerialOutcome(const Outcome& o) {
  return (o.a == 1000 && o.b == 10) || (o.a == 100 && o.b == 1000);
}

TEST(AnomalyTest, SnapshotIsolationPermitsWriteSkew) {
  auto engine = MakeLoaded(EngineKind::kSI);
  Outcome o = RunWriteSkew(*engine);
  ASSERT_TRUE(o.overlapped) << "transactions failed to overlap";
  // Both read the initial snapshot and committed (disjoint write sets →
  // no ww conflict): the classic non-serializable result.
  EXPECT_EQ(o.a, 100u);
  EXPECT_EQ(o.b, 10u);
  EXPECT_FALSE(IsSerialOutcome(o));
}

TEST(AnomalyTest, HekatonPreventsWriteSkew) {
  auto engine = MakeLoaded(EngineKind::kHekaton);
  Outcome o = RunWriteSkew(*engine);
  ASSERT_TRUE(o.overlapped);
  EXPECT_TRUE(IsSerialOutcome(o)) << "a=" << o.a << " b=" << o.b;
  // Read validation must have aborted at least one attempt.
  EXPECT_GE(engine->Stats().cc_aborts, 1u);
}

TEST(AnomalyTest, SiloPreventsWriteSkew) {
  auto engine = MakeLoaded(EngineKind::kOCC);
  Outcome o = RunWriteSkew(*engine);
  ASSERT_TRUE(o.overlapped);
  EXPECT_TRUE(IsSerialOutcome(o)) << "a=" << o.a << " b=" << o.b;
}

TEST(AnomalyTest, TwoPLPreventsWriteSkew) {
  // 2PL cannot even overlap the transactions (the shared read locks
  // conflict with the writes), so the rendezvous times out — that IS the
  // blocking behaviour the paper contrasts with multiversioning.
  auto engine = MakeLoaded(EngineKind::k2PL);
  Outcome o = RunWriteSkew(*engine);
  EXPECT_TRUE(IsSerialOutcome(o)) << "a=" << o.a << " b=" << o.b;
}

TEST(AnomalyTest, BohmPreventsWriteSkew) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  BohmEngine engine(OneTable(2), cfg);
  uint64_t one = 1;
  ASSERT_TRUE(engine.Load(0, 0, &one).ok());
  ASSERT_TRUE(engine.Load(0, 1, &one).ok());
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.Submit(testutil::MakeMulWrite(0, 0, 1, 10)).ok());
  ASSERT_TRUE(engine.Submit(testutil::MakeMulWrite(0, 1, 0, 100)).ok());
  engine.WaitForIdle();
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(engine.ReadLatest(0, 0, &a).ok());
  ASSERT_TRUE(engine.ReadLatest(0, 1, &b).ok());
  // Timestamp order is the serial order: T1 then T2.
  EXPECT_EQ(b, 10u);
  EXPECT_EQ(a, 1000u);
  // And with zero concurrency-control aborts — Bohm is pessimistic.
  EXPECT_EQ(engine.Stats().cc_aborts, 0u);
  engine.Stop();
}

TEST(AnomalyTest, SnapshotIsolationReadOnlySnapshotIsConsistent) {
  // SI's guarantee that *is* kept: reads come from one snapshot. A reader
  // overlapping a transfer sees either the before or the after state,
  // never a mix.
  auto engine = MakeLoaded(EngineKind::kSI);
  // Drive many transfer+read rounds; the pair sum must stay 2.
  for (int i = 0; i < 100; ++i) {
    testutil::TransferProcedure xfer(0, i % 2, (i + 1) % 2, 1);
    ASSERT_TRUE(engine->Execute(xfer, 0).ok());
    testutil::ReadPairProcedure reader(0, 0, 1);
    ASSERT_TRUE(engine->Execute(reader, 1).ok());
    EXPECT_EQ(reader.sum(), 2u);
  }
}

}  // namespace
}  // namespace bohm
