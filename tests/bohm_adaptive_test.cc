// Proof suite for adaptive CC repartitioning (src/bohm/repartition.h).
//
// Four properties, per the design:
//  (a) serial equivalence under constant migration — with force_rotate
//      moving *every* partition to a new owner at every batch, the
//      pipeline still produces exactly the golden/serial-reference state
//      across seeded YCSB and SmallBank mixes at pipeline depths 1/2/8;
//  (b) the promotion gate is honoured — a pending migration must not take
//      effect while a source CC thread has unfinished batches sealed
//      under the old map (frozen via test hook, the map epoch stays put);
//  (c) the machinery actually runs when it should — skewed traffic
//      triggers migrations, and GC routes foreign retirees back to their
//      allocating thread (freed counters move, state stays right);
//  (d) configuration edges are rejected up front — Start() refuses an
//      interest mask wider than 64 bits and a partition count below the
//      CC thread count, instead of shifting out of range at runtime.
//
// All waits yield, so the suite is deterministic on a single-core host: a
// frozen thread blocks inside its hook while everyone else progresses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "common/zipf.h"
#include "harness/engines.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// One-shot gate a hook can block on (yielding) until the test opens it.
class Gate {
 public:
  void Open() { open_.store(true, std::memory_order_release); }
  void Wait() {
    while (!open_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<bool> open_{false};
};

/// force_rotate at every batch: the harshest migration schedule the
/// controller supports — every partition changes owner between every pair
/// of consecutive batches (gated on the old owners' watermarks).
AdaptiveCcConfig RotateEveryBatch(uint32_t partitions) {
  AdaptiveCcConfig a;
  a.enabled = true;
  a.partitions = partitions;
  a.interval_batches = 1;
  a.force_rotate = true;
  return a;
}

// ---------------------------------------------------------------------------
// (a) Serial equivalence with migration forced every batch, YCSB mix.
// ---------------------------------------------------------------------------

class AdaptiveYcsbEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(AdaptiveYcsbEquivalence, MatchesGoldenReplayUnderConstantMigration) {
  const auto [depth, seed] = GetParam();
  constexpr uint64_t kRecords = 48;
  constexpr uint32_t kRecordSize = 16;
  constexpr int kTxns = 600;

  YcsbConfig ycsb;
  ycsb.record_count = kRecords;
  ycsb.record_size = kRecordSize;
  ycsb.theta = 0.9;

  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 2;
  cfg.batch_size = 7;
  cfg.pipeline_depth = depth;
  cfg.adaptive = RotateEveryBatch(/*partitions=*/24);
  BohmEngine engine(YcsbCatalog(ycsb), cfg);
  ASSERT_EQ(engine.partition_count(), 24u);
  ASSERT_TRUE(YcsbLoad(ycsb, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());

  std::vector<uint64_t> golden(kRecords, 0);
  Rng rng(seed);
  ScrambledZipf zipf(kRecords, ycsb.theta);
  for (int i = 0; i < kTxns; ++i) {
    std::vector<Key> keys;
    while (keys.size() < 4) {
      Key k = zipf.Next(rng);
      bool dup = false;
      for (Key seen : keys) dup = dup || seen == k;
      if (!dup) keys.push_back(k);
    }
    for (Key k : keys) ++golden[k];
    ASSERT_TRUE(
        engine.Submit(std::make_unique<YcsbRmwProcedure>(keys, kRecordSize))
            .ok());
  }
  engine.WaitForIdle();

  std::vector<char> rec(kRecordSize);
  for (Key k = 0; k < kRecords; ++k) {
    ASSERT_TRUE(engine.ReadLatest(kYcsbTableId, k, rec.data()).ok());
    uint64_t counter = 0;
    std::memcpy(&counter, rec.data(), sizeof(counter));
    EXPECT_EQ(counter, golden[k]) << "depth " << depth << " key " << k;
  }
  EXPECT_EQ(engine.Stats().commits, static_cast<uint64_t>(kTxns));
  // ~86 batches, each rotating all 24 partitions: the machinery really ran.
  EXPECT_GT(engine.cc_migrations(), 0u);
  EXPECT_GT(engine.partition_map_epoch(), 0u);
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndSeeds, AdaptiveYcsbEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(7u, 21u)),
    [](const auto& param_info) {
      return "depth" + std::to_string(std::get<0>(param_info.param)) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// (a) Serial equivalence with migration forced every batch, SmallBank,
// against a serial reference engine fed the identical seeded stream.
// ---------------------------------------------------------------------------

class AdaptiveSmallBankEquivalence : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(AdaptiveSmallBankEquivalence, MatchesSerialReference) {
  const uint32_t depth = GetParam();
  constexpr uint64_t kSeed = 99;
  constexpr int kTxns = 500;
  SmallBankConfig sb;
  sb.customers = 24;
  sb.spin_us = 0;

  std::map<std::pair<TableId, Key>, uint64_t> reference;
  {
    auto ref = MakeExecutorEngine(EngineKind::k2PL, SmallBankCatalog(sb), 1);
    ASSERT_TRUE(SmallBankLoad(sb, [&](TableId t, Key k, const void* p) {
                  return ref->Load(t, k, p);
                }).ok());
    SmallBankGenerator gen(sb, kSeed);
    for (int i = 0; i < kTxns; ++i) {
      ProcedurePtr p = gen.Make();
      Status s = ref->Execute(*p, 0);
      ASSERT_TRUE(s.ok() || s.IsAborted());
    }
    for (TableId t : {kSbCustomerTable, kSbSavingsTable, kSbCheckingTable}) {
      for (Key c = 0; c < sb.customers; ++c) {
        uint64_t v = 0;
        bool found = false;
        GetProcedure get(t, c, &v, &found);
        ASSERT_TRUE(ref->Execute(get, 0).ok());
        ASSERT_TRUE(found);
        reference[{t, c}] = v;
      }
    }
  }

  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 9;
  cfg.pipeline_depth = depth;
  cfg.adaptive = RotateEveryBatch(/*partitions=*/16);
  BohmEngine engine(SmallBankCatalog(sb), cfg);
  ASSERT_TRUE(SmallBankLoad(sb, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());
  SmallBankGenerator gen(sb, kSeed);
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(engine.Submit(gen.Make()).ok());
  }
  engine.WaitForIdle();

  for (const auto& [rec, want] : reference) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(rec.first, rec.second, &v).ok());
    EXPECT_EQ(v, want) << "depth " << depth << " table " << rec.first
                       << " customer " << rec.second;
  }
  EXPECT_GT(engine.cc_migrations(), 0u);
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Depths, AdaptiveSmallBankEquivalence,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& param_info) {
                           return "depth" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// (b) The promotion gate: a pending migration must not take effect while
// a source thread still has batches sealed under the old map in flight.
// ---------------------------------------------------------------------------

TEST(AdaptiveGateTest, EpochFrozenWhileSourceThreadInsideOldMapBatch) {
  // Freeze CC thread 0 before it finishes ANY batch: its watermark stays
  // at -1, so the promotion gate (all sources' watermarks >= id - 1) is
  // provably closed for every sealed batch id >= 1 — including batch 1,
  // where the rotation pending map is first staged. Freezing at a later
  // batch would race the sequencer: the gate could legitimately open
  // before the freeze lands.
  constexpr int64_t kFreezeBatch = 0;
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 1;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 4;
  cfg.input_queue_capacity = 1024;
  cfg.adaptive = RotateEveryBatch(/*partitions=*/8);
  BohmEngine engine(OneTable(16), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 16; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  Gate release;
  std::atomic<bool> frozen{false};
  auto hooks = std::make_shared<BohmTestHooks>();
  hooks->cc_batch_start = [&](uint32_t cc_id, int64_t b) {
    if (cc_id == 0 && b == kFreezeBatch) {
      frozen.store(true, std::memory_order_release);
      release.Wait();  // thread 0's watermark is now stuck at 0
    }
  };
  engine.set_test_hooks(hooks);
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.partition_map_epoch(), 0u);

  constexpr int kTxns = 120;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 16)).ok());
  }

  ASSERT_TRUE(WaitUntil([&] { return frozen.load(); })) << "never froze";
  // Rotation makes every thread a migration source, so the pending map
  // cannot promote while thread 0 sits inside batch 0 with its watermark
  // at -1: every sealed batch id >= 1 needs thread 0's watermark at
  // id - 1 >= 0. Give the sequencer time to (incorrectly) promote anyway.
  ASSERT_TRUE(WaitUntil([&] { return engine.last_sealed_batch() >= 2; }))
      << "sequencer never ran ahead of the frozen thread";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(engine.partition_map_epoch(), 0u)
      << "migration promoted while a source thread had old-map batches in "
         "flight";
  EXPECT_EQ(engine.cc_migrations(), 0u);

  release.Open();
  engine.WaitForIdle();
  // With the source released the gate opens on the next sealed batch.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 16)).ok());
  }
  engine.WaitForIdle();
  EXPECT_GT(engine.partition_map_epoch(), 0u);
  EXPECT_GT(engine.cc_migrations(), 0u);

  uint64_t total = 0;
  for (Key k = 0; k < 16; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns + 20));
  engine.Stop();
}

// ---------------------------------------------------------------------------
// (c) Skewed traffic triggers migrations without any force knob.
// ---------------------------------------------------------------------------

TEST(AdaptiveSkewTest, SkewedTrafficMigratesPartitions) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 1;
  cfg.batch_size = 8;
  cfg.pipeline_depth = 4;
  cfg.input_queue_capacity = 4096;
  cfg.adaptive.enabled = true;
  cfg.adaptive.partitions = 64;
  cfg.adaptive.interval_batches = 1;
  cfg.adaptive.max_imbalance = 1.05;
  BohmEngine engine(OneTable(256), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 256; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  // All traffic goes to keys whose partitions thread 0 owns initially
  // (owners[p] = p % 2, so even partitions). Several distinct partitions,
  // so the greedy rebalancer always has a movable one.
  const BohmTable* table = engine.db().table(0);
  std::vector<Key> hot;
  for (Key k = 0; k < 256 && hot.size() < 12; ++k) {
    if (table->PartitionOf(k) % 2 == 0) hot.push_back(k);
  }
  ASSERT_GE(hot.size(), 4u);

  ASSERT_TRUE(engine.Start().ok());
  for (int round = 0; round < 40 && engine.cc_migrations() == 0; ++round) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(engine
                      .Submit(std::make_unique<IncrementProcedure>(
                          0, hot[static_cast<size_t>(i) % hot.size()]))
                      .ok());
    }
    engine.WaitForIdle();
  }
  EXPECT_GT(engine.cc_migrations(), 0u)
      << "one-sided traffic never triggered a migration";
  EXPECT_GT(engine.partition_map_epoch(), 0u);
  engine.Stop();
}

// ---------------------------------------------------------------------------
// (c) GC routes retirees freed by a foreign thread back to the allocating
// thread (allocator stamp + handback ring), with migrations churning.
// ---------------------------------------------------------------------------

TEST(AdaptiveGcTest, ForeignRetireesReturnToAllocatorAndStateStaysRight) {
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 2;
  cfg.batch_size = 8;
  cfg.pipeline_depth = 2;  // tight ring: GC must run to reuse slots
  cfg.gc_enabled = true;
  cfg.input_queue_capacity = 4096;
  cfg.adaptive = RotateEveryBatch(/*partitions=*/12);
  BohmEngine engine(OneTable(8), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 8; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  // Hammer 8 keys: every overwrite retires the predecessor version, and
  // with ownership rotating every batch the retiring thread is usually
  // not the allocator — the handback path runs constantly.
  constexpr int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 8)).ok());
  }
  engine.WaitForIdle();

  EXPECT_GT(engine.cc_migrations(), 0u);
  EXPECT_GT(engine.gc_freed_versions(), 0u)
      << "GC never freed anything despite constant overwrites";
  uint64_t total = 0;
  for (Key k = 0; k < 8; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

// ---------------------------------------------------------------------------
// (d) Start() validation: mask width and partition floor.
// ---------------------------------------------------------------------------

TEST(AdaptiveConfigTest, StartRejectsInterestMaskWiderThan64Threads) {
  BohmConfig cfg;
  cfg.cc_threads = 65;  // 1ull << 64 would be undefined
  cfg.exec_threads = 1;
  ASSERT_TRUE(cfg.interest_preprocessing);
  BohmEngine engine(OneTable(8), cfg);
  Status s = engine.Start();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The rejected engine never started; Submit refuses and Stop is clean.
  EXPECT_FALSE(
      engine.Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  engine.Stop();
}

TEST(AdaptiveConfigTest, Above64ThreadsRunsWithPreprocessingOff) {
  BohmConfig cfg;
  cfg.cc_threads = 65;
  cfg.exec_threads = 1;
  cfg.batch_size = 4;
  cfg.interest_preprocessing = false;  // the documented escape hatch
  BohmEngine engine(OneTable(8), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 8; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  constexpr int kTxns = 40;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 8)).ok());
  }
  engine.WaitForIdle();
  uint64_t total = 0;
  for (Key k = 0; k < 8; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

TEST(AdaptiveConfigTest, StartRejectsFewerPartitionsThanCcThreads) {
  BohmConfig cfg;
  cfg.cc_threads = 4;
  cfg.exec_threads = 1;
  cfg.adaptive.enabled = true;
  cfg.adaptive.partitions = 2;
  BohmEngine engine(OneTable(8), cfg);
  EXPECT_TRUE(engine.Start().IsInvalidArgument());
  engine.Stop();
}

TEST(AdaptiveConfigTest, AdaptiveOffKeepsStaticAssignmentObservables) {
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 1;
  BohmEngine engine(OneTable(16), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 16; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  // Off: one physical partition per CC thread, identity map forever.
  EXPECT_EQ(engine.partition_count(), cfg.cc_threads);
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 16)).ok());
  }
  engine.WaitForIdle();
  EXPECT_EQ(engine.cc_migrations(), 0u);
  EXPECT_EQ(engine.partition_map_epoch(), 0u);
  EXPECT_EQ(engine.cc_imbalance_x1000(), 1000u);
  engine.Stop();
}

// ---------------------------------------------------------------------------
// TSan litmus for rule R7: a rotating owner's version-chain head stores
// must be visible to the next owner through the watermark-gate/feed-push
// chain. Run under the tsan preset (and 50x seeded in CI tsan-stress);
// a missing release/acquire on the handoff shows up as a data race on the
// index chain heads or the version payloads.
// ---------------------------------------------------------------------------

TEST(AdaptiveHandoffTest, RotatingOwnershipPublishesHeadStores) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 4;
  cfg.input_queue_capacity = 4096;
  cfg.adaptive = RotateEveryBatch(/*partitions=*/8);
  BohmEngine engine(OneTable(4), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 4; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  // 4 keys, every transaction touches one: consecutive batches write the
  // same chains from alternating owner threads.
  constexpr int kTxns = 1000;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 4)).ok());
  }
  engine.WaitForIdle();

  uint64_t total = 0;
  for (Key k = 0; k < 4; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  EXPECT_GT(engine.cc_migrations(), 0u);
  engine.Stop();
}

}  // namespace
}  // namespace bohm
