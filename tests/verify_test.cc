// Tests for the serialization-graph oracle, plus the end-to-end property
// the whole repository exists for: the dependency graph of a Bohm
// execution — extracted exactly from its version chains — is acyclic, and
// its edges all agree with timestamp order (the invariant of Section
// 3.3.3). Also demonstrates, from a trace, the SI write-skew cycle the
// paper's Figure 1 draws.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "bohm/engine.h"
#include "bohm/table.h"
#include "common/rand.h"
#include "test_util.h"
#include "verify/trace.h"

namespace bohm {
namespace {

using testutil::OneTable;

// ---------- SerializationGraph unit tests ----------

TEST(SerGraphTest, EmptyIsAcyclic) {
  SerializationGraph g;
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.FindCycle().empty());
  EXPECT_TRUE(g.SerialOrder().empty());
}

TEST(SerGraphTest, ChainIsAcyclic) {
  SerializationGraph g;
  g.AddDep(1, 2, DepKind::kWw);
  g.AddDep(2, 3, DepKind::kWr);
  g.AddDep(3, 4, DepKind::kRw);
  EXPECT_FALSE(g.HasCycle());
  auto order = g.SerialOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order.back(), 4u);
}

TEST(SerGraphTest, TwoNodeCycleDetected) {
  SerializationGraph g;
  g.AddDep(1, 2, DepKind::kRw);
  g.AddDep(2, 1, DepKind::kRw);
  EXPECT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_TRUE(g.SerialOrder().empty());
}

TEST(SerGraphTest, LongCycleDetected) {
  SerializationGraph g;
  for (uint64_t i = 0; i < 100; ++i) {
    g.AddDep(i, (i + 1) % 100, DepKind::kWw);
  }
  EXPECT_TRUE(g.HasCycle());
  EXPECT_EQ(g.FindCycle().size(), 101u);
}

TEST(SerGraphTest, SelfEdgeIgnored) {
  SerializationGraph g;
  g.AddDep(5, 5, DepKind::kRw);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(SerGraphTest, DiamondIsAcyclic) {
  SerializationGraph g;
  g.AddDep(1, 2, DepKind::kWr);
  g.AddDep(1, 3, DepKind::kWr);
  g.AddDep(2, 4, DepKind::kRw);
  g.AddDep(3, 4, DepKind::kRw);
  EXPECT_FALSE(g.HasCycle());
  auto order = g.SerialOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order.back(), 4u);
}

TEST(SerGraphTest, ToStringNamesEdges) {
  SerializationGraph g;
  g.AddDep(1, 2, DepKind::kRw);
  EXPECT_NE(g.ToString().find("T1 -rw-> T2"), std::string::npos);
}

// ---------- Trace-to-graph construction ----------

TEST(TraceGraphTest, WriteSkewCycleFromTrace) {
  // The paper's Figure 1: T1 reads x, writes y; T2 reads y, writes x —
  // both reading the initial versions (an SI interleaving). The graph
  // must contain the rw/rw cycle.
  TraceTxn t1{1, {{RecordId{0, 0}, 100}}, {{RecordId{0, 1}, 11}}};
  TraceTxn t2{2, {{RecordId{0, 1}, 200}}, {{RecordId{0, 0}, 22}}};
  // Values 100/200 are the initial versions (unwritten by any txn).
  std::unordered_map<RecordId, KeyHistory> hist;
  hist[RecordId{0, 0}] = KeyHistory{{2}};
  hist[RecordId{0, 1}] = KeyHistory{{1}};
  SerializationGraph g = BuildSerializationGraph({t1, t2}, hist);
  EXPECT_TRUE(g.HasCycle()) << g.ToString();
}

TEST(TraceGraphTest, SerialExecutionIsAcyclic) {
  // T1 writes x=11; T2 reads x=11 and writes x=22 (serial order 1 -> 2).
  TraceTxn t1{1, {}, {{RecordId{0, 0}, 11}}};
  TraceTxn t2{2, {{RecordId{0, 0}, 11}}, {{RecordId{0, 0}, 22}}};
  std::unordered_map<RecordId, KeyHistory> hist;
  hist[RecordId{0, 0}] = KeyHistory{{1, 2}};
  SerializationGraph g = BuildSerializationGraph({t1, t2}, hist);
  EXPECT_FALSE(g.HasCycle()) << g.ToString();
  auto order = g.SerialOrder();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
}

TEST(TraceGraphTest, ReadOfOverwrittenVersionGetsRwEdge) {
  // T3 read T1's version of x although T2 overwrote it: rw edge T3 -> T2.
  TraceTxn t1{1, {}, {{RecordId{0, 0}, 11}}};
  TraceTxn t2{2, {}, {{RecordId{0, 0}, 22}}};
  TraceTxn t3{3, {{RecordId{0, 0}, 11}}, {}};
  std::unordered_map<RecordId, KeyHistory> hist;
  hist[RecordId{0, 0}] = KeyHistory{{1, 2}};
  SerializationGraph g = BuildSerializationGraph({t1, t2, t3}, hist);
  EXPECT_FALSE(g.HasCycle());
  // T3 must be serializable before T2.
  auto order = g.SerialOrder();
  size_t pos2 = 0, pos3 = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 2) pos2 = i;
    if (order[i] == 3) pos3 = i;
  }
  EXPECT_LT(pos3, pos2) << g.ToString();
}

// ---------- End-to-end: Bohm execution graphs ----------

/// Verification transaction: RMWs `keys`, writing unique values that
/// encode its id, and recording everything it observed.
class TracedRmw final : public StoredProcedure {
 public:
  TracedRmw(uint64_t id, std::vector<Key> keys)
      : id_(id), keys_(std::move(keys)) {
    for (Key k : keys_) set_.AddRmw(0, k);
  }

  void Run(TxnOps& ops) override {
    trace_.id = id_;
    trace_.reads.clear();
    trace_.writes.clear();
    for (Key k : keys_) {
      const void* p = ops.Read(0, k);
      if (p != nullptr) {
        uint64_t v;
        std::memcpy(&v, p, sizeof(v));
        if (v != 0) trace_.reads[RecordId{0, k}] = v;
      }
      uint64_t mine = UniqueValue(id_, k);
      void* buf = ops.Write(0, k);
      std::memcpy(buf, &mine, sizeof(mine));
      trace_.writes[RecordId{0, k}] = mine;
    }
  }

  static uint64_t UniqueValue(uint64_t id, Key k) {
    return (id << 16) | (k + 1);
  }
  static uint64_t DecodeWriter(uint64_t value) { return value >> 16; }

  const TraceTxn& trace() const { return trace_; }

 private:
  uint64_t id_;
  std::vector<Key> keys_;
  TraceTxn trace_;
};

TEST(BohmGraphTest, RandomExecutionGraphAcyclicAndTsOrdered) {
  constexpr uint64_t kKeys = 12;
  constexpr int kTxns = 400;
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 3;
  cfg.batch_size = 16;
  cfg.gc_enabled = false;  // keep full version chains for extraction
  BohmEngine engine(OneTable(kKeys), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  std::vector<std::unique_ptr<TracedRmw>> txns;
  Rng rng(8080);
  for (int i = 0; i < kTxns; ++i) {
    uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(3));
    std::vector<Key> keys;
    while (keys.size() < n) {
      Key k = rng.Uniform(kKeys);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    txns.push_back(
        std::make_unique<TracedRmw>(static_cast<uint64_t>(i + 1), keys));
    ASSERT_TRUE(engine.SubmitBorrowed(txns.back().get()).ok());
  }
  engine.WaitForIdle();

  // Extract per-key committed version order from the version chains
  // (newest first via head, so reverse).
  std::unordered_map<RecordId, KeyHistory> histories;
  const BohmTable* table = engine.db().table(0);
  for (Key k = 0; k < kKeys; ++k) {
    BohmIndexEntry* entry = table->Find(table->PartitionOf(k), k);
    ASSERT_NE(entry, nullptr);
    std::vector<uint64_t> writers_newest_first;
    for (Version* v = entry->head.load(); v != nullptr; v = v->prev) {
      ASSERT_TRUE(v->ready());
      uint64_t value;
      std::memcpy(&value, v->data(), sizeof(value));
      if (value == 0) continue;  // initial version
      writers_newest_first.push_back(TracedRmw::DecodeWriter(value));
    }
    KeyHistory hist;
    hist.writer_ids.assign(writers_newest_first.rbegin(),
                           writers_newest_first.rend());
    histories[RecordId{0, k}] = std::move(hist);
  }

  std::vector<TraceTxn> traces;
  traces.reserve(txns.size());
  for (const auto& t : txns) traces.push_back(t->trace());

  SerializationGraph graph = BuildSerializationGraph(traces, histories);
  EXPECT_EQ(graph.NodeCount(), static_cast<size_t>(kTxns));
  EXPECT_GT(graph.EdgeCount(), 0u);

  // 1. Serializable: no cycles.
  auto cycle = graph.FindCycle();
  EXPECT_TRUE(cycle.empty()) << "cycle found: " << graph.ToString();

  // 2. Stronger (Section 3.3.3): every dependency agrees with timestamp
  //    (= submission) order, i.e. the topological order exists and txn
  //    ids 1..N themselves are a valid serial order. Verify by checking
  //    each ww history is strictly increasing in id.
  for (const auto& [rec, hist] : histories) {
    (void)rec;
    for (size_t i = 1; i < hist.writer_ids.size(); ++i) {
      EXPECT_LT(hist.writer_ids[i - 1], hist.writer_ids[i])
          << "ww edge against timestamp order";
    }
  }
  engine.Stop();
}

}  // namespace
}  // namespace bohm
