#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rand.h"

namespace bohm {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.max(), 42u);
  // 42 lands in a bucket whose upper bound is >= 42 and close to it.
  EXPECT_GE(h.Percentile(0.5), 42u);
  EXPECT_LE(h.Percentile(0.5), 47u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  // Values below kSubBuckets get exact buckets.
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.99), 15u);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Record(rng.Uniform(1'000'000));
  uint64_t p25 = h.Percentile(0.25);
  uint64_t p50 = h.Percentile(0.50);
  uint64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max());
}

TEST(HistogramTest, UniformMedianNearHalf) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) h.Record(rng.Uniform(1000));
  uint64_t p50 = h.Percentile(0.5);
  EXPECT_GT(p50, 400u);
  EXPECT_LT(p50, 600u);
}

TEST(HistogramTest, BoundedRelativeError) {
  // Every recorded value's bucket upper bound is within 1/16 relative
  // error (the log-bucket resolution).
  Histogram h;
  std::vector<uint64_t> probes = {1, 17, 100, 12345, 999999, 1u << 30};
  for (uint64_t v : probes) {
    Histogram one;
    one.Record(v);
    uint64_t est = one.Percentile(0.5);
    EXPECT_GE(est, v);
    EXPECT_LE(static_cast<double>(est), static_cast<double>(v) * 1.07 + 1);
  }
  (void)h;
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, QuantileClamped) {
  Histogram h;
  h.Record(7);
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX / 2);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.Percentile(0.9), 0u);
}

}  // namespace
}  // namespace bohm
