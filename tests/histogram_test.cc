#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rand.h"

namespace bohm {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_EQ(h.max(), 42u);
  // 42 lands in a bucket whose upper bound is >= 42 and close to it.
  EXPECT_GE(h.Percentile(0.5), 42u);
  EXPECT_LE(h.Percentile(0.5), 47u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  // Values below kSubBuckets get exact buckets.
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.99), 15u);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Record(rng.Uniform(1'000'000));
  uint64_t p25 = h.Percentile(0.25);
  uint64_t p50 = h.Percentile(0.50);
  uint64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, h.max());
}

TEST(HistogramTest, UniformMedianNearHalf) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) h.Record(rng.Uniform(1000));
  uint64_t p50 = h.Percentile(0.5);
  EXPECT_GT(p50, 400u);
  EXPECT_LT(p50, 600u);
}

TEST(HistogramTest, BoundedRelativeError) {
  // Every recorded value's bucket upper bound is within 1/16 relative
  // error (the log-bucket resolution).
  Histogram h;
  std::vector<uint64_t> probes = {1, 17, 100, 12345, 999999, 1u << 30};
  for (uint64_t v : probes) {
    Histogram one;
    one.Record(v);
    uint64_t est = one.Percentile(0.5);
    EXPECT_GE(est, v);
    EXPECT_LE(static_cast<double>(est), static_cast<double>(v) * 1.07 + 1);
  }
  (void)h;
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, QuantileClamped) {
  Histogram h;
  h.Record(7);
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX / 2);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.Percentile(0.9), 0u);
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a, empty;
  a.Record(10);
  a.Record(30);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  // Merging into an empty histogram reproduces the source.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.max(), a.max());
  EXPECT_EQ(b.Percentile(0.5), a.Percentile(0.5));
}

TEST(HistogramTest, OverflowBucketClampsQuantile) {
  // Values beyond the last bucket range all land in the final bucket;
  // the quantile reported for them is the bucket's (huge) upper bound,
  // and max() keeps the exact value.
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  uint64_t q = h.Percentile(0.99);
  EXPECT_GT(q, uint64_t{1} << 40);  // far past any realistic latency
}

TEST(HistogramTest, SingleSampleAllQuantilesEqual) {
  Histogram h;
  h.Record(12345);
  uint64_t p50 = h.Percentile(0.50);
  EXPECT_EQ(h.Percentile(0.01), p50);
  EXPECT_EQ(h.Percentile(0.99), p50);
  EXPECT_EQ(h.Percentile(0.999), p50);
  EXPECT_EQ(h.Percentile(1.0), p50);
}

TEST(HistogramTest, MergeCommutes) {
  Rng rng(3);
  Histogram a, b;
  for (int i = 0; i < 1000; ++i) a.Record(rng.Uniform(10'000));
  for (int i = 0; i < 500; ++i) b.Record(rng.Uniform(1'000'000));
  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.max(), ba.max());
  EXPECT_DOUBLE_EQ(ab.Mean(), ba.Mean());
  for (double q : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(ab.Percentile(q), ba.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, DeltaSubtractsWindow) {
  // Simulate a monotonically growing histogram sampled at two points:
  // Delta(later, earlier) describes exactly the samples in between.
  Histogram earlier;
  earlier.Record(10);
  earlier.Record(20);
  Histogram later = earlier;
  later.Record(100);
  later.Record(200);
  later.Record(300);
  Histogram d = Histogram::Delta(later, earlier);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.Mean(), 200.0);
  EXPECT_GE(d.Percentile(0.0), 100u);
}

TEST(HistogramTest, DeltaOfEqualSnapshotsIsEmpty) {
  Histogram h;
  h.Record(42);
  Histogram d = Histogram::Delta(h, h);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(d.max(), 0u);
  EXPECT_EQ(d.Percentile(0.5), 0u);
}

TEST(AtomicHistogramTest, RecordAndMergeMatchesPlain) {
  AtomicHistogram ah;
  Histogram plain;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Uniform(100'000);
    ah.Record(v);
    plain.Record(v);
  }
  EXPECT_EQ(ah.count(), plain.count());
  Histogram folded;
  ah.MergeInto(&folded);
  EXPECT_EQ(folded.count(), plain.count());
  EXPECT_EQ(folded.max(), plain.max());
  EXPECT_DOUBLE_EQ(folded.Mean(), plain.Mean());
  for (double q : {0.5, 0.99}) {
    EXPECT_EQ(folded.Percentile(q), plain.Percentile(q)) << "q=" << q;
  }
}

TEST(AtomicHistogramTest, MergeIntoAccumulates) {
  AtomicHistogram ah;
  ah.Record(10);
  Histogram out;
  out.Record(20);
  ah.MergeInto(&out);
  EXPECT_EQ(out.count(), 2u);
  EXPECT_DOUBLE_EQ(out.Mean(), 15.0);
}

TEST(AtomicHistogramTest, ResetClears) {
  AtomicHistogram ah;
  ah.Record(7);
  ah.Reset();
  EXPECT_EQ(ah.count(), 0u);
  Histogram out;
  ah.MergeInto(&out);
  EXPECT_EQ(out.count(), 0u);
  EXPECT_EQ(out.max(), 0u);
}

TEST(AtomicHistogramTest, ConcurrentFoldSeesConsistentPrefix) {
  // Single writer records while a reader folds concurrently: every fold
  // must observe count <= writes-so-far and a percentile target backed
  // by real buckets (count is published last with release ordering).
  AtomicHistogram ah;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 20000 && !stop.load(std::memory_order_relaxed);
         ++i) {
      ah.Record(i % 997 + 1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    Histogram out;
    ah.MergeInto(&out);
    if (out.count() > 0) {
      EXPECT_GT(out.Percentile(0.5), 0u);
      EXPECT_LE(out.Percentile(0.5), out.Percentile(0.999));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  Histogram final_out;
  ah.MergeInto(&final_out);
  EXPECT_EQ(final_out.count(), ah.count());
}

}  // namespace
}  // namespace bohm
