// End-to-end latency accounting through the Bohm pipeline: transactions
// are stamped at Submit(), the latency is recorded at commit publication
// in the execution stage, and the driver windows the engine-side
// histogram between two quiesced snapshots. These tests pin down the
// user-visible invariants: non-zero monotone percentiles, and an exact
// histogram-count == commit-count correspondence for every window.
#include <gtest/gtest.h>

#include <memory>

#include "bohm/engine.h"
#include "common/rand.h"
#include "harness/driver.h"
#include "test_util.h"
#include "workload/micro.h"

namespace bohm {
namespace {

using testutil::OneTable;

BohmEngine& LoadedEngine(BohmEngine& engine, uint64_t keys) {
  uint64_t zero = 0;
  for (Key k = 0; k < keys; ++k) EXPECT_TRUE(engine.Load(0, k, &zero).ok());
  EXPECT_TRUE(engine.Start().ok());
  return engine;
}

TxnSourceMaker IncrementMaker(uint64_t keys) {
  return [keys](uint32_t tid) {
    auto rng = std::make_shared<Rng>(tid);
    return [rng, keys]() -> ProcedurePtr {
      return std::make_unique<IncrementProcedure>(0, rng->Uniform(keys));
    };
  };
}

TEST(BohmLatencyTest, TimedWindowPercentilesNonZeroAndMonotone) {
  BohmConfig cfg;
  cfg.batch_size = 32;
  BohmEngine engine(OneTable(64), cfg);
  LoadedEngine(engine, 64);
  DriverOptions opt;
  opt.warmup_ms = 20;
  opt.measure_ms = 80;
  BenchResult r = RunBohmBench(engine, IncrementMaker(64), 2, opt);
  ASSERT_GT(r.commits, 0u);
  ASSERT_GT(r.latency_us.count(), 0u);
  // Latency is ceil'd to whole microseconds at the recording site, so a
  // committed transaction can never contribute a zero sample.
  EXPECT_GT(r.P50Us(), 0u);
  EXPECT_GT(r.P99Us(), 0u);
  EXPECT_LE(r.P50Us(), r.P99Us());
  EXPECT_LE(r.P99Us(), r.P999Us());
  EXPECT_GT(r.latency_us.max(), 0u);
  EXPECT_GT(r.latency_us.Mean(), 0.0);
  engine.Stop();
}

TEST(BohmLatencyTest, TimedWindowHistogramCountEqualsCommits) {
  // Both window edges are quiesced (clients parked, pipeline drained), so
  // the latency histogram describes exactly the window's committed
  // transactions — equality, not a tolerance band.
  BohmConfig cfg;
  cfg.batch_size = 32;
  BohmEngine engine(OneTable(128), cfg);
  LoadedEngine(engine, 128);
  DriverOptions opt;
  opt.warmup_ms = 20;
  opt.measure_ms = 80;
  BenchResult r = RunBohmBench(engine, IncrementMaker(128), 2, opt);
  ASSERT_GT(r.commits, 0u);
  EXPECT_EQ(r.latency_us.count(), r.commits);
  engine.Stop();
}

TEST(BohmLatencyTest, CountRunRecordsEverySubmission) {
  // Fixed-count runs drain the pipeline before the closing snapshot, so
  // all N submissions appear in both the commit count and the histogram.
  BohmConfig cfg;
  cfg.batch_size = 16;
  BohmEngine engine(OneTable(64), cfg);
  LoadedEngine(engine, 64);
  BenchResult r = RunBohmCount(engine, IncrementMaker(64), 400);
  EXPECT_EQ(r.commits, 400u);
  EXPECT_EQ(r.latency_us.count(), 400u);
  EXPECT_GT(r.P50Us(), 0u);
  EXPECT_LE(r.P50Us(), r.P999Us());
  engine.Stop();
}

TEST(BohmLatencyTest, LatencyCoversPipelineNotJustExecution) {
  // A submit-stamped transaction spends time in the input queue, the
  // sequencer batch, and the CC stage before execution; with a small
  // batch size the whole pipeline still adds at least the execution
  // time, so the mean must be >= 1us (the recording floor) and the max
  // must be >= the p50.
  BohmConfig cfg;
  cfg.batch_size = 8;
  BohmEngine engine(OneTable(32), cfg);
  LoadedEngine(engine, 32);
  BenchResult r = RunBohmCount(engine, IncrementMaker(32), 100);
  ASSERT_EQ(r.latency_us.count(), 100u);
  EXPECT_GE(r.latency_us.Mean(), 1.0);
  EXPECT_GE(r.latency_us.max(), 1u);
  EXPECT_LE(r.P50Us(), r.latency_us.max() * 2);
  engine.Stop();
}

TEST(BohmLatencyTest, EngineHistogramGrowsMonotonically) {
  // The engine-side folded histogram only grows; windows are deltas.
  BohmConfig cfg;
  cfg.batch_size = 16;
  BohmEngine engine(OneTable(64), cfg);
  LoadedEngine(engine, 64);
  auto maker = IncrementMaker(64);
  (void)RunBohmCount(engine, maker, 150);
  StatsSnapshot s1 = engine.Stats();
  (void)RunBohmCount(engine, maker, 150);
  StatsSnapshot s2 = engine.Stats();
  EXPECT_EQ(s1.latency_us.count(), 150u);
  EXPECT_EQ(s2.latency_us.count(), 300u);
  Histogram window = Histogram::Delta(s2.latency_us, s1.latency_us);
  EXPECT_EQ(window.count(), 150u);
  engine.Stop();
}

}  // namespace
}  // namespace bohm
