#include "bohm/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rand.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

std::unique_ptr<BohmEngine> MakeEngine(uint64_t keys, BohmConfig cfg,
                                       uint64_t initial = 0) {
  auto engine = std::make_unique<BohmEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  EXPECT_TRUE(engine->Start().ok());
  return engine;
}

TEST(BohmEngineTest, StartStopEmpty) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  EXPECT_TRUE(engine.Start().ok());
  engine.Stop();
}

TEST(BohmEngineTest, DoubleStartRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  EXPECT_TRUE(engine.Start().ok());
  EXPECT_TRUE(engine.Start().IsFailedPrecondition());
  engine.Stop();
}

TEST(BohmEngineTest, SubmitBeforeStartRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  EXPECT_TRUE(
      engine.Submit(std::make_unique<PutProcedure>(0, 1, 2)).IsRejected());
}

TEST(BohmEngineTest, SubmitAfterStopRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  ASSERT_TRUE(engine.Start().ok());
  engine.Stop();
  EXPECT_TRUE(
      engine.Submit(std::make_unique<PutProcedure>(0, 1, 2)).IsRejected());
}

TEST(BohmEngineTest, SubmitUnknownTableRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  ASSERT_TRUE(engine.Start().ok());
  // Table 7 does not exist; before graceful rejection this dereferenced a
  // null BohmTable inside the sequencer.
  Status st = engine.Submit(std::make_unique<PutProcedure>(7, 1, 2));
  EXPECT_TRUE(st.IsRejected()) << st.ToString();
  engine.Stop();
}

namespace {
/// Declares the same key twice in its write set — a malformed footprint.
class DuplicateWriteProcedure final : public StoredProcedure {
 public:
  DuplicateWriteProcedure() {
    set_.AddWrite(0, 1);
    set_.AddWrite(0, 1);
  }
  void Run(TxnOps& ops) override { (void)ops.Write(0, 1); }
};
}  // namespace

TEST(BohmEngineTest, SubmitDuplicateWriteRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  ASSERT_TRUE(engine.Start().ok());
  Status st = engine.Submit(std::make_unique<DuplicateWriteProcedure>());
  EXPECT_TRUE(st.IsRejected()) << st.ToString();
  // The engine keeps running after a rejection.
  ASSERT_TRUE(engine.Submit(std::make_unique<PutProcedure>(0, 1, 2)).ok());
  engine.WaitForIdle();
  uint64_t v = 0;
  EXPECT_TRUE(engine.ReadLatest(0, 1, &v).ok());
  EXPECT_EQ(v, 2u);
  engine.Stop();
}

TEST(BohmEngineTest, LoadAfterStartRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  ASSERT_TRUE(engine.Start().ok());
  uint64_t v = 1;
  EXPECT_TRUE(engine.Load(0, 0, &v).IsFailedPrecondition());
  engine.Stop();
}

TEST(BohmEngineTest, LoadDuplicateRejected) {
  BohmEngine engine(OneTable(4), BohmConfig{});
  uint64_t v = 1;
  EXPECT_TRUE(engine.Load(0, 0, &v).ok());
  EXPECT_TRUE(engine.Load(0, 0, &v).IsInvalidArgument());
}

TEST(BohmEngineTest, PutThenReadLatest) {
  auto engine = MakeEngine(8, BohmConfig{});
  ASSERT_TRUE(engine->RunSync(std::make_unique<PutProcedure>(0, 3, 77)).ok());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 3, &out).ok());
  EXPECT_EQ(out, 77u);
  engine->Stop();
}

TEST(BohmEngineTest, GetSeesLoadedValue) {
  BohmConfig cfg;
  auto engine = MakeEngine(8, cfg, /*initial=*/123);
  uint64_t out = 0;
  bool found = false;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 2, &out, &found))
          .ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 123u);
  engine->Stop();
}

TEST(BohmEngineTest, ReadMissingKeySeesNull) {
  auto engine = MakeEngine(4, BohmConfig{});
  uint64_t out = 99;
  bool found = true;
  // Key 1000 was never loaded or written.
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 1000, &out, &found))
          .ok());
  EXPECT_FALSE(found);
  engine->Stop();
}

TEST(BohmEngineTest, InsertNewKeyVisible) {
  auto engine = MakeEngine(4, BohmConfig{});
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<PutProcedure>(0, 500, 1)).ok());
  uint64_t out = 0;
  bool found = false;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 500, &out, &found))
          .ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 1u);
  engine->Stop();
}

TEST(BohmEngineTest, SequentialIncrementsAccumulate) {
  auto engine = MakeEngine(4, BohmConfig{});
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, 1)).ok());
  }
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 1, &out).ok());
  EXPECT_EQ(out, static_cast<uint64_t>(kN));
  StatsSnapshot s = engine->Stats();
  EXPECT_EQ(s.commits, static_cast<uint64_t>(kN));
  EXPECT_EQ(s.cc_aborts, 0u);  // Bohm never cc-aborts
  engine->Stop();
}

TEST(BohmEngineTest, LogicAbortLeavesValueUnchanged) {
  auto engine = MakeEngine(4, BohmConfig{}, /*initial=*/10);
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<testutil::AbortingIncrement>(0, 2))
          .ok());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 10u);  // the aborted txn's placeholder carries the old value
  EXPECT_EQ(engine->Stats().logic_aborts, 1u);
  engine->Stop();
}

TEST(BohmEngineTest, AbortThenReadChainsCorrectly) {
  // abort, then increment, then read: the increment must see the
  // pre-abort value through the abort-filled placeholder.
  auto engine = MakeEngine(4, BohmConfig{}, /*initial=*/5);
  ASSERT_TRUE(
      engine->Submit(std::make_unique<testutil::AbortingIncrement>(0, 0))
          .ok());
  ASSERT_TRUE(
      engine->Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 6u);
  engine->Stop();
}

TEST(BohmEngineTest, AbortedInsertRemainsAbsent) {
  auto engine = MakeEngine(4, BohmConfig{});
  // Write to a fresh key, then abort: the placeholder becomes a tombstone.
  class AbortingInsert final : public StoredProcedure {
   public:
    AbortingInsert() { set_.AddWrite(0, 777); }
    void Run(TxnOps& ops) override {
      testutil::WriteU64(ops, 0, 777, 42);
      ops.Abort();
    }
  };
  ASSERT_TRUE(engine->RunSync(std::make_unique<AbortingInsert>()).ok());
  uint64_t out = 0;
  bool found = true;
  ASSERT_TRUE(
      engine->RunSync(std::make_unique<GetProcedure>(0, 777, &out, &found))
          .ok());
  EXPECT_FALSE(found);
  engine->Stop();
}

TEST(BohmEngineTest, WriteSkewImpossible) {
  // T1: B := A*10;  T2: A := B*100. Submitted in that order, the result
  // must equal the serial execution T1 then T2 (Bohm's timestamp order IS
  // the serialization order).
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  auto engine = MakeEngine(2, cfg, /*initial=*/1);
  ASSERT_TRUE(engine->Submit(testutil::MakeMulWrite(0, 0, 1, 10)).ok());
  ASSERT_TRUE(engine->Submit(testutil::MakeMulWrite(0, 1, 0, 100)).ok());
  engine->WaitForIdle();
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &a).ok());
  ASSERT_TRUE(engine->ReadLatest(0, 1, &b).ok());
  // Serial T1,T2: B = 1*10 = 10; A = B*100 = 1000.
  EXPECT_EQ(b, 10u);
  EXPECT_EQ(a, 1000u);
  engine->Stop();
}

TEST(BohmEngineTest, TransfersConserveTotal) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 16;
  constexpr uint64_t kKeys = 8, kInitial = 1000, kTxns = 2000;
  auto engine = MakeEngine(kKeys, cfg, kInitial);
  Rng rng(5);
  for (uint64_t i = 0; i < kTxns; ++i) {
    Key src = rng.Uniform(kKeys);
    Key dst = rng.Uniform(kKeys);
    while (dst == src) dst = rng.Uniform(kKeys);
    ASSERT_TRUE(engine
                    ->Submit(std::make_unique<testutil::TransferProcedure>(
                        0, src, dst, rng.Uniform(10)))
                    .ok());
  }
  engine->WaitForIdle();
  uint64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, kKeys * kInitial);
  engine->Stop();
}

TEST(BohmEngineTest, ReadOnlySeesConsistentSnapshot) {
  // Interleave transfers (sum-invariant) with pair readers: every reader
  // must observe the invariant sum no matter where its timestamp falls.
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 8;
  auto engine = MakeEngine(2, cfg, /*initial=*/100);
  // Result-carrying procedures stay caller-owned (SubmitBorrowed): the
  // engine destroys Submit()-owned procedures when their batch slot is
  // recycled.
  std::vector<std::unique_ptr<testutil::ReadPairProcedure>> readers;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 2) {
      readers.push_back(std::make_unique<testutil::ReadPairProcedure>(0, 0, 1));
      ASSERT_TRUE(engine->SubmitBorrowed(readers.back().get()).ok());
    } else {
      ASSERT_TRUE(engine
                      ->Submit(std::make_unique<testutil::TransferProcedure>(
                          0, i % 2, (i + 1) % 2, rng.Uniform(5)))
                      .ok());
    }
  }
  engine->WaitForIdle();
  for (const auto& r : readers) {
    EXPECT_EQ(r->sum(), 200u);
  }
  engine->Stop();
}

// ---------------------------------------------------------------------
// Serial-equivalence property: for any configuration, the final database
// state equals a single-threaded replay of the transactions in submission
// (= timestamp) order.
// ---------------------------------------------------------------------

struct EngineParams {
  uint32_t cc_threads;
  uint32_t exec_threads;
  uint32_t batch_size;
  bool annotation;
  bool gc;
};

class BohmSerialEquivalence
    : public ::testing::TestWithParam<EngineParams> {};

TEST_P(BohmSerialEquivalence, RandomRmwMatchesSerialReplay) {
  const EngineParams p = GetParam();
  BohmConfig cfg;
  cfg.cc_threads = p.cc_threads;
  cfg.exec_threads = p.exec_threads;
  cfg.batch_size = p.batch_size;
  cfg.read_annotation = p.annotation;
  cfg.gc_enabled = p.gc;
  cfg.pipeline_depth = 4;

  constexpr uint64_t kKeys = 16;
  constexpr int kTxns = 1500;
  auto engine = MakeEngine(kKeys, cfg, /*initial=*/0);

  // Golden replay state.
  std::map<Key, uint64_t> golden;
  for (Key k = 0; k < kKeys; ++k) golden[k] = 0;

  Rng rng(1234);
  for (int i = 0; i < kTxns; ++i) {
    int kind = static_cast<int>(rng.Uniform(3));
    if (kind == 0) {
      Key k = rng.Uniform(kKeys);
      uint64_t delta = rng.Uniform(100);
      golden[k] += delta;
      ASSERT_TRUE(
          engine->Submit(std::make_unique<IncrementProcedure>(0, k, delta))
              .ok());
    } else if (kind == 1) {
      Key src = rng.Uniform(kKeys);
      Key dst = rng.Uniform(kKeys);
      while (dst == src) dst = rng.Uniform(kKeys);
      uint64_t amount = rng.Uniform(50);
      golden[src] -= amount;
      golden[dst] += amount;
      ASSERT_TRUE(engine
                      ->Submit(std::make_unique<testutil::TransferProcedure>(
                          0, src, dst, amount))
                      .ok());
    } else {
      Key src = rng.Uniform(kKeys);
      Key dst = rng.Uniform(kKeys);
      uint64_t factor = rng.Uniform(3) + 1;
      golden[dst] = golden[src] * factor;
      ASSERT_TRUE(
          engine->Submit(testutil::MakeMulWrite(0, src, dst, factor)).ok());
    }
  }
  engine->WaitForIdle();
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    EXPECT_EQ(v, golden[k]) << "key " << k;
  }
  EXPECT_EQ(engine->Stats().commits, static_cast<uint64_t>(kTxns));
  engine->Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BohmSerialEquivalence,
    ::testing::Values(
        EngineParams{1, 1, 1, true, true},
        EngineParams{1, 1, 64, true, true},
        EngineParams{2, 2, 32, true, true},
        EngineParams{3, 2, 17, true, true},
        EngineParams{2, 3, 256, true, true},
        EngineParams{2, 2, 32, false, true},   // chain traversal path
        EngineParams{2, 2, 32, true, false},   // GC off
        EngineParams{4, 4, 8, false, false},
        EngineParams{1, 4, 512, true, true},
        EngineParams{4, 1, 64, false, true}));

TEST(BohmEngineTest, HotKeyRmwChain) {
  // Every transaction RMWs the same key: maximal read-dependency chains
  // (each txn depends on its predecessor's placeholder). Exercises the
  // recursive evaluation and the back-out path under depth limits.
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 3;
  cfg.batch_size = 64;
  cfg.max_dependency_depth = 4;  // force frequent back-outs
  auto engine = MakeEngine(2, cfg);
  constexpr int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine->WaitForIdle();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, static_cast<uint64_t>(kN));
  engine->Stop();
}

TEST(BohmEngineTest, StatsCountReadsAndWrites) {
  auto engine = MakeEngine(4, BohmConfig{});
  ASSERT_TRUE(engine->RunSync(std::make_unique<IncrementProcedure>(0, 1)).ok());
  StatsSnapshot s = engine->Stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
  engine->Stop();
}

TEST(BohmEngineTest, WatermarkAdvances) {
  BohmConfig cfg;
  cfg.batch_size = 4;
  auto engine = MakeEngine(4, cfg);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine->WaitForIdle();
  EXPECT_GE(engine->Watermark(), 0);
  engine->Stop();
}

TEST(BohmEngineTest, StopIsIdempotent) {
  auto engine = MakeEngine(4, BohmConfig{});
  engine->Stop();
  engine->Stop();
}

}  // namespace
}  // namespace bohm
