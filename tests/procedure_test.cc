#include "txn/procedure.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

namespace bohm {
namespace {

/// In-memory TxnOps over a map of 8-byte records; validates that
/// procedures only touch declared elements.
class FakeOps final : public TxnOps {
 public:
  explicit FakeOps(const ReadWriteSet* declared = nullptr)
      : declared_(declared) {}

  const void* Read(TableId table, Key key) override {
    if (declared_ != nullptr) {
      bool found = false;
      for (const auto& r : declared_->reads()) {
        if (r.table == table && r.key == key) found = true;
      }
      EXPECT_TRUE(found) << "undeclared read " << table << "/" << key;
    }
    auto it = store_.find({table, key});
    return it == store_.end() ? nullptr : &it->second;
  }

  void* Write(TableId table, Key key) override {
    if (declared_ != nullptr) {
      bool found = false;
      for (const auto& w : declared_->writes()) {
        if (w.table == table && w.key == key) found = true;
      }
      EXPECT_TRUE(found) << "undeclared write " << table << "/" << key;
    }
    return &store_[{table, key}];
  }

  void Abort() override { aborted_ = true; }
  bool aborted() const override { return aborted_; }

  void Put(TableId table, Key key, uint64_t v) { store_[{table, key}] = v; }
  uint64_t Get(TableId table, Key key) { return store_[{table, key}]; }

 private:
  const ReadWriteSet* declared_;
  std::map<RecordId, uint64_t> store_;
  bool aborted_ = false;
};

TEST(ProcedureTest, PutWritesValue) {
  PutProcedure p(0, 7, 99);
  EXPECT_EQ(p.rwset().writes().size(), 1u);
  EXPECT_TRUE(p.rwset().reads().empty());
  FakeOps ops(&p.rwset());
  p.Run(ops);
  EXPECT_EQ(ops.Get(0, 7), 99u);
}

TEST(ProcedureTest, GetReadsValue) {
  uint64_t out = 0;
  bool found = false;
  GetProcedure p(0, 7, &out, &found);
  FakeOps ops(&p.rwset());
  ops.Put(0, 7, 1234);
  p.Run(ops);
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 1234u);
}

TEST(ProcedureTest, GetMissingReportsNotFound) {
  uint64_t out = 55;
  bool found = true;
  GetProcedure p(0, 8, &out, &found);
  FakeOps ops(&p.rwset());
  p.Run(ops);
  EXPECT_FALSE(found);
  EXPECT_EQ(out, 55u);  // untouched
}

TEST(ProcedureTest, IncrementIsRmw) {
  IncrementProcedure p(0, 3, 5);
  EXPECT_EQ(p.rwset().reads().size(), 1u);
  EXPECT_EQ(p.rwset().writes().size(), 1u);
  FakeOps ops(&p.rwset());
  ops.Put(0, 3, 10);
  p.Run(ops);
  EXPECT_EQ(ops.Get(0, 3), 15u);
}

TEST(ProcedureTest, IncrementOnMissingStartsFromZero) {
  IncrementProcedure p(1, 9);
  FakeOps ops(&p.rwset());
  p.Run(ops);
  EXPECT_EQ(ops.Get(1, 9), 1u);
}

TEST(ProcedureTest, RunIsRepeatable) {
  // Engines re-run procedures after cc aborts; same input, same output.
  IncrementProcedure p(0, 1, 2);
  FakeOps ops1(&p.rwset()), ops2(&p.rwset());
  ops1.Put(0, 1, 4);
  ops2.Put(0, 1, 4);
  p.Run(ops1);
  p.Run(ops2);
  EXPECT_EQ(ops1.Get(0, 1), ops2.Get(0, 1));
}

}  // namespace
}  // namespace bohm
