// Tests for the LogEnv file abstraction and the fault-injection wrapper:
// the real env must round-trip bytes faithfully, and FaultLogEnv must
// model each crash mode exactly (that precision is what the recovery
// matrix in log_recovery_test.cc builds on).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "log/batch_log.h"
#include "log/fault_env.h"
#include "log/log_env.h"

namespace bohm {
namespace {

class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bohm_log_env_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(TempDirTest, PosixEnvRoundTrip) {
  LogEnv* env = LogEnv::Default();
  ASSERT_TRUE(env->CreateDirIfMissing(dir_.string()).ok());
  ASSERT_TRUE(env->CreateDirIfMissing(dir_.string()).ok());  // idempotent

  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env->NewWritableFile(Path("a.seg"), &f).ok());
  ASSERT_TRUE(f->Append("hello ", 6).ok());
  ASSERT_TRUE(f->Append("world", 5).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Close().ok());

  std::string contents;
  ASSERT_TRUE(env->ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "hello world");

  ASSERT_TRUE(env->TruncateFile(Path("a.seg"), 5).ok());
  ASSERT_TRUE(env->ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "hello");

  std::vector<std::string> names;
  ASSERT_TRUE(env->ListDir(dir_.string(), &names).ok());
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "a.seg");
}

TEST_F(TempDirTest, PosixEnvMissingPathsAreNotFound) {
  LogEnv* env = LogEnv::Default();
  std::vector<std::string> names;
  EXPECT_TRUE(env->ListDir(Path("nope"), &names).IsNotFound());
  std::string contents;
  EXPECT_TRUE(env->ReadFileToString(Path("nope.seg"), &contents).IsNotFound());
}

TEST_F(TempDirTest, CrashAfterBytesLeavesExactTornPrefix) {
  FaultLogEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_.string()).ok());
  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(Path("a.seg"), &f).ok());

  env.CrashAfterBytes(10);
  ASSERT_TRUE(f->Append("0123456", 7).ok());   // within budget
  ASSERT_TRUE(f->Append("789abcd", 7).ok());   // cut at 3 bytes, crash
  EXPECT_TRUE(env.crashed());
  ASSERT_TRUE(f->Append("zzzz", 4).ok());      // lying success, dropped
  ASSERT_TRUE(f->Sync().ok());                 // lying success
  ASSERT_TRUE(f->Close().ok());

  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "0123456789");  // exactly the 10-byte budget
}

TEST_F(TempDirTest, CrashAtSyncDropsUnsyncedBytes) {
  FaultLogEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_.string()).ok());
  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(Path("a.seg"), &f).ok());

  env.CrashAtSync(2);
  ASSERT_TRUE(f->Append("first.", 6).ok());
  ASSERT_TRUE(f->Sync().ok());  // sync #1 persists "first."
  ASSERT_TRUE(f->Append("second.", 7).ok());
  ASSERT_TRUE(f->Sync().ok());  // sync #2 crashes: "second." vanishes
  EXPECT_TRUE(env.crashed());
  ASSERT_TRUE(f->Append("third.", 6).ok());  // dropped
  ASSERT_TRUE(f->Close().ok());

  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "first.");
}

TEST_F(TempDirTest, CleanCloseFlushesUnsyncedBytes) {
  FaultLogEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_.string()).ok());
  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(Path("a.seg"), &f).ok());
  ASSERT_TRUE(f->Append("unsynced", 8).ok());
  ASSERT_TRUE(f->Close().ok());  // clean shutdown persists
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "unsynced");
}

TEST_F(TempDirTest, FailWritesAfterBytesIsHonest) {
  FaultLogEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_.string()).ok());
  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(Path("a.seg"), &f).ok());

  env.FailWritesAfterBytes(4);
  ASSERT_TRUE(f->Append("okok", 4).ok());
  Status st = f->Append("more", 4);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_FALSE(env.crashed());  // an honest error is not a crash
}

TEST_F(TempDirTest, FlipByteCorruptsExactlyOneByte) {
  FaultLogEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing(dir_.string()).ok());
  std::unique_ptr<LogWritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(Path("a.seg"), &f).ok());
  ASSERT_TRUE(f->Append("abcdef", 6).ok());
  ASSERT_TRUE(f->Close().ok());

  ASSERT_TRUE(env.FlipByte(Path("a.seg"), 2, 0x01).ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(Path("a.seg"), &contents).ok());
  EXPECT_EQ(contents, "abbdef");  // 'c' ^ 0x01 == 'b'
  EXPECT_TRUE(env.FlipByte(Path("a.seg"), 99, 0x01).IsInvalidArgument());
}

TEST_F(TempDirTest, BatchLogRotatesSegmentsAndStaysReadable) {
  LogEnv* env = LogEnv::Default();
  // Tiny segment budget: every record after the first in a segment
  // triggers rotation, so three appends span at least two files.
  BatchLog log(dir_.string(), env, /*segment_bytes=*/8);
  ASSERT_TRUE(log.Open().ok());
  ASSERT_TRUE(log.Append(1, "one").ok());
  ASSERT_TRUE(log.Append(2, "two").ok());
  ASSERT_TRUE(log.Append(3, "three").ok());
  ASSERT_TRUE(log.Sync().ok());
  ASSERT_TRUE(log.Close().ok());
  EXPECT_EQ(log.records(), 3u);
  EXPECT_GE(log.fsyncs(), 1u);

  std::vector<std::string> names;
  ASSERT_TRUE(env->ListDir(dir_.string(), &names).ok());
  EXPECT_GE(names.size(), 2u);
  for (const std::string& name : names) {
    uint64_t first = 0;
    EXPECT_TRUE(ParseSegmentFileName(name, &first)) << name;
  }
}

}  // namespace
}  // namespace bohm
