// Unit tests for the Hekaton/SI building blocks: tagged Begin/End field
// encoding and the commit-dependency machinery.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mvocc/mv_record.h"
#include "mvocc/mv_txn.h"
#include "occ/silo_engine.h"

namespace bohm {
namespace {

TEST(MVEncodingTest, TimestampsAreNotTxns) {
  EXPECT_FALSE(MVIsTxn(0));
  EXPECT_FALSE(MVIsTxn(12345));
  EXPECT_FALSE(MVIsTxn(kMVInfinity));
}

TEST(MVEncodingTest, TaggedPointerRoundTrip) {
  MVTxn txn;
  uint64_t tagged = MVTagTxn(&txn);
  EXPECT_TRUE(MVIsTxn(tagged));
  EXPECT_EQ(MVTxnPtr(tagged), &txn);
}

TEST(MVEncodingTest, InfinityAboveAllTimestamps) {
  EXPECT_GT(kMVInfinity, 1ull << 48);
  EXPECT_EQ(kMVAbortedBegin, kMVInfinity);
}

TEST(MVTxnTest, InitialState) {
  MVTxn txn;
  EXPECT_EQ(txn.State(), MVTxnState::kActive);
  EXPECT_EQ(txn.dep_count.load(), 0);
  EXPECT_FALSE(txn.dep_failed.load());
}

TEST(MVTxnTest, RegisterOnlyWhilePreparing) {
  MVTxn writer, reader;
  // Active: registration refused.
  EXPECT_FALSE(writer.TryRegisterDependent(&reader));
  EXPECT_EQ(reader.dep_count.load(), 0);

  writer.state.store(static_cast<uint32_t>(MVTxnState::kPreparing));
  EXPECT_TRUE(writer.TryRegisterDependent(&reader));
  EXPECT_EQ(reader.dep_count.load(), 1);

  writer.FinishAndResolveDependents(MVTxnState::kCommitted);
  EXPECT_EQ(reader.dep_count.load(), 0);
  EXPECT_FALSE(reader.dep_failed.load());

  // Committed: registration refused.
  MVTxn late;
  EXPECT_FALSE(writer.TryRegisterDependent(&late));
}

TEST(MVTxnTest, AbortFlagsDependents) {
  MVTxn writer, r1, r2;
  writer.state.store(static_cast<uint32_t>(MVTxnState::kPreparing));
  ASSERT_TRUE(writer.TryRegisterDependent(&r1));
  ASSERT_TRUE(writer.TryRegisterDependent(&r2));
  writer.FinishAndResolveDependents(MVTxnState::kAborted);
  EXPECT_TRUE(r1.dep_failed.load());
  EXPECT_TRUE(r2.dep_failed.load());
  EXPECT_EQ(r1.dep_count.load(), 0);
  EXPECT_EQ(r2.dep_count.load(), 0);
  EXPECT_EQ(writer.State(), MVTxnState::kAborted);
}

TEST(MVTxnTest, MultipleDependenciesCountDown) {
  MVTxn w1, w2, reader;
  w1.state.store(static_cast<uint32_t>(MVTxnState::kPreparing));
  w2.state.store(static_cast<uint32_t>(MVTxnState::kPreparing));
  ASSERT_TRUE(w1.TryRegisterDependent(&reader));
  ASSERT_TRUE(w2.TryRegisterDependent(&reader));
  EXPECT_EQ(reader.dep_count.load(), 2);
  w1.FinishAndResolveDependents(MVTxnState::kCommitted);
  EXPECT_EQ(reader.dep_count.load(), 1);
  w2.FinishAndResolveDependents(MVTxnState::kCommitted);
  EXPECT_EQ(reader.dep_count.load(), 0);
  EXPECT_FALSE(reader.dep_failed.load());
}

TEST(MVTxnTest, ConcurrentRegistrationAndResolutionIsExact) {
  // Readers race to register against a writer that concurrently commits;
  // every successful registration must be resolved exactly once (counts
  // return to zero), and failed registrations must see a final state.
  for (int round = 0; round < 50; ++round) {
    MVTxn writer;
    writer.state.store(static_cast<uint32_t>(MVTxnState::kPreparing));
    constexpr int kReaders = 4;
    std::vector<MVTxn> readers(kReaders);
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        if (!writer.TryRegisterDependent(&readers[r])) {
          // Must be resolvable from the final state.
          EXPECT_NE(writer.State(), MVTxnState::kPreparing);
        }
      });
    }
    threads.emplace_back(
        [&] { writer.FinishAndResolveDependents(MVTxnState::kCommitted); });
    for (auto& t : threads) t.join();
    for (auto& r : readers) {
      EXPECT_EQ(r.dep_count.load(), 0);
      EXPECT_FALSE(r.dep_failed.load());
    }
  }
}

TEST(MVTableTest, DenseSlots) {
  TableSpec spec;
  spec.id = 0;
  spec.record_size = 8;
  spec.capacity = 100;
  MVTable table(spec);
  EXPECT_NE(table.Slot(0), nullptr);
  EXPECT_NE(table.Slot(99), nullptr);
  EXPECT_EQ(table.Slot(100), nullptr);
  EXPECT_EQ(table.Slot(0)->head.load(), nullptr);
}

TEST(SiloTidTest, EpochBitsExtractable) {
  uint64_t tid = (7ull << SiloEngine::kEpochShift) | 42;
  EXPECT_EQ(SiloEngine::TidEpoch(tid), 7u);
}

}  // namespace
}  // namespace bohm
