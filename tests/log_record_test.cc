// Unit tests for the durable-log building blocks: CRC32C, fixed-width
// coding, record framing, segment naming, and the procedure codecs.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "log/batch_log.h"
#include "log/codec.h"
#include "log/coding.h"
#include "log/crc32c.h"
#include "log/record.h"
#include "workload/ycsb.h"

namespace bohm {
namespace {

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix / RocksDB tests).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const size_t n = std::strlen(s);
  uint32_t one_shot = Crc32c(s, n);
  uint32_t incr = Crc32c(s, 10);
  incr = Crc32c(incr, s + 10, n - 10);
  EXPECT_EQ(incr, one_shot);
  EXPECT_NE(Crc32c(s, n - 1), one_shot);
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  AppendFixed32(&buf, 0xDEADBEEFu);
  AppendFixed64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 12u);
  // Little-endian pinned, independent of host order.
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0xEFu);
  const auto* p = reinterpret_cast<const uint8_t*>(buf.data());
  EXPECT_EQ(DecodeFixed32(p), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(p + 4), 0x0123456789ABCDEFull);
}

TEST(CodingTest, SliceBoundsChecked) {
  std::string buf;
  AppendFixed32(&buf, 7);
  Slice s(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  EXPECT_TRUE(s.GetFixed32(&v32));
  EXPECT_EQ(v32, 7u);
  EXPECT_EQ(s.remaining(), 0u);
  EXPECT_FALSE(s.GetFixed32(&v32));
  EXPECT_FALSE(s.GetFixed64(&v64));
  const uint8_t* bytes = nullptr;
  EXPECT_FALSE(s.GetBytes(&bytes, 1));
  EXPECT_TRUE(s.GetBytes(&bytes, 0));
}

TEST(RecordTest, RoundTrip) {
  std::string file;
  EncodeRecord(&file, /*seqno=*/42, "hello payload");
  ASSERT_EQ(file.size(), kRecordHeaderSize + 13);
  RecordHeader hdr;
  const auto* data = reinterpret_cast<const uint8_t*>(file.data());
  ASSERT_EQ(CheckRecord(data, file.size(), &hdr), RecordScan::kOk);
  EXPECT_EQ(hdr.seqno, 42u);
  EXPECT_EQ(hdr.payload_len, 13u);
}

TEST(RecordTest, EmptyPayloadIsValid) {
  std::string file;
  EncodeRecord(&file, 1, "");
  RecordHeader hdr;
  const auto* data = reinterpret_cast<const uint8_t*>(file.data());
  ASSERT_EQ(CheckRecord(data, file.size(), &hdr), RecordScan::kOk);
  EXPECT_EQ(hdr.payload_len, 0u);
}

TEST(RecordTest, DetectsEveryDamageMode) {
  std::string file;
  EncodeRecord(&file, 7, "payload-bytes");
  const auto* data = reinterpret_cast<const uint8_t*>(file.data());
  RecordHeader hdr;

  // Torn header: fewer than kRecordHeaderSize bytes remain.
  EXPECT_EQ(CheckRecord(data, kRecordHeaderSize - 1, &hdr),
            RecordScan::kTornHeader);
  // Torn payload: header intact, payload cut short.
  EXPECT_EQ(CheckRecord(data, kRecordHeaderSize + 3, &hdr),
            RecordScan::kTornPayload);
  // Flipped payload byte: header fine, payload CRC fails.
  {
    std::string bad = file;
    bad[kRecordHeaderSize + 2] ^= 0x40;
    EXPECT_EQ(CheckRecord(reinterpret_cast<const uint8_t*>(bad.data()),
                          bad.size(), &hdr),
              RecordScan::kBadPayload);
  }
  // Flipped header byte: header CRC fails (framing untrustworthy).
  {
    std::string bad = file;
    bad[9] ^= 0x01;  // inside the seqno field
    EXPECT_EQ(CheckRecord(reinterpret_cast<const uint8_t*>(bad.data()),
                          bad.size(), &hdr),
              RecordScan::kBadHeader);
  }
}

TEST(SegmentNameTest, RoundTripAndRejection) {
  const std::string name = SegmentFileName(123456789);
  uint64_t first = 0;
  ASSERT_TRUE(ParseSegmentFileName(name, &first));
  EXPECT_EQ(first, 123456789u);
  // Lexicographic order == numeric order (zero padding).
  EXPECT_LT(SegmentFileName(99), SegmentFileName(100));
  EXPECT_FALSE(ParseSegmentFileName("log-abc.seg", &first));
  EXPECT_FALSE(ParseSegmentFileName("notes.txt", &first));
  EXPECT_FALSE(ParseSegmentFileName("log-00000000000000000001.tmp", &first));
}

TEST(CodecTest, PutRoundTrip) {
  PutProcedure put(/*table=*/3, /*key=*/17, /*value=*/0xABCDu);
  ASSERT_EQ(put.codec_id(), kCodecPut);
  std::string buf;
  EncodeTxn(&buf, put);
  Slice in(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  ProcedurePtr decoded;
  ASSERT_TRUE(DecodeTxn(&in, &decoded).ok());
  EXPECT_EQ(in.remaining(), 0u);
  ASSERT_EQ(decoded->rwset().writes().size(), 1u);
  EXPECT_EQ(decoded->rwset().writes()[0].table, 3u);
  EXPECT_EQ(decoded->rwset().writes()[0].key, 17u);
}

TEST(CodecTest, IncrementRoundTrip) {
  IncrementProcedure inc(/*table=*/0, /*key=*/5, /*delta=*/9);
  ASSERT_EQ(inc.codec_id(), kCodecIncrement);
  std::string buf;
  EncodeTxn(&buf, inc);
  Slice in(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  ProcedurePtr decoded;
  ASSERT_TRUE(DecodeTxn(&in, &decoded).ok());
  EXPECT_EQ(decoded->codec_id(), kCodecIncrement);
  // Behavioral identity: same args re-encode to the same bytes.
  std::string buf2;
  EncodeTxn(&buf2, *decoded);
  EXPECT_EQ(buf, buf2);
}

TEST(CodecTest, YcsbRmwRoundTrip) {
  YcsbRmwProcedure rmw({4, 8, 15, 16, 23, 42}, /*record_size=*/1000);
  ASSERT_EQ(rmw.codec_id(), kCodecYcsbRmw);
  std::string buf;
  EncodeTxn(&buf, rmw);
  Slice in(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  ProcedurePtr decoded;
  ASSERT_TRUE(DecodeTxn(&in, &decoded).ok());
  ASSERT_EQ(decoded->rwset().writes().size(), 6u);
  EXPECT_EQ(decoded->rwset().writes()[5].key, 42u);
  std::string buf2;
  EncodeTxn(&buf2, *decoded);
  EXPECT_EQ(buf, buf2);
}

TEST(CodecTest, GetIsNotLoggable) {
  uint64_t out = 0;
  GetProcedure get(0, 1, &out);
  EXPECT_EQ(get.codec_id(), kNotLoggable);
}

TEST(CodecTest, UnknownIdAndMalformedArgsRejected) {
  std::string buf;
  AppendFixed32(&buf, 999);  // no such codec
  AppendFixed32(&buf, 0);
  Slice in(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  ProcedurePtr decoded;
  EXPECT_TRUE(DecodeTxn(&in, &decoded).IsInvalidArgument());

  std::string truncated;
  AppendFixed32(&truncated, kCodecPut);
  AppendFixed32(&truncated, 3);  // claims 3 arg bytes, provides none
  Slice in2(reinterpret_cast<const uint8_t*>(truncated.data()),
            truncated.size());
  EXPECT_TRUE(DecodeTxn(&in2, &decoded).IsInvalidArgument());
}

TEST(CodecTest, BatchPayloadRoundTrip) {
  PutProcedure put(0, 1, 100);
  IncrementProcedure inc(0, 2, 5);
  std::string payload;
  EncodeBatchPayload(&payload, {&put, &inc});
  std::vector<ProcedurePtr> decoded;
  ASSERT_TRUE(DecodeBatchPayload(
                  reinterpret_cast<const uint8_t*>(payload.data()),
                  payload.size(), &decoded)
                  .ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0]->codec_id(), kCodecPut);
  EXPECT_EQ(decoded[1]->codec_id(), kCodecIncrement);

  // Empty batches are legal (all-read-only batches log an empty record).
  std::string empty;
  EncodeBatchPayload(&empty, {});
  ASSERT_TRUE(DecodeBatchPayload(
                  reinterpret_cast<const uint8_t*>(empty.data()),
                  empty.size(), &decoded)
                  .ok());
  EXPECT_TRUE(decoded.empty());

  // Trailing garbage after the declared transactions is rejected.
  std::string trailing = payload;
  trailing.push_back('x');
  EXPECT_TRUE(DecodeBatchPayload(
                  reinterpret_cast<const uint8_t*>(trailing.data()),
                  trailing.size(), &decoded)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace bohm
