// Heavier multi-threaded stress runs, kept deterministic in their
// *observables* (conservation sums, exactly-once counters) even though
// scheduling is not. These run longer than the unit suites and act as the
// failure-injection net for the invariants the paper's protocol promises.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "harness/engines.h"
#include "test_util.h"
#include "workload/smallbank.h"

namespace bohm {
namespace {

using testutil::OneTable;

TEST(StressTest, BohmHighChurnWithReadersAndAborts) {
  // Tiny pipeline + tiny batches + GC + logic aborts + concurrent client
  // threads + pair readers: every knob that has ever broken a version
  // store, at once.
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 3;
  cfg.batch_size = 8;
  cfg.pipeline_depth = 2;
  cfg.max_dependency_depth = 3;
  constexpr uint64_t kKeys = 4, kInitial = 10'000;
  BohmEngine engine(OneTable(kKeys), cfg);
  uint64_t init = kInitial;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine.Load(0, k, &init).ok());
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kClients = 3, kPerClient = 1500;
  std::vector<std::vector<std::unique_ptr<testutil::ReadPairProcedure>>>
      readers(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(7000 + c);
      for (int i = 0; i < kPerClient; ++i) {
        switch (rng.Uniform(4)) {
          case 0: {
            readers[c].push_back(
                std::make_unique<testutil::ReadPairProcedure>(0, 0, 1));
            ASSERT_TRUE(
                engine.SubmitBorrowed(readers[c].back().get()).ok());
            break;
          }
          case 1:
            ASSERT_TRUE(engine
                            .Submit(std::make_unique<testutil::AbortingIncrement>(
                                0, rng.Uniform(kKeys)))
                            .ok());
            break;
          default: {
            Key src = rng.Uniform(kKeys);
            Key dst = rng.Uniform(kKeys);
            while (dst == src) dst = rng.Uniform(kKeys);
            ASSERT_TRUE(engine
                            .Submit(std::make_unique<testutil::TransferProcedure>(
                                0, src, dst, rng.Uniform(100)))
                            .ok());
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  engine.WaitForIdle();

  // Pair sums observed by every reader must equal the (fixed) pair total.
  for (const auto& per_client : readers) {
    for (const auto& r : per_client) {
      // Keys 0 and 1 exchange money with 2 and 3 too, so the PAIR sum is
      // not invariant — but the snapshot property still means the reader
      // saw values from one consistent cut; verify via the table total
      // instead below. Here we only require the reads completed.
      (void)r;
    }
  }
  uint64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, kKeys * kInitial);
  EXPECT_GT(engine.gc_freed_versions(), 0u);
  engine.Stop();
}

TEST(StressTest, BohmFullTableScansAlwaysSeeInvariantTotal) {
  // Readers that scan the WHOLE table (declared read set over all keys)
  // have a truly invariant observable under transfers: the grand total.
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 3;
  cfg.batch_size = 16;
  constexpr uint64_t kKeys = 8, kInitial = 1000;
  BohmEngine engine(OneTable(kKeys), cfg);
  uint64_t init = kInitial;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine.Load(0, k, &init).ok());
  ASSERT_TRUE(engine.Start().ok());

  class ScanAll final : public StoredProcedure {
   public:
    explicit ScanAll(uint64_t keys) : keys_(keys) {
      for (Key k = 0; k < keys; ++k) set_.AddRead(0, k);
    }
    void Run(TxnOps& ops) override {
      sum_ = 0;
      for (Key k = 0; k < keys_; ++k) sum_ += testutil::ReadU64(ops, 0, k);
    }
    uint64_t sum() const { return sum_; }

   private:
    uint64_t keys_;
    uint64_t sum_ = 0;
  };

  std::vector<std::unique_ptr<ScanAll>> scans;
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    if (i % 7 == 3) {
      scans.push_back(std::make_unique<ScanAll>(kKeys));
      ASSERT_TRUE(engine.SubmitBorrowed(scans.back().get()).ok());
    } else {
      Key src = rng.Uniform(kKeys);
      Key dst = rng.Uniform(kKeys);
      while (dst == src) dst = rng.Uniform(kKeys);
      ASSERT_TRUE(engine
                      .Submit(std::make_unique<testutil::TransferProcedure>(
                          0, src, dst, rng.Uniform(250)))
                      .ok());
    }
  }
  engine.WaitForIdle();
  for (const auto& s : scans) EXPECT_EQ(s->sum(), kKeys * kInitial);
  engine.Stop();
}

class ExecutorStress : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExecutorStress, MixedSmallBankUnderHighContention) {
  // Full five-transaction SmallBank mix, 5 customers, 4 threads: the
  // worst contention the paper's Figure 10 exercises. Afterwards, the
  // books must satisfy: total = initial + deposits - withdrawals, which
  // we cannot know without replay — so check the machine-checkable
  // subset: savings >= 0 and every transaction either committed or
  // logic-aborted (no lost transactions).
  SmallBankConfig cfg;
  cfg.customers = 5;
  auto engine = MakeExecutorEngine(GetParam(), SmallBankCatalog(cfg), 4);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine->Load(t, k, p);
              }).ok());
  constexpr int kPerThread = 600;
  std::atomic<uint64_t> outcomes{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SmallBankGenerator gen(cfg, 31337 + t);
      for (int i = 0; i < kPerThread; ++i) {
        ProcedurePtr p = gen.Make();
        Status s = engine->Execute(*p, t);
        ASSERT_TRUE(s.ok() || s.IsAborted()) << s.ToString();
        outcomes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(outcomes.load(), 4u * kPerThread);
  StatsSnapshot s = engine->Stats();
  EXPECT_EQ(s.commits + s.logic_aborts, 4u * kPerThread);
  for (Key c = 0; c < cfg.customers; ++c) {
    uint64_t raw = 0;
    bool found = false;
    GetProcedure get(kSbSavingsTable, c, &raw, &found);
    ASSERT_TRUE(engine->Execute(get, 0).ok());
    EXPECT_GE(static_cast<int64_t>(raw), 0) << engine->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, ExecutorStress,
                         ::testing::Values(EngineKind::k2PL, EngineKind::kOCC,
                                           EngineKind::kSI,
                                           EngineKind::kHekaton),
                         [](const auto& param_info) {
                           return std::string(EngineKindName(param_info.param));
                         });

TEST(StressTest, BohmSmallBankFullMixHighContention) {
  SmallBankConfig cfg;
  cfg.customers = 5;
  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 3;
  bcfg.batch_size = 16;
  BohmEngine engine(SmallBankCatalog(cfg), bcfg);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());
  SmallBankGenerator gen(cfg, 2222);
  constexpr int kTxns = 3000;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(engine.Submit(gen.Make()).ok());
  }
  engine.WaitForIdle();
  StatsSnapshot s = engine.Stats();
  EXPECT_EQ(s.commits + s.logic_aborts, static_cast<uint64_t>(kTxns));
  EXPECT_EQ(s.cc_aborts, 0u);
  for (Key c = 0; c < cfg.customers; ++c) {
    uint64_t raw = 0;
    ASSERT_TRUE(engine.ReadLatest(kSbSavingsTable, c, &raw).ok());
    EXPECT_GE(static_cast<int64_t>(raw), 0);
  }
  engine.Stop();
}

}  // namespace
}  // namespace bohm
