// Garbage collection (Condition 3, Section 3.3.2) behaviour tests.
#include <gtest/gtest.h>

#include "bohm/engine.h"
#include "common/rand.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

std::unique_ptr<BohmEngine> MakeEngine(uint64_t keys, BohmConfig cfg,
                                       uint64_t initial = 0) {
  auto engine = std::make_unique<BohmEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  EXPECT_TRUE(engine->Start().ok());
  return engine;
}

TEST(BohmGcTest, SupersededVersionsAreFreed) {
  BohmConfig cfg;
  cfg.gc_enabled = true;
  cfg.batch_size = 32;
  cfg.pipeline_depth = 4;
  auto engine = MakeEngine(2, cfg);
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine->WaitForIdle();
  // Values stay correct...
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, static_cast<uint64_t>(kN));
  // ...and a large fraction of the kN superseded versions was recycled.
  // (Some stragglers remain on retire lists because CC threads only drain
  // at batch start; with kN/32 batches the bulk must have been freed.)
  EXPECT_GT(engine->gc_freed_versions(), static_cast<uint64_t>(kN) / 2);
  engine->Stop();
}

TEST(BohmGcTest, DisabledGcFreesNothing) {
  BohmConfig cfg;
  cfg.gc_enabled = false;
  auto engine = MakeEngine(2, cfg);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, 0)).ok());
  }
  engine->WaitForIdle();
  EXPECT_EQ(engine->gc_freed_versions(), 0u);
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 1000u);
  engine->Stop();
}

TEST(BohmGcTest, RecyclingDoesNotCorruptUnderMixedLoad) {
  // Tight pipeline + tiny batches maximize version recycling while
  // transfers and readers race: the invariant sum must hold for every
  // reader and the final state must be exact.
  BohmConfig cfg;
  cfg.gc_enabled = true;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 2;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  constexpr uint64_t kKeys = 4, kInitial = 500;
  auto engine = MakeEngine(kKeys, cfg, kInitial);
  std::vector<std::unique_ptr<testutil::ReadPairProcedure>> readers;
  Rng rng(77);
  for (int i = 0; i < 1200; ++i) {
    if (i % 5 == 0) {
      readers.push_back(std::make_unique<testutil::ReadPairProcedure>(0, 0, 1));
      ASSERT_TRUE(engine->SubmitBorrowed(readers.back().get()).ok());
    } else {
      ASSERT_TRUE(engine
                      ->Submit(std::make_unique<testutil::TransferProcedure>(
                          0, 0, 1, rng.Uniform(7)))
                      .ok());
    }
  }
  engine->WaitForIdle();
  for (const auto& r : readers) EXPECT_EQ(r->sum(), 2 * kInitial);
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &a).ok());
  ASSERT_TRUE(engine->ReadLatest(0, 1, &b).ok());
  EXPECT_EQ(a + b, 2 * kInitial);
  EXPECT_GT(engine->gc_freed_versions(), 0u);
  engine->Stop();
}

TEST(BohmGcTest, FreedVersionsBoundedByCreated) {
  BohmConfig cfg;
  cfg.gc_enabled = true;
  cfg.batch_size = 16;
  auto engine = MakeEngine(4, cfg);
  constexpr int kN = 800;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(
        engine->Submit(std::make_unique<IncrementProcedure>(0, i % 4)).ok());
  }
  engine->WaitForIdle();
  // kN writes create kN versions; at most kN can ever be retired (the
  // newest version of each key is never freed).
  EXPECT_LE(engine->gc_freed_versions(), static_cast<uint64_t>(kN));
  engine->Stop();
}

}  // namespace
}  // namespace bohm
