#include "bohm/table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bohm/version.h"

namespace bohm {
namespace {

TableSpec Spec(uint64_t cap) {
  TableSpec s;
  s.id = 0;
  s.name = "t";
  s.record_size = 8;
  s.capacity = cap;
  return s;
}

TEST(BohmTableTest, PartitionIsStable) {
  BohmTable t(Spec(1000), 4);
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(t.PartitionOf(k), t.PartitionOf(k));
    EXPECT_LT(t.PartitionOf(k), 4u);
  }
}

TEST(BohmTableTest, PartitionsCoverAllThreads) {
  BohmTable t(Spec(100000), 4);
  std::vector<bool> hit(4, false);
  for (Key k = 0; k < 1000; ++k) hit[t.PartitionOf(k)] = true;
  for (bool h : hit) EXPECT_TRUE(h);
}

// Sentinel version pointers: the table never dereferences heads, so tests
// that only exercise index behaviour can use tagged values.
Version* Sentinel(uintptr_t tag) { return reinterpret_cast<Version*>(tag); }

TEST(BohmTableTest, GetOrInsertFindsSame) {
  BohmTable t(Spec(100), 2);
  Key k = 42;
  uint32_t p = t.PartitionOf(k);
  bool ins1 = false;
  bool ins2 = true;
  BohmIndexEntry* e1 = t.GetOrInsert(p, k, Sentinel(1), &ins1);
  BohmIndexEntry* e2 = t.GetOrInsert(p, k, Sentinel(2), &ins2);
  EXPECT_TRUE(ins1);
  EXPECT_FALSE(ins2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t.Find(p, k), e1);
  // The losing initial_head is NOT installed; the first insert's head
  // stays (the caller links further versions itself).
  EXPECT_EQ(e1->head.load(), Sentinel(1));
}

TEST(BohmTableTest, FindMissingReturnsNull) {
  BohmTable t(Spec(100), 2);
  EXPECT_EQ(t.Find(t.PartitionOf(5), 5), nullptr);
}

TEST(BohmTableTest, EntryCountPerPartition) {
  BohmTable t(Spec(1000), 2);
  uint64_t total = 0;
  for (Key k = 0; k < 100; ++k) {
    bool inserted = false;
    (void)t.GetOrInsert(t.PartitionOf(k), k, Sentinel(k + 1), &inserted);
    EXPECT_TRUE(inserted);
  }
  for (uint32_t p = 0; p < 2; ++p) total += t.EntryCount(p);
  EXPECT_EQ(total, 100u);
}

TEST(BohmTableTest, BucketHashIndependentOfPartitionHash) {
  // Regression: partition = HashKey(key) % P and bucket = hash & mask
  // used the SAME hash. With a power-of-two partition count (adaptive
  // mode uses 128-1024) every key in partition p satisfies
  // hash ≡ p (mod P), so only buckets/P bucket slots per partition were
  // reachable — chains ran ~P times longer than the ~1-per-bucket
  // sizing, roughly halving whole-pipeline throughput at P=128. With an
  // independent BucketHash, a dense keyspace at the sized capacity must
  // keep chains near 1 (generous bound: 8).
  constexpr uint64_t kN = 100'000;
  constexpr uint32_t kParts = 128;
  BohmTable t(Spec(kN), kParts);
  for (Key k = 0; k < kN; ++k) {
    bool inserted = false;
    (void)t.GetOrInsert(t.PartitionOf(k), k, Sentinel(k + 1), &inserted);
    ASSERT_TRUE(inserted);
  }
  for (uint32_t p = 0; p < kParts; ++p) {
    EXPECT_LE(t.MaxChainLength(p), 8u) << "partition " << p;
  }
}

TEST(BohmTableTest, ManyKeysNoCollisionLoss) {
  constexpr uint64_t kN = 50000;
  BohmTable t(Spec(kN), 3);
  for (Key k = 0; k < kN; ++k) {
    bool inserted = false;
    (void)t.GetOrInsert(t.PartitionOf(k), k, Sentinel(k + 1), &inserted);
  }
  for (Key k = 0; k < kN; ++k) {
    ASSERT_NE(t.Find(t.PartitionOf(k), k), nullptr) << k;
  }
}

TEST(BohmTableTest, ConcurrentReadersDuringOwnerInserts) {
  // One owner thread inserts into its partition while readers look up:
  // readers must only ever see fully-initialized entries (correct key,
  // initialized head, never a crash), the single-writer/multi-reader
  // discipline of Section 3.3.1.
  //
  // `published` starts at -1 ("nothing inserted yet"): the seed version of
  // this test initialized it to 0, so a reader racing ahead of the owner's
  // very first insert probed key 0 before it existed and reported a
  // missing entry — the ~5/12 TSan flake of ROADMAP item 1b.
  BohmTable t(Spec(100000), 1);  // single partition: all keys owned by 0
  constexpr int64_t kMax = 20000;
  std::atomic<int64_t> published{-1};
  std::atomic<bool> failed{false};

  std::thread owner([&] {
    for (int64_t k = 0; k < kMax; ++k) {
      bool inserted = false;
      (void)t.GetOrInsert(0, static_cast<Key>(k), Sentinel(k + 1), &inserted);
      published.store(k, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (published.load(std::memory_order_acquire) < kMax - 1) {
        int64_t upto = published.load(std::memory_order_acquire);
        for (int64_t k = 0; k <= upto; k += 97) {
          BohmIndexEntry* e = t.Find(0, static_cast<Key>(k));
          if (e == nullptr || e->key != static_cast<Key>(k) ||
              e->head.load(std::memory_order_acquire) == nullptr) {
            failed.store(true, std::memory_order_release);
            return;
          }
        }
      }
    });
  }
  owner.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());
}

TEST(BohmTableTest, FindNeverObservesUninitializedHead) {
  // Publication-ordering regression (ROADMAP item 1b): GetOrInsert must
  // install the version-chain head *before* release-publishing the entry
  // into the bucket chain. The readers chase the owner's publication edge
  // — they spin on Find() for exactly the key being inserted and inspect
  // the head the moment the entry appears — so an implementation that
  // publishes first and installs the head afterwards (the seed tree's
  // cc_worker/Load sequence) is caught within a handful of keys; under
  // TSan's scheduler the window is torn wide open.
  BohmTable t(Spec(100000), 1);
  constexpr int64_t kMax = 20000;
  std::atomic<int64_t> inserting{-1};
  std::atomic<uint64_t> bad_heads{0};
  std::atomic<uint64_t> observed{0};

  // Readers sweep every key exactly once and terminate on their own: once
  // the owner has inserted key k, Find(k) eventually succeeds, so the
  // sweep always completes — no stop flag, and each reader deterministically
  // inspects all kMax entries however the threads are scheduled.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int64_t k = 0; k < kMax;) {
        // Only probe keys the owner has started inserting; probing ahead
        // would just return nullptr (absent key), which is fine but noise.
        if (inserting.load(std::memory_order_acquire) < k) continue;
        BohmIndexEntry* e = t.Find(0, static_cast<Key>(k));
        if (e == nullptr) continue;  // not published yet: retry same key
        observed.fetch_add(1, std::memory_order_relaxed);
        if (e->head.load(std::memory_order_acquire) == nullptr) {
          bad_heads.fetch_add(1, std::memory_order_relaxed);
        }
        ++k;
      }
    });
  }

  for (int64_t k = 0; k < kMax; ++k) {
    inserting.store(k, std::memory_order_release);
    bool inserted = false;
    (void)t.GetOrInsert(0, static_cast<Key>(k), Sentinel(k + 1), &inserted);
    ASSERT_TRUE(inserted);
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad_heads.load(), 0u)
      << "a Find() returned an entry whose version chain head was not yet "
         "installed — entry published before initialization";
  EXPECT_EQ(observed.load(), 2u * kMax);
}

TEST(VersionAllocatorTest, AllocInitializesFields) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 8);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->begin_ts, kLoadTs);
  EXPECT_EQ(v->end_ts.load(), kInfinityTs);
  EXPECT_FALSE(v->ready());
  EXPECT_FALSE(v->tombstone());
  EXPECT_EQ(v->prev, nullptr);
  EXPECT_EQ(v->producer, nullptr);
}

TEST(VersionAllocatorTest, FreeListRecycles) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 8);
  v->begin_ts = 55;
  v->flags.store(kVersionReady, std::memory_order_relaxed);
  alloc.Free(v);
  EXPECT_EQ(alloc.FreeCount(), 1u);
  Version* v2 = alloc.Alloc(0, 8);
  EXPECT_EQ(v2, v);  // recycled
  EXPECT_EQ(v2->begin_ts, kLoadTs);  // re-initialized
  EXPECT_FALSE(v2->ready());
  EXPECT_EQ(alloc.FreeCount(), 0u);
}

TEST(VersionAllocatorTest, PerTableFreeLists) {
  VersionAllocator alloc;
  Version* small = alloc.Alloc(0, 8);
  Version* big = alloc.Alloc(1, 1000);
  alloc.Free(small);
  alloc.Free(big);
  EXPECT_EQ(alloc.FreeCount(), 2u);
  // Allocation for table 1 must come from table 1's list (payload size!).
  Version* big2 = alloc.Alloc(1, 1000);
  EXPECT_EQ(big2, big);
  std::memset(big2->data(), 0xEE, 1000);  // fully usable
}

TEST(VersionTest, PayloadContiguous) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 64);
  EXPECT_EQ(v->data(), static_cast<void*>(v + 1));
  std::memset(v->data(), 0x11, 64);
}

TEST(BohmDatabaseTest, TablesConstructed) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(Spec(100)).ok());
  BohmDatabase db(c, 4);
  EXPECT_NE(db.table(0), nullptr);
  EXPECT_EQ(db.table(1), nullptr);
  EXPECT_EQ(db.partitions(), 4u);
  EXPECT_EQ(db.table(0)->partitions(), 4u);
}

}  // namespace
}  // namespace bohm
