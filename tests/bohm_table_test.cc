#include "bohm/table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bohm/version.h"

namespace bohm {
namespace {

TableSpec Spec(uint64_t cap) {
  TableSpec s;
  s.id = 0;
  s.name = "t";
  s.record_size = 8;
  s.capacity = cap;
  return s;
}

TEST(BohmTableTest, PartitionIsStable) {
  BohmTable t(Spec(1000), 4);
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(t.PartitionOf(k), t.PartitionOf(k));
    EXPECT_LT(t.PartitionOf(k), 4u);
  }
}

TEST(BohmTableTest, PartitionsCoverAllThreads) {
  BohmTable t(Spec(100000), 4);
  std::vector<bool> hit(4, false);
  for (Key k = 0; k < 1000; ++k) hit[t.PartitionOf(k)] = true;
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(BohmTableTest, GetOrInsertFindsSame) {
  BohmTable t(Spec(100), 2);
  Key k = 42;
  uint32_t p = t.PartitionOf(k);
  BohmIndexEntry* e1 = t.GetOrInsert(p, k);
  BohmIndexEntry* e2 = t.GetOrInsert(p, k);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(t.Find(p, k), e1);
}

TEST(BohmTableTest, FindMissingReturnsNull) {
  BohmTable t(Spec(100), 2);
  EXPECT_EQ(t.Find(t.PartitionOf(5), 5), nullptr);
}

TEST(BohmTableTest, EntryCountPerPartition) {
  BohmTable t(Spec(1000), 2);
  uint64_t total = 0;
  for (Key k = 0; k < 100; ++k) {
    (void)t.GetOrInsert(t.PartitionOf(k), k);
  }
  for (uint32_t p = 0; p < 2; ++p) total += t.EntryCount(p);
  EXPECT_EQ(total, 100u);
}

TEST(BohmTableTest, ManyKeysNoCollisionLoss) {
  constexpr uint64_t kN = 50000;
  BohmTable t(Spec(kN), 3);
  for (Key k = 0; k < kN; ++k) {
    (void)t.GetOrInsert(t.PartitionOf(k), k);
  }
  for (Key k = 0; k < kN; ++k) {
    ASSERT_NE(t.Find(t.PartitionOf(k), k), nullptr) << k;
  }
}

TEST(BohmTableTest, ConcurrentReadersDuringOwnerInserts) {
  // One owner thread inserts into its partition while readers look up:
  // readers must only ever see fully-initialized entries (correct key,
  // never a crash), the single-writer/multi-reader discipline of
  // Section 3.3.1.
  BohmTable t(Spec(100000), 1);  // single partition: all keys owned by 0
  constexpr Key kMax = 20000;
  std::atomic<Key> published{0};
  std::atomic<bool> failed{false};

  std::thread owner([&] {
    for (Key k = 0; k < kMax; ++k) {
      BohmIndexEntry* e = t.GetOrInsert(0, k);
      e->head.store(reinterpret_cast<Version*>(k + 1),
                    std::memory_order_release);
      published.store(k, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (published.load(std::memory_order_acquire) < kMax - 1) {
        Key upto = published.load(std::memory_order_acquire);
        for (Key k = 0; k <= upto; k += 97) {
          BohmIndexEntry* e = t.Find(0, k);
          if (e == nullptr || e->key != k) {
            failed.store(true, std::memory_order_release);
            return;
          }
        }
      }
    });
  }
  owner.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());
}

TEST(VersionAllocatorTest, AllocInitializesFields) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 8);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->begin_ts, kLoadTs);
  EXPECT_EQ(v->end_ts.load(), kInfinityTs);
  EXPECT_FALSE(v->ready());
  EXPECT_FALSE(v->tombstone());
  EXPECT_EQ(v->prev, nullptr);
  EXPECT_EQ(v->producer, nullptr);
}

TEST(VersionAllocatorTest, FreeListRecycles) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 8);
  v->begin_ts = 55;
  v->flags.store(kVersionReady, std::memory_order_relaxed);
  alloc.Free(v);
  EXPECT_EQ(alloc.FreeCount(), 1u);
  Version* v2 = alloc.Alloc(0, 8);
  EXPECT_EQ(v2, v);  // recycled
  EXPECT_EQ(v2->begin_ts, kLoadTs);  // re-initialized
  EXPECT_FALSE(v2->ready());
  EXPECT_EQ(alloc.FreeCount(), 0u);
}

TEST(VersionAllocatorTest, PerTableFreeLists) {
  VersionAllocator alloc;
  Version* small = alloc.Alloc(0, 8);
  Version* big = alloc.Alloc(1, 1000);
  alloc.Free(small);
  alloc.Free(big);
  EXPECT_EQ(alloc.FreeCount(), 2u);
  // Allocation for table 1 must come from table 1's list (payload size!).
  Version* big2 = alloc.Alloc(1, 1000);
  EXPECT_EQ(big2, big);
  std::memset(big2->data(), 0xEE, 1000);  // fully usable
}

TEST(VersionTest, PayloadContiguous) {
  VersionAllocator alloc;
  Version* v = alloc.Alloc(0, 64);
  EXPECT_EQ(v->data(), static_cast<void*>(v + 1));
  std::memset(v->data(), 0x11, 64);
}

TEST(BohmDatabaseTest, TablesConstructed) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(Spec(100)).ok());
  BohmDatabase db(c, 4);
  EXPECT_NE(db.table(0), nullptr);
  EXPECT_EQ(db.table(1), nullptr);
  EXPECT_EQ(db.partitions(), 4u);
  EXPECT_EQ(db.table(0)->partitions(), 4u);
}

}  // namespace
}  // namespace bohm
