#include "mvocc/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

std::unique_ptr<MVOccEngine> MakeEngine(MVOccMode mode, uint64_t keys,
                                        uint32_t threads,
                                        uint64_t initial = 0) {
  MVOccConfig cfg;
  cfg.mode = mode;
  cfg.threads = threads;
  auto engine = std::make_unique<MVOccEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  return engine;
}

class MVOccModeTest : public ::testing::TestWithParam<MVOccMode> {};

TEST_P(MVOccModeTest, PutThenRead) {
  auto engine = MakeEngine(GetParam(), 8, 1);
  PutProcedure put(0, 3, 42);
  ASSERT_TRUE(engine->Execute(put, 0).ok());
  uint64_t out = 0;
  bool found = false;
  GetProcedure get(0, 3, &out, &found);
  ASSERT_TRUE(engine->Execute(get, 0).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 42u);
}

TEST_P(MVOccModeTest, SequentialIncrements) {
  auto engine = MakeEngine(GetParam(), 4, 1);
  for (int i = 0; i < 200; ++i) {
    IncrementProcedure inc(0, 1);
    ASSERT_TRUE(engine->Execute(inc, 0).ok());
  }
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 1, &out).ok());
  EXPECT_EQ(out, 200u);
  EXPECT_EQ(engine->Stats().commits, 200u);
}

TEST_P(MVOccModeTest, ReadMissingKeyIsNull) {
  auto engine = MakeEngine(GetParam(), 4, 1);
  uint64_t out = 7;
  bool found = true;
  GetProcedure get(0, 3, &out, &found);  // loaded with zero... use key out of range
  ASSERT_TRUE(engine->Execute(get, 0).ok());
  EXPECT_TRUE(found);  // key 3 was loaded
  uint64_t out2 = 7;
  bool found2 = true;
  GetProcedure get2(0, 9999, &out2, &found2);
  ASSERT_TRUE(engine->Execute(get2, 0).ok());
  EXPECT_FALSE(found2);
}

TEST_P(MVOccModeTest, LogicAbortRollsBack) {
  auto engine = MakeEngine(GetParam(), 4, 1, /*initial=*/50);
  testutil::AbortingIncrement proc(0, 2);
  EXPECT_TRUE(engine->Execute(proc, 0).IsAborted());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 50u);
  EXPECT_EQ(engine->Stats().logic_aborts, 1u);
  EXPECT_EQ(engine->Stats().commits, 0u);
}

TEST_P(MVOccModeTest, ClockAdvancesAtLeastTwicePerTxn) {
  // The paper's Section 4.2.2 point: the global counter is incremented at
  // least twice per transaction, conflict or not.
  auto engine = MakeEngine(GetParam(), 4, 1);
  uint64_t before = engine->clock();
  for (int i = 0; i < 50; ++i) {
    IncrementProcedure inc(0, 0);
    ASSERT_TRUE(engine->Execute(inc, 0).ok());
  }
  EXPECT_GE(engine->clock() - before, 100u);
}

TEST_P(MVOccModeTest, ConcurrentDisjointIncrements) {
  auto engine = MakeEngine(GetParam(), 64, 4);
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        IncrementProcedure inc(0, t * 16 + rng.Uniform(16));
        ASSERT_TRUE(engine->Execute(inc, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (Key k = 0; k < 64; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, 4u * kPerThread);
}

TEST_P(MVOccModeTest, ContendedIncrementsAllCommitEventually) {
  // First-updater-wins forces retries, but retry-on-abort must preserve
  // exactly-once effects: total equals the number of Execute calls.
  auto engine = MakeEngine(GetParam(), 2, 4);
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        IncrementProcedure inc(0, 0);
        ASSERT_TRUE(engine->Execute(inc, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 4u * kPerThread);
  EXPECT_EQ(engine->Stats().commits, 4u * kPerThread);
}

TEST_P(MVOccModeTest, TransfersConserveUnderContention) {
  constexpr uint64_t kKeys = 4, kInitial = 1000;
  auto engine = MakeEngine(GetParam(), kKeys, 4, kInitial);
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        Key src = rng.Uniform(kKeys);
        Key dst = rng.Uniform(kKeys);
        while (dst == src) dst = rng.Uniform(kKeys);
        testutil::TransferProcedure xfer(0, src, dst, rng.Uniform(5));
        ASSERT_TRUE(engine->Execute(xfer, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, kKeys * kInitial);
}

INSTANTIATE_TEST_SUITE_P(Modes, MVOccModeTest,
                         ::testing::Values(MVOccMode::kHekaton,
                                           MVOccMode::kSnapshotIsolation));

TEST(MVOccTest, WriteWriteConflictAborts) {
  // Two overlapped writers to the same record: first-updater-wins must
  // abort (and retry) at least one of them; effects remain exactly-once.
  auto engine = MakeEngine(MVOccMode::kSnapshotIsolation, 1, 2);
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        IncrementProcedure inc(0, 0);
        ASSERT_TRUE(engine->Execute(inc, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 2u * kPerThread);
}

TEST(MVOccTest, SnapshotReadsIgnoreLaterCommits) {
  // A transaction's reads all come from its begin snapshot: a pair-reader
  // racing with sum-preserving transfers must always observe the invariant
  // sum under SI (and under Hekaton, which additionally validates).
  for (MVOccMode mode :
       {MVOccMode::kSnapshotIsolation, MVOccMode::kHekaton}) {
    auto engine = MakeEngine(mode, 2, 3, /*initial=*/100);
    std::atomic<bool> stop{false};
    std::atomic<bool> violated{false};
    std::thread writer1([&] {
      Rng rng(1);
      while (!stop.load()) {
        testutil::TransferProcedure xfer(0, 0, 1, rng.Uniform(5));
        (void)engine->Execute(xfer, 0);
      }
    });
    std::thread writer2([&] {
      Rng rng(2);
      while (!stop.load()) {
        testutil::TransferProcedure xfer(0, 1, 0, rng.Uniform(5));
        (void)engine->Execute(xfer, 1);
      }
    });
    for (int i = 0; i < 300; ++i) {
      testutil::ReadPairProcedure reader(0, 0, 1);
      ASSERT_TRUE(engine->Execute(reader, 2).ok());
      if (reader.sum() != 200) violated.store(true);
    }
    stop.store(true);
    writer1.join();
    writer2.join();
    EXPECT_FALSE(violated.load()) << "mode " << static_cast<int>(mode);
  }
}

TEST(MVOccTest, HekatonValidationDetectsStaleRead) {
  // Force: T reads A, then another txn updates A and commits, then T
  // updates B and tries to commit. Hekaton must abort T's first attempt
  // (read not repeatable at end timestamp); the retry succeeds.
  auto engine = MakeEngine(MVOccMode::kHekaton, 2, 2, /*initial=*/1);

  std::atomic<int> phase{0};
  class StaleReader final : public StoredProcedure {
   public:
    StaleReader(std::atomic<int>* phase) : phase_(phase) {
      set_.AddRead(0, 0);
      set_.AddRmw(0, 1);
    }
    void Run(TxnOps& ops) override {
      uint64_t a = testutil::ReadU64(ops, 0, 0);
      if (runs_++ == 0) {
        // Signal the interferer and wait for its commit.
        phase_->store(1);
        while (phase_->load() != 2) std::this_thread::yield();
      }
      uint64_t b = testutil::ReadU64(ops, 0, 1);
      testutil::WriteU64(ops, 0, 1, a + b);
    }
    int runs() const { return runs_; }

   private:
    std::atomic<int>* phase_;
    int runs_ = 0;
  };

  std::thread interferer([&] {
    while (phase.load() != 1) std::this_thread::yield();
    IncrementProcedure inc(0, 0);
    ASSERT_TRUE(engine->Execute(inc, 1).ok());
    phase.store(2);
  });

  StaleReader proc(&phase);
  ASSERT_TRUE(engine->Execute(proc, 0).ok());
  interferer.join();
  EXPECT_GE(proc.runs(), 2);                       // first attempt aborted
  EXPECT_GE(engine->Stats().cc_aborts, 1u);        // validation failure
  uint64_t b = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 1, &b).ok());
  EXPECT_EQ(b, 3u);  // retry saw A = 2: B = 2 + 1
}

TEST(MVOccTest, CommitDependencyCascadeKeepsConsistency) {
  // Speculative reads under commit dependencies must never leak an
  // aborted writer's value. Run aborting writers against readers and
  // check the reader only ever observes committed values (multiples of 3).
  auto engine = MakeEngine(MVOccMode::kHekaton, 1, 2, /*initial=*/0);
  class AddThree final : public StoredProcedure {
   public:
    AddThree() { set_.AddRmw(0, 0); }
    void Run(TxnOps& ops) override {
      testutil::WriteU64(ops, 0, 0, testutil::ReadU64(ops, 0, 0) + 3);
    }
  };
  class AddOneAbort final : public StoredProcedure {
   public:
    AddOneAbort() { set_.AddRmw(0, 0); }
    void Run(TxnOps& ops) override {
      testutil::WriteU64(ops, 0, 0, testutil::ReadU64(ops, 0, 0) + 1);
      ops.Abort();
    }
  };
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread writer([&] {
    Rng rng(3);
    while (!stop.load()) {
      if (rng.Uniform(2) == 0) {
        AddThree p;
        (void)engine->Execute(p, 0);
      } else {
        AddOneAbort p;
        (void)engine->Execute(p, 0);
      }
    }
  });
  for (int i = 0; i < 500; ++i) {
    uint64_t out = 0;
    bool found = false;
    GetProcedure get(0, 0, &out, &found);
    ASSERT_TRUE(engine->Execute(get, 1).ok());
    if (out % 3 != 0) bad.store(true);
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(bad.load());
}

TEST(MVOccTest, StatsTrackRetries) {
  auto engine = MakeEngine(MVOccMode::kSnapshotIsolation, 1, 2);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        IncrementProcedure inc(0, 0);
        (void)engine->Execute(inc, t);
      }
    });
  }
  for (auto& th : threads) th.join();
  StatsSnapshot s = engine->Stats();
  EXPECT_EQ(s.commits, 1000u);
  EXPECT_EQ(s.retries, s.cc_aborts);
}

TEST(MVOccTest, BadThreadIdRejected) {
  auto engine = MakeEngine(MVOccMode::kHekaton, 1, 1);
  PutProcedure p(0, 0, 1);
  EXPECT_TRUE(engine->Execute(p, 5).IsInvalidArgument());
}

TEST(MVOccTest, LoadOutsideCapacityRejected) {
  auto engine = MakeEngine(MVOccMode::kHekaton, 4, 1);
  uint64_t v = 0;
  EXPECT_TRUE(engine->Load(0, 100, &v).IsInvalidArgument());
}

}  // namespace
}  // namespace bohm
