// Crash-recovery proof suite for the durable sequencer log.
//
// The correctness claim under test (docs/DURABILITY.md): after any crash,
// Recover() rebuilds exactly the state produced by serially executing the
// durable committed prefix of the log — torn or corrupt tails are
// truncated and never replayed, and mid-log damage is refused rather than
// skipped. The serial oracle is deliberately trivial: decode the intact
// log with ReadBatchLog and apply each transaction to a plain map. If the
// engine's recovered multi-version state ever diverges from that map, the
// pipeline's determinism (or the log's framing) is broken.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bohm/engine.h"
#include "log/batch_log.h"
#include "log/fault_env.h"
#include "log/log_reader.h"
#include "log/record.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

constexpr uint64_t kKeys = 16;
constexpr uint64_t kTxns = 60;

// ----------------------------------------------------------------------
// Serial oracle: a map plus a TxnOps that reads/writes it directly.
// Single table of 8-byte records (all tests here use OneTable).

class OracleOps final : public TxnOps {
 public:
  explicit OracleOps(std::map<Key, uint64_t>* db) : db_(db) {}
  const void* Read(TableId, Key key) override {
    auto it = db_->find(key);
    if (it == db_->end()) return nullptr;
    scratch_ = it->second;
    return &scratch_;
  }
  void* Write(TableId, Key key) override { return &(*db_)[key]; }
  void Abort() override { aborted_ = true; }
  bool aborted() const override { return aborted_; }

 private:
  std::map<Key, uint64_t>* db_;
  uint64_t scratch_ = 0;
  bool aborted_ = false;
};

std::map<Key, uint64_t> FreshOracle() {
  std::map<Key, uint64_t> db;
  for (Key k = 0; k < kKeys; ++k) db[k] = 0;
  return db;
}

/// Applies every batch with seqno < `limit_seqno` to the oracle.
void ApplyBatches(std::map<Key, uint64_t>* db,
                  const std::vector<ReplayedBatch>& batches,
                  uint64_t limit_seqno = UINT64_MAX) {
  for (const ReplayedBatch& b : batches) {
    if (b.seqno >= limit_seqno) break;
    for (const ProcedurePtr& txn : b.txns) {
      OracleOps ops(db);
      txn->Run(ops);
    }
  }
}

/// Asserts the engine's committed state equals the oracle on every key.
void ExpectStateEquals(const BohmEngine& engine,
                       const std::map<Key, uint64_t>& oracle,
                       const char* what) {
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok()) << what << " key " << k;
    EXPECT_EQ(v, oracle.at(k)) << what << " key " << k;
  }
}

// ----------------------------------------------------------------------
// Harness

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("bohm_recovery_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string Dir(const std::string& name) const {
    return (root_ / name).string();
  }

  static BohmConfig Config(const std::string& dir,
                           FsyncPolicy policy = FsyncPolicy::kNone,
                           LogEnv* env = nullptr) {
    BohmConfig cfg;
    cfg.cc_threads = 2;
    cfg.exec_threads = 2;
    cfg.batch_size = 8;  // kTxns txns span several batches
    cfg.durability.enabled = true;
    cfg.durability.dir = dir;
    cfg.durability.fsync_policy = policy;
    cfg.durability.env = env;
    return cfg;
  }

  static std::unique_ptr<BohmEngine> MakeEngine(const BohmConfig& cfg) {
    auto engine = std::make_unique<BohmEngine>(OneTable(kKeys), cfg);
    uint64_t zero = 0;
    for (Key k = 0; k < kKeys; ++k) {
      EXPECT_TRUE(engine->Load(0, k, &zero).ok());
    }
    return engine;
  }

  /// The deterministic workload every test replays: a fixed mix of blind
  /// puts and read-modify-write increments across kKeys records.
  static ProcedurePtr WorkloadTxn(uint64_t i) {
    if (i % 3 == 0) {
      return std::make_unique<PutProcedure>(0, i % kKeys, 1000 + i);
    }
    return std::make_unique<IncrementProcedure>(0, (i * 7) % kKeys, i + 1);
  }

  static void SubmitWorkload(BohmEngine* engine, uint64_t from, uint64_t to) {
    for (uint64_t i = from; i < to; ++i) {
      ASSERT_TRUE(engine->Submit(WorkloadTxn(i)).ok()) << "txn " << i;
    }
  }

  std::filesystem::path root_;
};

// ----------------------------------------------------------------------
// Clean paths

TEST_F(RecoveryTest, EmptyDirRecoversToEmpty) {
  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_EQ(engine->recovery_stats().batches, 0u);
  EXPECT_EQ(engine->recovery_stats().last_seqno, 0u);
  // The recovered-empty engine is a fully working engine.
  SubmitWorkload(engine.get(), 0, 10);
  engine->WaitForIdle();
  engine->Stop();
}

TEST_F(RecoveryTest, CleanShutdownRecoversAll) {
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }

  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("log"), LogEnv::Default(), &batches, &scan).ok());
  EXPECT_FALSE(scan.tail_truncated);
  EXPECT_EQ(scan.txns, kTxns);
  auto oracle = FreshOracle();
  ApplyBatches(&oracle, batches);

  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_EQ(engine->recovery_stats().txns, kTxns);
  EXPECT_FALSE(engine->recovery_stats().tail_truncated);
  ExpectStateEquals(*engine, oracle, "clean recovery");
  engine->Stop();
}

TEST_F(RecoveryTest, StartOnNonEmptyDirRejected) {
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, 10);
    engine->Stop();
  }
  auto engine = MakeEngine(Config(Dir("log")));
  // Start() on a non-empty log would fork the seqno history; the engine
  // insists on Recover().
  Status st = engine->Start();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  ASSERT_TRUE(engine->Recover().ok());
  engine->Stop();
}

TEST_F(RecoveryTest, RecoveredEngineContinuesTheLog) {
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  // Second life: recover, then keep going — the new batches must extend
  // the persisted seqno sequence without a gap or overlap.
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Recover().ok());
    SubmitWorkload(engine.get(), kTxns, kTxns + 20);
    engine->WaitForIdle();
    engine->Stop();
  }
  // Third life sees one continuous history of all kTxns + 20 txns.
  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("log"), LogEnv::Default(), &batches, &scan).ok());
  EXPECT_EQ(scan.txns, kTxns + 20);
  auto oracle = FreshOracle();
  ApplyBatches(&oracle, batches);

  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_EQ(engine->recovery_stats().txns, kTxns + 20);
  ExpectStateEquals(*engine, oracle, "second recovery");
  engine->Stop();
}

TEST_F(RecoveryTest, ShutdownWithInflightWorkLosesNothing) {
  // Satellite 3: Stop() without WaitForIdle must drain every accepted
  // submission through the sequencer, the log, and execution — a clean
  // shutdown never drops work it accepted.
  {
    auto engine = MakeEngine(Config(Dir("log"), FsyncPolicy::kGroup));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->Stop();  // no WaitForIdle: the pipeline is still full
  }
  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("log"), LogEnv::Default(), &batches, &scan).ok());
  EXPECT_EQ(scan.txns, kTxns);  // every accepted txn reached the log
  auto oracle = FreshOracle();
  ApplyBatches(&oracle, batches);

  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  ExpectStateEquals(*engine, oracle, "inflight shutdown");
  engine->Stop();
}

// ----------------------------------------------------------------------
// Crash matrix: every way a tail can die

struct TailDamage {
  const char* name;
  // Truncation point relative to the victim record's span (UINT64_MAX:
  // no truncation — this case flips a byte instead).
  uint64_t truncate_delta;
  uint64_t flip_delta;  // only when truncate_delta == UINT64_MAX
  bool expect_repair;   // recovery reports tail_truncated
};

TEST_F(RecoveryTest, CrashMatrixRecoversDurablePrefix) {
  // One intact run, then every damage mode is applied to a fresh copy of
  // the log and recovery must yield exactly the surviving prefix.
  {
    auto engine = MakeEngine(Config(Dir("intact")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  std::vector<ReplayedBatch> durable;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("intact"), LogEnv::Default(), &durable, &scan).ok());
  std::vector<RecordSpan> spans;
  ASSERT_TRUE(
      ScanRecordSpans(Dir("intact"), LogEnv::Default(), &spans).ok());
  ASSERT_GE(spans.size(), 4u) << "need several records for a useful matrix";

  const TailDamage kMatrix[] = {
      // A crash exactly at a record boundary: the shorter log is simply a
      // valid earlier state, nothing to repair.
      {"cut-at-boundary", 0, 0, false},
      // One byte of the next header made it to disk.
      {"torn-header-1b", 1, 0, true},
      // Header almost complete.
      {"torn-header-23b", kRecordHeaderSize - 1, 0, true},
      // Header complete, payload cut short.
      {"torn-payload", kRecordHeaderSize + 1, 0, true},
      // All but the last payload byte made it.
      {"almost-whole", UINT64_MAX - 1, 0, true},  // length - 1, see below
      // Bit rot in the last record's payload.
      {"flipped-payload", UINT64_MAX, kRecordHeaderSize + 2, true},
      // Bit rot in the last record's header.
      {"flipped-header", UINT64_MAX, 9, true},
  };

  int case_id = 0;
  for (const TailDamage& dmg : kMatrix) {
    SCOPED_TRACE(dmg.name);
    const std::string dir = Dir("case" + std::to_string(case_id++));
    std::filesystem::copy(Dir("intact"), dir,
                          std::filesystem::copy_options::recursive);

    // Truncation cases pick a victim in the middle of the tail region;
    // flips must target the last record (mid-log damage is a different
    // test). Paths inside the copy mirror the intact layout.
    const RecordSpan& victim = (dmg.truncate_delta == UINT64_MAX)
                                   ? spans.back()
                                   : spans[spans.size() - 2];
    const std::string victim_path =
        dir + victim.path.substr(Dir("intact").size());

    if (dmg.truncate_delta != UINT64_MAX) {
      uint64_t delta = dmg.truncate_delta;
      if (dmg.truncate_delta == UINT64_MAX - 1) delta = victim.length - 1;
      ASSERT_TRUE(LogEnv::Default()
                      ->TruncateFile(victim_path, victim.offset + delta)
                      .ok());
    } else {
      FaultLogEnv surgeon;
      ASSERT_TRUE(
          surgeon.FlipByte(victim_path, victim.offset + dmg.flip_delta, 0x20)
              .ok());
    }

    auto oracle = FreshOracle();
    ApplyBatches(&oracle, durable, /*limit_seqno=*/victim.seqno);

    auto engine = MakeEngine(Config(dir));
    Status st = engine->Recover();
    ASSERT_TRUE(st.ok()) << dmg.name << ": " << st.ToString();
    EXPECT_EQ(engine->recovery_stats().tail_truncated, dmg.expect_repair);
    if (dmg.expect_repair) {
      EXPECT_GT(engine->recovery_stats().truncated_bytes, 0u);
    }
    EXPECT_EQ(engine->recovery_stats().last_seqno, victim.seqno - 1);
    ExpectStateEquals(*engine, oracle, dmg.name);

    // The repaired log must itself recover cleanly (repair is idempotent
    // and leaves a valid log behind).
    engine->Stop();
    auto engine2 = MakeEngine(Config(dir));
    ASSERT_TRUE(engine2->Recover().ok()) << dmg.name << " second pass";
    engine2->Stop();
  }
}

TEST_F(RecoveryTest, MidLogCorruptionIsRefused) {
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  std::vector<RecordSpan> spans;
  ASSERT_TRUE(ScanRecordSpans(Dir("log"), LogEnv::Default(), &spans).ok());
  ASSERT_GE(spans.size(), 3u);

  // Damage the FIRST record: valid records beyond it prove this is not a
  // crash tail, so recovery must refuse rather than replay around a hole.
  FaultLogEnv surgeon;
  ASSERT_TRUE(surgeon
                  .FlipByte(spans[0].path,
                            spans[0].offset + kRecordHeaderSize + 1, 0x10)
                  .ok());

  auto engine = MakeEngine(Config(Dir("log")));
  Status st = engine->Recover();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

TEST_F(RecoveryTest, MissingLeadingSegmentIsRefused) {
  // A log whose earliest surviving segment does not start at seqno 1 is
  // a suffix of history, not history: replaying it would silently diverge
  // from the pre-crash state, so recovery must refuse.
  BohmConfig cfg = Config(Dir("log"));
  cfg.durability.segment_bytes = 256;  // force several segments
  {
    auto engine = MakeEngine(cfg);
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  std::vector<std::filesystem::path> segments;
  for (const auto& e : std::filesystem::directory_iterator(Dir("log"))) {
    uint64_t first;
    if (ParseSegmentFileName(e.path().filename().string(), &first)) {
      segments.push_back(e.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 2u) << "need rotation for this test";
  std::filesystem::remove(segments.front());

  auto engine = MakeEngine(Config(Dir("log")));
  Status st = engine->Recover();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

TEST_F(RecoveryTest, MisnamedSegmentIsRefused) {
  // A segment whose filename seqno disagrees with the running sequence
  // (here: the only segment renamed to claim it starts at 2) means the
  // directory and its contents no longer tell the same story.
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  const std::filesystem::path dir(Dir("log"));
  std::filesystem::rename(dir / SegmentFileName(1), dir / SegmentFileName(2));

  auto engine = MakeEngine(Config(Dir("log")));
  Status st = engine->Recover();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

// ----------------------------------------------------------------------
// Durability of the metadata the data fsyncs don't cover

TEST_F(RecoveryTest, SegmentCreationSyncsTheDirectory) {
  FaultLogEnv fault;
  {
    auto engine = MakeEngine(Config(Dir("log"), FsyncPolicy::kNone, &fault));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, 10);
    engine->WaitForIdle();
    engine->Stop();
  }
  // Open() syncs the log dir's entry in its parent; the first segment's
  // creation syncs the log directory itself — both before any record in
  // the segment could be reported durable.
  EXPECT_GE(fault.dir_syncs(), 2u);
}

TEST_F(RecoveryTest, TailRepairSyncsTheTruncation) {
  {
    auto engine = MakeEngine(Config(Dir("log")));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  std::vector<RecordSpan> spans;
  ASSERT_TRUE(ScanRecordSpans(Dir("log"), LogEnv::Default(), &spans).ok());
  ASSERT_GE(spans.size(), 2u);
  // Tear the last record's header, then recover through a counting env:
  // the repair must fsync the truncated file (and the directory) before
  // the engine starts appending new segments beyond it.
  ASSERT_TRUE(LogEnv::Default()
                  ->TruncateFile(spans.back().path, spans.back().offset + 1)
                  .ok());
  FaultLogEnv fault;
  auto engine = MakeEngine(Config(Dir("log"), FsyncPolicy::kNone, &fault));
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_TRUE(engine->recovery_stats().tail_truncated);
  EXPECT_GE(fault.file_syncs(), 1u);
  EXPECT_GE(fault.dir_syncs(), 1u);
  engine->Stop();
}

// ----------------------------------------------------------------------
// Start() failure must not half-start the engine

TEST_F(RecoveryTest, StartRollsBackWhenLogOpenFails) {
  // The log directory's parent does not exist, so BatchLog::Open fails
  // after Start() has already claimed started_. The claim must be rolled
  // back: otherwise Submit() would accept transactions into a pipeline
  // with no threads, and callers would hang in WaitForIdle/Stop.
  auto engine = MakeEngine(Config(Dir("missing-parent") + "/nested/log"));
  Status st = engine->Start();
  ASSERT_FALSE(st.ok()) << st.ToString();
  EXPECT_TRUE(engine->Submit(WorkloadTxn(0)).IsRejected());
  engine->Stop();  // never started: must be a safe no-op, not a hang
}

// ----------------------------------------------------------------------
// In-process fault injection

TEST_F(RecoveryTest, CrashAtSyncLosesOnlyUnsyncedSuffix) {
  // A lying disk: sync #3 claims success but persists nothing from then
  // on. The run completes "normally"; recovery must surface exactly the
  // two records that genuinely hit the platter.
  FaultLogEnv fault;
  fault.CrashAtSync(3);
  {
    auto engine =
        MakeEngine(Config(Dir("log"), FsyncPolicy::kBatch, &fault));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  EXPECT_TRUE(fault.crashed());

  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("log"), LogEnv::Default(), &batches, &scan).ok());
  // kBatch policy syncs once per record: exactly syncs 1 and 2 persisted.
  ASSERT_EQ(batches.size(), 2u);
  auto oracle = FreshOracle();
  ApplyBatches(&oracle, batches);

  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  EXPECT_EQ(engine->recovery_stats().batches, 2u);
  ExpectStateEquals(*engine, oracle, "crash at sync");
  engine->Stop();
}

TEST_F(RecoveryTest, TornWriteCrashRecoversDurablePrefix) {
  // The process dies mid-write: some whole records plus a torn prefix of
  // one more are on disk. Recovery truncates the torn record and replays
  // the rest.
  FaultLogEnv fault;
  fault.CrashAfterBytes(700);  // lands mid-stream for this workload
  {
    auto engine =
        MakeEngine(Config(Dir("log"), FsyncPolicy::kNone, &fault));
    ASSERT_TRUE(engine->Start().ok());
    SubmitWorkload(engine.get(), 0, kTxns);
    engine->WaitForIdle();
    engine->Stop();
  }
  EXPECT_TRUE(fault.crashed());

  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  const RecoveryStats& rs = engine->recovery_stats();
  EXPECT_LT(rs.txns, kTxns);  // the tail genuinely died

  std::vector<ReplayedBatch> batches;
  LogScanStats scan;
  ASSERT_TRUE(
      ReadBatchLog(Dir("log"), LogEnv::Default(), &batches, &scan).ok());
  auto oracle = FreshOracle();
  ApplyBatches(&oracle, batches);
  ExpectStateEquals(*engine, oracle, "torn write");
  engine->Stop();
}

TEST_F(RecoveryTest, DiskFullDegradesGracefully) {
  // Honest ENOSPC: the writer sees the error, stops logging, and the
  // engine sheds new work instead of wedging or crashing. Already-durable
  // batches stay recoverable.
  FaultLogEnv fault;
  fault.FailWritesAfterBytes(300);
  bool rejected = false;
  {
    auto engine =
        MakeEngine(Config(Dir("log"), FsyncPolicy::kBatch, &fault));
    ASSERT_TRUE(engine->Start().ok());
    for (uint64_t i = 0; i < 20000 && !rejected; ++i) {
      Status st = engine->Submit(WorkloadTxn(i));
      if (st.IsRejected()) {
        rejected = true;
        break;
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    EXPECT_TRUE(rejected) << "writer failure never surfaced to Submit";
    EXPECT_TRUE(engine->log_degraded());
    engine->Stop();  // must not hang on the broken durable-ack gate
  }

  // Whatever made it to disk before the error is still a valid log.
  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Recover().ok());
  engine->Stop();
}

// ----------------------------------------------------------------------
// Loggability admission

TEST_F(RecoveryTest, NonLoggableWriterRejectedUnderDurability) {
  auto engine = MakeEngine(Config(Dir("log")));
  ASSERT_TRUE(engine->Start().ok());
  // A writer the log cannot reproduce would make replay diverge.
  Status st = engine->Submit(testutil::MakeMulWrite(0, 1, 2, 3));
  EXPECT_TRUE(st.IsRejected()) << st.ToString();

  // Read-only non-loggable procedures are harmless on replay (they
  // change nothing) and stay admitted.
  uint64_t out = 0;
  bool found = false;
  GetProcedure get(0, 1, &out, &found);
  ASSERT_TRUE(engine->SubmitBorrowed(&get).ok());
  engine->WaitForIdle();
  EXPECT_TRUE(found);
  engine->Stop();
}

TEST_F(RecoveryTest, NonLoggableWriterAllowedWithoutDurability) {
  BohmConfig cfg;  // durability off: loggability is not a constraint
  auto engine = std::make_unique<BohmEngine>(OneTable(kKeys), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine->Load(0, k, &zero).ok());
  ASSERT_TRUE(engine->Start().ok());
  ASSERT_TRUE(engine->Submit(testutil::MakeMulWrite(0, 1, 2, 3)).ok());
  engine->WaitForIdle();
  engine->Stop();
}

}  // namespace
}  // namespace bohm
