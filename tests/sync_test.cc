#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/affinity.h"
#include "common/barrier.h"
#include "common/spin.h"

namespace bohm {
namespace {

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  int64_t counter = 0;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;  // non-atomic: torn without mutual exclusion
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RWSpinLockTest, MultipleReaders) {
  RWSpinLock lock;
  lock.LockShared();
  EXPECT_TRUE(lock.TryLockShared());
  lock.UnlockShared();
  lock.UnlockShared();
}

TEST(RWSpinLockTest, WriterExcludesReaders) {
  RWSpinLock lock;
  lock.LockExclusive();
  EXPECT_FALSE(lock.TryLockShared());
  EXPECT_FALSE(lock.TryLockExclusive());
  lock.UnlockExclusive();
  EXPECT_TRUE(lock.TryLockShared());
  lock.UnlockShared();
}

TEST(RWSpinLockTest, ReaderExcludesWriter) {
  RWSpinLock lock;
  lock.LockShared();
  EXPECT_FALSE(lock.TryLockExclusive());
  lock.UnlockShared();
  EXPECT_TRUE(lock.TryLockExclusive());
  lock.UnlockExclusive();
}

TEST(RWSpinLockTest, WriterWriterExclusionStress) {
  RWSpinLock lock;
  int64_t counter = 0;
  constexpr int kThreads = 4, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.LockExclusive();
        ++counter;
        lock.UnlockExclusive();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

TEST(RWSpinLockTest, ReadersSeeConsistentStateDuringWrites) {
  RWSpinLock lock;
  // Writer keeps the pair (a, b) with a == b under the lock; readers must
  // never observe a != b.
  int64_t a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      lock.LockExclusive();
      a = i;
      b = i;
      lock.UnlockExclusive();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.LockShared();
        if (a != b) torn.store(true, std::memory_order_release);
        lock.UnlockShared();
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(torn.load());
}

TEST(CyclicBarrierTest, ExactlyOneLastArriverPerGeneration) {
  constexpr int kThreads = 4, kGenerations = 500;
  CyclicBarrier barrier(kThreads);
  std::atomic<int> last_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        if (barrier.ArriveAndWait()) {
          last_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(last_count.load(), kGenerations);
}

TEST(CyclicBarrierTest, SynchronizesPhases) {
  // No thread may enter phase g+1 before all threads finished phase g.
  constexpr int kThreads = 3, kGenerations = 200;
  CyclicBarrier barrier(kThreads);
  std::atomic<int> in_phase[2] = {{0}, {0}};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        in_phase[g % 2].fetch_add(1, std::memory_order_acq_rel);
        barrier.ArriveAndWait();
        // After the barrier, everyone has entered this phase.
        if (in_phase[g % 2].load(std::memory_order_acquire) < kThreads) {
          violation.store(true, std::memory_order_release);
        }
        barrier.ArriveAndWait();
        in_phase[g % 2].fetch_sub(1, std::memory_order_acq_rel);
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
}

TEST(CyclicBarrierTest, SingleParticipantNeverBlocks) {
  CyclicBarrier barrier(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(barrier.ArriveAndWait());
}

// ---------------------------------------------------------------------------
// WatermarkSet — the epoch-watermark fold behind the streamed Bohm
// pipeline handoff (per-thread Advance, cross-stage Min admission).
// ---------------------------------------------------------------------------

TEST(WatermarkSetTest, StartsAtInitialValue) {
  WatermarkSet w(3);
  EXPECT_EQ(w.threads(), 3u);
  for (uint32_t t = 0; t < 3; ++t) EXPECT_EQ(w.Get(t), -1);
  EXPECT_EQ(w.Min(), -1);
  WatermarkSet w2(2, 7);
  EXPECT_EQ(w2.Min(), 7);
}

TEST(WatermarkSetTest, MinFoldTracksTheLaggingThread) {
  // The fold is the admission gate: a single lagging thread must hold
  // the minimum regardless of how far its peers run ahead.
  WatermarkSet w(4);
  w.Advance(0, 10);
  w.Advance(1, 10);
  w.Advance(2, 10);
  EXPECT_EQ(w.Min(), -1) << "thread 3 never advanced";
  w.Advance(3, 2);
  EXPECT_EQ(w.Min(), 2) << "thread 3 is the laggard";
  w.Advance(3, 10);
  EXPECT_EQ(w.Min(), 10);
  w.Advance(0, 11);
  EXPECT_EQ(w.Min(), 10) << "min moves only when the slowest moves";
}

TEST(WatermarkSetTest, PerThreadGetIsMonotone) {
  WatermarkSet w(2);
  for (int64_t v = 0; v < 100; ++v) {
    w.Advance(0, v);
    EXPECT_EQ(w.Get(0), v);
    EXPECT_EQ(w.Get(1), -1);
  }
}

TEST(WatermarkSetTest, AdvancePublishesPrecedingWrites) {
  // TSan-targeted message-passing litmus (runs 50x seeded in the
  // tsan-stress CI job) mirroring the pipeline's rule: a CC thread's
  // plain writes (placeholder insertion, read annotation) must be visible
  // to any thread that observed its watermark pass the batch — Advance is
  // a release store, Get/Min are acquire loads, and that edge is the ONLY
  // thing making the payload read below race-free.
  constexpr int64_t kRounds = 20'000;
  WatermarkSet w(2);
  std::vector<uint64_t> payload(static_cast<size_t>(kRounds), 0);
  std::thread producer([&] {
    for (int64_t r = 0; r < kRounds; ++r) {
      payload[static_cast<size_t>(r)] = static_cast<uint64_t>(r) * 3 + 1;
      w.Advance(0, r);
    }
  });
  std::thread min_observer([&] {
    // Exercises the fold path too: Min() over {producer, self}.
    for (int64_t r = 0; r < kRounds; ++r) {
      w.Advance(1, r);
      while (w.Min() < r) std::this_thread::yield();
      ASSERT_EQ(payload[static_cast<size_t>(r)],
                static_cast<uint64_t>(r) * 3 + 1)
          << "payload write was not ordered before Advance";
    }
  });
  producer.join();
  min_observer.join();
  EXPECT_EQ(w.Min(), kRounds - 1);
}

TEST(AffinityTest, HardwareConcurrencyPositive) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(AffinityTest, ShouldPinPolicy) {
  EXPECT_TRUE(ShouldPin(1));
  EXPECT_FALSE(ShouldPin(HardwareConcurrency() + 1));
}

TEST(AffinityTest, PinSelfSucceedsOnLinux) {
#if defined(__linux__)
  EXPECT_TRUE(PinCurrentThreadToCpu(0));
#endif
}

TEST(SpinWaitTest, PauseProgresses) {
  SpinWait wait;
  for (int i = 0; i < 1000; ++i) wait.Pause();  // must not hang or crash
  wait.Reset();
  wait.Pause();
}

}  // namespace
}  // namespace bohm
