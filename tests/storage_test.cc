#include <gtest/gtest.h>

#include <cstring>

#include "storage/schema.h"
#include "storage/sv_table.h"

namespace bohm {
namespace {

TableSpec Spec(TableId id, uint32_t size, uint64_t cap) {
  TableSpec s;
  s.id = id;
  s.name = "t" + std::to_string(id);
  s.record_size = size;
  s.capacity = cap;
  return s;
}

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  EXPECT_TRUE(c.AddTable(Spec(0, 8, 10)).ok());
  EXPECT_TRUE(c.AddTable(Spec(2, 16, 20)).ok());
  ASSERT_NE(c.Find(0), nullptr);
  EXPECT_EQ(c.Find(0)->record_size, 8u);
  EXPECT_EQ(c.Find(1), nullptr);
  EXPECT_EQ(c.MaxTableId(), 3u);
}

TEST(CatalogTest, RejectsDuplicateId) {
  Catalog c;
  EXPECT_TRUE(c.AddTable(Spec(0, 8, 10)).ok());
  EXPECT_TRUE(c.AddTable(Spec(0, 8, 10)).IsInvalidArgument());
}

TEST(CatalogTest, RejectsZeroRecordSize) {
  Catalog c;
  EXPECT_TRUE(c.AddTable(Spec(0, 0, 10)).IsInvalidArgument());
}

TEST(SVTableTest, InsertAndLookup) {
  SVTable t(Spec(0, 8, 100));
  uint64_t v = 42;
  EXPECT_TRUE(t.Insert(7, &v).ok());
  SVSlot* slot = t.Lookup(7);
  ASSERT_NE(slot, nullptr);
  uint64_t out;
  std::memcpy(&out, slot->payload(), 8);
  EXPECT_EQ(out, 42u);
}

TEST(SVTableTest, MissingKeyReturnsNull) {
  SVTable t(Spec(0, 8, 100));
  EXPECT_EQ(t.Lookup(999), nullptr);
}

TEST(SVTableTest, NullPayloadZeroFills) {
  SVTable t(Spec(0, 16, 4));
  EXPECT_TRUE(t.Insert(1, nullptr).ok());
  const char* p = static_cast<const char*>(t.Lookup(1)->payload());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], 0);
}

TEST(SVTableTest, DuplicateInsertRejected) {
  SVTable t(Spec(0, 8, 100));
  uint64_t v = 1;
  EXPECT_TRUE(t.Insert(5, &v).ok());
  EXPECT_TRUE(t.Insert(5, &v).IsInvalidArgument());
}

TEST(SVTableTest, CapacityEnforced) {
  SVTable t(Spec(0, 8, 2));
  uint64_t v = 0;
  EXPECT_TRUE(t.Insert(0, &v).ok());
  EXPECT_TRUE(t.Insert(1, &v).ok());
  EXPECT_TRUE(t.Insert(2, &v).IsResourceExhausted());
}

TEST(SVTableTest, FullCapacityAllRetrievable) {
  constexpr uint64_t kN = 10000;
  SVTable t(Spec(0, 8, kN));
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(t.Insert(k * 13 + 1, &k).ok());
  }
  EXPECT_EQ(t.size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    SVSlot* slot = t.Lookup(k * 13 + 1);
    ASSERT_NE(slot, nullptr);
    uint64_t out;
    std::memcpy(&out, slot->payload(), 8);
    EXPECT_EQ(out, k);
  }
}

TEST(SVTableTest, HeaderStartsZero) {
  SVTable t(Spec(0, 8, 4));
  uint64_t v = 9;
  ASSERT_TRUE(t.Insert(3, &v).ok());
  EXPECT_EQ(t.Lookup(3)->header.load(), 0u);
}

TEST(SVTableTest, LargeRecords) {
  SVTable t(Spec(0, 1000, 16));
  std::vector<char> payload(1000, 0x3C);
  ASSERT_TRUE(t.Insert(0, payload.data()).ok());
  const char* p = static_cast<const char*>(t.Lookup(0)->payload());
  EXPECT_EQ(std::memcmp(p, payload.data(), 1000), 0);
}

TEST(SVDatabaseTest, TablesByIdWithGaps) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(Spec(0, 8, 4)).ok());
  ASSERT_TRUE(c.AddTable(Spec(3, 8, 4)).ok());
  SVDatabase db(c);
  EXPECT_NE(db.table(0), nullptr);
  EXPECT_EQ(db.table(1), nullptr);
  EXPECT_EQ(db.table(2), nullptr);
  EXPECT_NE(db.table(3), nullptr);
  EXPECT_EQ(db.table(99), nullptr);
}

}  // namespace
}  // namespace bohm
