// Cross-engine integration tests: the same workloads must produce
// equivalent observable behaviour on all five systems, matching the
// paper's premise that the engines differ in performance, not semantics.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "harness/engines.h"
#include "test_util.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

namespace bohm {
namespace {

// ---------- SmallBank money conservation on every executor engine ----------

class ExecutorEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExecutorEngineTest, SmallBankConservingMixKeepsTotal) {
  SmallBankConfig cfg;
  cfg.customers = 20;
  cfg.spin_us = 0;
  const int64_t initial_total =
      static_cast<int64_t>(cfg.customers) *
      (cfg.initial_savings + cfg.initial_checking);

  auto engine = MakeExecutorEngine(GetParam(), SmallBankCatalog(cfg), 3);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine->Load(t, k, p);
              }).ok());

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      SmallBankGenerator gen(cfg, 1000 + t);
      for (int i = 0; i < 400; ++i) {
        ProcedurePtr p = gen.MakeConserving();
        Status s = engine->Execute(*p, t);
        ASSERT_TRUE(s.ok() || s.IsAborted());
      }
    });
  }
  for (auto& th : threads) th.join();

  int64_t total = 0;
  for (Key c = 0; c < cfg.customers; ++c) {
    for (TableId t : {kSbSavingsTable, kSbCheckingTable}) {
      uint64_t raw = 0;
      bool found = false;
      GetProcedure get(t, c, &raw, &found);
      ASSERT_TRUE(engine->Execute(get, 0).ok());
      ASSERT_TRUE(found);
      total += static_cast<int64_t>(raw);
    }
  }
  EXPECT_EQ(total, initial_total) << engine->name();
}

TEST_P(ExecutorEngineTest, SmallBankSavingsNeverNegative) {
  // TransactSaving aborts on overdraft; no interleaving may break it.
  SmallBankConfig cfg;
  cfg.customers = 5;
  cfg.initial_savings = 50;
  auto engine = MakeExecutorEngine(GetParam(), SmallBankCatalog(cfg), 3);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine->Load(t, k, p);
              }).ok());
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      SmallBankGenerator gen(cfg, 7 + t);
      for (int i = 0; i < 300; ++i) {
        ProcedurePtr p =
            gen.Make(SmallBankGenerator::TxnType::kTransactSaving);
        Status s = engine->Execute(*p, t);
        ASSERT_TRUE(s.ok() || s.IsAborted());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (Key c = 0; c < cfg.customers; ++c) {
    uint64_t raw = 0;
    bool found = false;
    GetProcedure get(kSbSavingsTable, c, &raw, &found);
    ASSERT_TRUE(engine->Execute(get, 0).ok());
    EXPECT_GE(static_cast<int64_t>(raw), 0) << engine->name();
  }
}

TEST_P(ExecutorEngineTest, YcsbRmwCountsAddUp) {
  // Total increments across the table == committed txns * 10.
  YcsbConfig cfg;
  cfg.record_count = 64;
  cfg.record_size = 64;
  cfg.theta = 0.6;
  auto engine = MakeExecutorEngine(GetParam(), YcsbCatalog(cfg), 2);
  ASSERT_TRUE(YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine->Load(t, k, p);
              }).ok());
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      YcsbGenerator gen(cfg, 17 + t);
      for (int i = 0; i < 200; ++i) {
        ProcedurePtr p = gen.Make(YcsbGenerator::TxnType::k10Rmw);
        ASSERT_TRUE(engine->Execute(*p, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (Key k = 0; k < cfg.record_count; ++k) {
    uint64_t v = 0;
    bool found = false;
    GetProcedure get(kYcsbTableId, k, &v, &found);
    ASSERT_TRUE(engine->Execute(get, 0).ok());
    total += v;
  }
  EXPECT_EQ(total, 2u * 200u * 10u) << engine->name();
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, ExecutorEngineTest,
                         ::testing::Values(EngineKind::k2PL, EngineKind::kOCC,
                                           EngineKind::kSI,
                                           EngineKind::kHekaton),
                         [](const auto& param_info) {
                           return std::string(EngineKindName(param_info.param));
                         });

// ---------- The same properties on Bohm ----------

TEST(BohmIntegrationTest, SmallBankConservingMixKeepsTotal) {
  SmallBankConfig cfg;
  cfg.customers = 20;
  const int64_t initial_total =
      static_cast<int64_t>(cfg.customers) *
      (cfg.initial_savings + cfg.initial_checking);
  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 2;
  bcfg.batch_size = 16;
  BohmEngine engine(SmallBankCatalog(cfg), bcfg);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());
  SmallBankGenerator gen(cfg, 99);
  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(engine.Submit(gen.MakeConserving()).ok());
  }
  engine.WaitForIdle();
  int64_t total = 0;
  for (Key c = 0; c < cfg.customers; ++c) {
    for (TableId t : {kSbSavingsTable, kSbCheckingTable}) {
      uint64_t raw = 0;
      ASSERT_TRUE(engine.ReadLatest(t, c, &raw).ok());
      total += static_cast<int64_t>(raw);
    }
  }
  EXPECT_EQ(total, initial_total);
  engine.Stop();
}

TEST(BohmIntegrationTest, SmallBankFullMixMatchesSerialReplay) {
  // Bohm's timestamp order is the serial order, so a single-threaded
  // replay of the same procedures must produce the identical final state —
  // including WriteCheck's read-dependent penalty and TransactSaving's
  // logic aborts.
  SmallBankConfig cfg;
  cfg.customers = 10;
  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 3;
  bcfg.batch_size = 8;
  BohmEngine engine(SmallBankCatalog(cfg), bcfg);
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());

  // Golden serial state; transactions are built explicitly from one Rng so
  // the replay below sees the exact same parameters.
  std::vector<int64_t> savings(cfg.customers, cfg.initial_savings);
  std::vector<int64_t> checking(cfg.customers, cfg.initial_checking);
  Rng rng(4242);
  for (int i = 0; i < 800; ++i) {
    uint32_t kind = static_cast<uint32_t>(rng.Uniform(4));
    Key c0 = rng.Uniform(cfg.customers);
    Key c1 = (c0 + 1 + rng.Uniform(cfg.customers - 1)) % cfg.customers;
    int64_t amount = static_cast<int64_t>(rng.Uniform(150)) - 40;
    ProcedurePtr p;
    switch (kind) {
      case 0:
        p = std::make_unique<DepositCheckingProcedure>(c0, amount, 0);
        checking[c0] += amount;
        break;
      case 1: {
        p = std::make_unique<TransactSavingProcedure>(c0, amount, 0);
        if (savings[c0] + amount >= 0) savings[c0] += amount;
        break;
      }
      case 2: {
        p = std::make_unique<AmalgamateProcedure>(c0, c1, 0);
        checking[c1] += savings[c0] + checking[c0];
        savings[c0] = 0;
        checking[c0] = 0;
        break;
      }
      default: {
        p = std::make_unique<WriteCheckProcedure>(c0, amount, 0);
        int64_t debit = amount;
        if (savings[c0] + checking[c0] < amount) debit += 1;
        checking[c0] -= debit;
        break;
      }
    }
    ASSERT_TRUE(engine.Submit(std::move(p)).ok());
  }
  engine.WaitForIdle();
  for (Key c = 0; c < cfg.customers; ++c) {
    uint64_t s = 0, ch = 0;
    ASSERT_TRUE(engine.ReadLatest(kSbSavingsTable, c, &s).ok());
    ASSERT_TRUE(engine.ReadLatest(kSbCheckingTable, c, &ch).ok());
    EXPECT_EQ(static_cast<int64_t>(s), savings[c]) << "savings " << c;
    EXPECT_EQ(static_cast<int64_t>(ch), checking[c]) << "checking " << c;
  }
  engine.Stop();
}

TEST(BohmIntegrationTest, LongScanObservesInvariantUnderUpdates) {
  // The paper's Section 4.2.3 scenario: long read-only transactions
  // concurrent with updates. Transfers preserve the table total; every
  // scan must observe exactly that total (serializability of read-only
  // transactions without any read tracking).
  YcsbConfig cfg;
  cfg.record_count = 32;
  cfg.record_size = 8;
  cfg.scan_size = 32;  // read the whole table
  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 2;
  bcfg.batch_size = 8;
  BohmEngine engine(YcsbCatalog(cfg), bcfg);
  uint64_t hundred = 100;
  for (Key k = 0; k < cfg.record_count; ++k) {
    std::vector<char> payload(8, 0);
    std::memcpy(payload.data(), &hundred, 8);
    ASSERT_TRUE(engine.Load(kYcsbTableId, k, payload.data()).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  std::vector<std::unique_ptr<YcsbScanProcedure>> scans;
  Rng rng(31);
  for (int i = 0; i < 600; ++i) {
    if (i % 10 == 5) {
      std::vector<Key> all;
      for (Key k = 0; k < cfg.record_count; ++k) all.push_back(k);
      scans.push_back(std::make_unique<YcsbScanProcedure>(std::move(all)));
      ASSERT_TRUE(engine.SubmitBorrowed(scans.back().get()).ok());
    } else {
      Key src = rng.Uniform(cfg.record_count);
      Key dst = rng.Uniform(cfg.record_count);
      while (dst == src) dst = rng.Uniform(cfg.record_count);
      ASSERT_TRUE(engine
                      .Submit(std::make_unique<testutil::TransferProcedure>(
                          kYcsbTableId, src, dst, rng.Uniform(20)))
                      .ok());
    }
  }
  engine.WaitForIdle();
  const uint64_t expected = 100u * cfg.record_count;
  for (const auto& s : scans) EXPECT_EQ(s->observed_sum(), expected);
  engine.Stop();
}

}  // namespace
}  // namespace bohm
