// Proof suite for the streamed Bohm pipeline (epoch watermarks + SPSC
// handoff, replacing the one-barrier-per-batch CC handoff).
//
// Three properties, per the design:
//  (a) serial equivalence — the streamed pipeline produces exactly the
//      golden/serial-reference state across seeded YCSB and SmallBank
//      mixes at pipeline depths 1, 2 and 8;
//  (b) the watermark is honoured — with a CC thread frozen mid-batch via
//      a test hook, execution never enters a batch the CC watermark fold
//      has not passed (the streaming analogue of the index test
//      FindNeverObservesUninitializedHead);
//  (c) overlap really happens — execution commits batch b while a CC
//      thread is inside batch b+1, and CC threads cross batch boundaries
//      independently of each other (impossible under the old barrier), so
//      the optimization cannot silently regress to a barrier.
//
// All waits yield (SpinWait / std::this_thread::yield), so the suite is
// deterministic on a single-core host too: a frozen thread blocks inside
// its hook and everyone else keeps making progress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "common/zipf.h"
#include "harness/engines.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

/// Yield-waits until `pred()` holds or `timeout_ms` elapses; returns
/// whether the predicate held. Every blocking assertion in this suite
/// goes through here so a broken pipeline fails the test instead of
/// hanging the binary until the CTest timeout.
template <typename Pred>
bool WaitUntil(Pred pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// One-shot gate a hook can block on (yielding) until the test opens it.
class Gate {
 public:
  void Open() { open_.store(true, std::memory_order_release); }
  void Wait() {
    while (!open_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  bool IsOpen() const { return open_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> open_{false};
};

// ---------------------------------------------------------------------------
// (a) Serial equivalence across pipeline depths, YCSB mix.
// ---------------------------------------------------------------------------

class StreamedYcsbEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(StreamedYcsbEquivalence, MatchesGoldenReplayAcrossDepths) {
  const auto [depth, seed] = GetParam();
  constexpr uint64_t kRecords = 48;
  constexpr uint32_t kRecordSize = 16;
  constexpr int kTxns = 600;

  YcsbConfig ycsb;
  ycsb.record_count = kRecords;
  ycsb.record_size = kRecordSize;
  ycsb.theta = 0.9;  // contended: hot keys cross CC partitions constantly

  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 2;
  cfg.batch_size = 7;  // deliberately odd so batches straddle txn patterns
  cfg.pipeline_depth = depth;
  BohmEngine engine(YcsbCatalog(ycsb), cfg);
  ASSERT_TRUE(YcsbLoad(ycsb, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());

  // Golden replay: each 10RMW increments the counter prefix of its keys
  // exactly once, so the final counter of key k is the number of times k
  // appeared across all transactions.
  std::vector<uint64_t> golden(kRecords, 0);
  Rng rng(seed);
  ScrambledZipf zipf(kRecords, ycsb.theta);
  for (int i = 0; i < kTxns; ++i) {
    std::vector<Key> keys;
    while (keys.size() < 4) {
      Key k = zipf.Next(rng);
      bool dup = false;
      for (Key seen : keys) dup = dup || seen == k;
      if (!dup) keys.push_back(k);
    }
    for (Key k : keys) ++golden[k];
    ASSERT_TRUE(
        engine.Submit(std::make_unique<YcsbRmwProcedure>(keys, kRecordSize))
            .ok());
  }
  engine.WaitForIdle();

  std::vector<char> rec(kRecordSize);
  for (Key k = 0; k < kRecords; ++k) {
    ASSERT_TRUE(engine.ReadLatest(kYcsbTableId, k, rec.data()).ok());
    uint64_t counter = 0;
    std::memcpy(&counter, rec.data(), sizeof(counter));
    EXPECT_EQ(counter, golden[k]) << "depth " << depth << " key " << k;
  }
  EXPECT_EQ(engine.Stats().commits, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndSeeds, StreamedYcsbEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(7u, 21u)),
    [](const auto& param_info) {
      return "depth" + std::to_string(std::get<0>(param_info.param)) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// (a) Serial equivalence across pipeline depths, SmallBank mix, checked
// against a serial reference engine fed the identical seeded stream.
// ---------------------------------------------------------------------------

class StreamedSmallBankEquivalence
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StreamedSmallBankEquivalence, MatchesSerialReference) {
  const uint32_t depth = GetParam();
  constexpr uint64_t kSeed = 99;
  constexpr int kTxns = 500;
  SmallBankConfig sb;
  sb.customers = 24;  // high contention
  sb.spin_us = 0;

  // Serial reference: single-threaded 2PL executes the stream in
  // submission order — exactly the barriered pipeline's semantics.
  std::map<std::pair<TableId, Key>, uint64_t> reference;
  {
    auto ref = MakeExecutorEngine(EngineKind::k2PL, SmallBankCatalog(sb), 1);
    ASSERT_TRUE(SmallBankLoad(sb, [&](TableId t, Key k, const void* p) {
                  return ref->Load(t, k, p);
                }).ok());
    SmallBankGenerator gen(sb, kSeed);
    for (int i = 0; i < kTxns; ++i) {
      ProcedurePtr p = gen.Make();
      Status s = ref->Execute(*p, 0);
      ASSERT_TRUE(s.ok() || s.IsAborted());
    }
    for (TableId t : {kSbCustomerTable, kSbSavingsTable, kSbCheckingTable}) {
      for (Key c = 0; c < sb.customers; ++c) {
        uint64_t v = 0;
        bool found = false;
        GetProcedure get(t, c, &v, &found);
        ASSERT_TRUE(ref->Execute(get, 0).ok());
        ASSERT_TRUE(found);
        reference[{t, c}] = v;
      }
    }
  }

  // Streamed pipeline, same seed, same stream.
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 9;
  cfg.pipeline_depth = depth;
  BohmEngine engine(SmallBankCatalog(sb), cfg);
  ASSERT_TRUE(SmallBankLoad(sb, [&](TableId t, Key k, const void* p) {
                return engine.Load(t, k, p);
              }).ok());
  ASSERT_TRUE(engine.Start().ok());
  SmallBankGenerator gen(sb, kSeed);
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(engine.Submit(gen.Make()).ok());
  }
  engine.WaitForIdle();

  for (const auto& [rec, want] : reference) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(rec.first, rec.second, &v).ok());
    EXPECT_EQ(v, want) << "depth " << depth << " table " << rec.first
                       << " customer " << rec.second;
  }
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Depths, StreamedSmallBankEquivalence,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto& param_info) {
                           return "depth" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// (b) Execution never enters a batch the CC watermark has not passed —
// even with a CC thread frozen mid-batch.
// ---------------------------------------------------------------------------

TEST(BohmStreamingTest, ExecNeverObservesBatchBelowCcWatermark) {
  constexpr int64_t kFreezeBatch = 2;
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 4;
  cfg.input_queue_capacity = 1024;
  BohmEngine engine(OneTable(16), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 16; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  Gate release;
  std::atomic<bool> frozen{false};
  std::atomic<bool> watermark_violated{false};
  std::atomic<int64_t> max_exec_batch{-1};
  auto hooks = std::make_shared<BohmTestHooks>();
  hooks->cc_batch_start = [&](uint32_t cc_id, int64_t b) {
    if (cc_id == 0 && b == kFreezeBatch) {
      frozen.store(true, std::memory_order_release);
      release.Wait();  // CC thread 0 parks here, mid-batch
    }
  };
  hooks->exec_batch_start = [&](uint32_t, int64_t b) {
    // The admission invariant: min(cc_watermark) >= b at entry. The fold
    // is monotone, so reading it after admission cannot hide a violation.
    if (engine.CcWatermark() < b) {
      watermark_violated.store(true, std::memory_order_release);
    }
    int64_t seen = max_exec_batch.load(std::memory_order_relaxed);
    while (seen < b && !max_exec_batch.compare_exchange_weak(
                           seen, b, std::memory_order_acq_rel)) {
    }
  };
  engine.set_test_hooks(hooks);
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kTxns = 200;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 16)).ok());
  }

  // CC thread 0 must reach the freeze point; its watermark is then stuck
  // at kFreezeBatch - 1, capping execution there no matter how far the
  // sequencer and CC thread 1 run ahead.
  ASSERT_TRUE(WaitUntil([&] { return frozen.load(); })) << "never froze";
  ASSERT_TRUE(WaitUntil([&] { return engine.Watermark() >= kFreezeBatch - 1; }))
      << "execution did not reach the pre-freeze batches";
  // Give execution ample opportunity to (incorrectly) run ahead.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(engine.CcWatermark(), kFreezeBatch - 1);
  EXPECT_EQ(engine.Watermark(), kFreezeBatch - 1);
  EXPECT_LE(max_exec_batch.load(), kFreezeBatch - 1);
  EXPECT_FALSE(watermark_violated.load());

  release.Open();
  engine.WaitForIdle();
  EXPECT_FALSE(watermark_violated.load());

  uint64_t total = 0;
  for (Key k = 0; k < 16; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

// ---------------------------------------------------------------------------
// (c) Overlap: execution commits batch b while a CC thread is inside
// batch b+1.
// ---------------------------------------------------------------------------

TEST(BohmStreamingTest, ExecCommitsBatchWhileCcInsideNextBatch) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 4;
  cfg.input_queue_capacity = 1024;
  BohmEngine engine(OneTable(8), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 8; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  Gate release;
  std::atomic<bool> frozen_in_next{false};
  auto hooks = std::make_shared<BohmTestHooks>();
  hooks->cc_batch_start = [&](uint32_t cc_id, int64_t b) {
    if (cc_id == 0 && b == 1) {
      frozen_in_next.store(true, std::memory_order_release);
      release.Wait();  // CC thread 0 is now *inside* batch 1
    }
  };
  engine.set_test_hooks(hooks);
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kTxns = 60;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 8)).ok());
  }

  ASSERT_TRUE(WaitUntil([&] { return frozen_in_next.load(); }))
      << "CC thread 0 never entered batch 1";
  // With CC thread 0 frozen inside batch 1, batch 0 is below the CC
  // watermark and must flow through execution to commit — the overlap the
  // barriered handoff's serialized schedule never exhibits under test
  // control. Watermark() >= 0 means every exec thread finished batch 0.
  ASSERT_TRUE(WaitUntil([&] { return engine.Watermark() >= 0; }))
      << "execution never committed batch 0 while CC was inside batch 1";
  EXPECT_TRUE(frozen_in_next.load());
  EXPECT_GT(engine.Stats().commits, 0u);

  release.Open();
  engine.WaitForIdle();
  uint64_t total = 0;
  for (Key k = 0; k < 8; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

// ---------------------------------------------------------------------------
// (c) No silent barrier regression: CC threads cross batch boundaries
// independently. Under the replaced per-batch barrier, no CC thread could
// enter batch b+1 while a peer was still inside batch b.
// ---------------------------------------------------------------------------

TEST(BohmStreamingTest, CcThreadsStreamIndependentlyAcrossBatches) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 1;
  cfg.batch_size = 2;
  cfg.pipeline_depth = 8;
  cfg.input_queue_capacity = 1024;
  BohmEngine engine(OneTable(16), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 16; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  Gate release;
  std::atomic<bool> frozen{false};
  std::atomic<int64_t> cc1_max_batch{-1};
  auto hooks = std::make_shared<BohmTestHooks>();
  hooks->cc_batch_start = [&](uint32_t cc_id, int64_t b) {
    if (cc_id == 0 && b == 1) {
      frozen.store(true, std::memory_order_release);
      release.Wait();
    }
    if (cc_id == 1) {
      int64_t seen = cc1_max_batch.load(std::memory_order_relaxed);
      while (seen < b && !cc1_max_batch.compare_exchange_weak(
                             seen, b, std::memory_order_acq_rel)) {
      }
    }
  };
  engine.set_test_hooks(hooks);
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kTxns = 120;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 16)).ok());
  }

  ASSERT_TRUE(WaitUntil([&] { return frozen.load(); }))
      << "CC thread 0 never entered batch 1";
  // Execution is pinned at batch 0 (CC fold stuck at 0), so the sequencer
  // can seal up to pipeline_depth batches — CC thread 1 must stream
  // through several of them while its peer stays frozen in batch 1. If
  // the handoff ever regresses to a barrier, CC thread 1 parks at batch 1
  // and this times out.
  ASSERT_TRUE(WaitUntil([&] { return cc1_max_batch.load() >= 3; }))
      << "CC stage regressed to lockstep: peer never streamed ahead of "
         "the frozen thread (cc1 reached batch "
      << cc1_max_batch.load() << ")";
  EXPECT_TRUE(frozen.load());

  release.Open();
  engine.WaitForIdle();
  uint64_t total = 0;
  for (Key k = 0; k < 16; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Stall attribution: a pipeline throttled at the CC stage charges the
// wait to the right stages.
// ---------------------------------------------------------------------------

TEST(BohmStreamingTest, StallCountersAttributePipelineWait) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 1;
  cfg.batch_size = 4;
  cfg.pipeline_depth = 2;
  cfg.input_queue_capacity = 1024;
  BohmEngine engine(OneTable(8), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 8; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());

  Gate release;
  std::atomic<bool> frozen{false};
  auto hooks = std::make_shared<BohmTestHooks>();
  hooks->cc_batch_start = [&](uint32_t cc_id, int64_t b) {
    if (cc_id == 0 && b == 1) {
      frozen.store(true, std::memory_order_release);
      release.Wait();
    }
  };
  engine.set_test_hooks(hooks);
  ASSERT_TRUE(engine.Start().ok());

  constexpr int kTxns = 100;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 8)).ok());
  }
  ASSERT_TRUE(WaitUntil([&] { return frozen.load(); }));
  // While frozen: the exec thread waits on the CC watermark for batch 1
  // (exec stall); the sequencer finishes sealing up to the depth bound
  // and then waits for slot reuse (sequencer stall); CC thread 1 drains
  // its feed and waits for more (CC stall).
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  release.Open();
  engine.WaitForIdle();

  const StatsSnapshot s = engine.Stats();
  EXPECT_GT(s.seq_stall_ns, 0u) << "sequencer back-pressure not attributed";
  EXPECT_GT(s.cc_stall_ns, 0u) << "CC feed-dry wait not attributed";
  EXPECT_GT(s.exec_stall_ns, 0u) << "exec watermark wait not attributed";
  engine.Stop();
}

// ---------------------------------------------------------------------------
// Degenerate depth and watermark algebra.
// ---------------------------------------------------------------------------

TEST(BohmStreamingTest, DepthOnePipelineStreamsSerially) {
  BohmConfig cfg;
  cfg.cc_threads = 2;
  cfg.exec_threads = 2;
  cfg.batch_size = 3;
  cfg.pipeline_depth = 1;  // one batch in flight: the serial reference point
  BohmEngine engine(OneTable(4), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 4; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.config().pipeline_depth, 1u);

  constexpr int kTxns = 300;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(
        engine.Submit(std::make_unique<IncrementProcedure>(0, i % 4)).ok());
  }
  engine.WaitForIdle();
  uint64_t total = 0;
  for (Key k = 0; k < 4; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kTxns));
  EXPECT_EQ(engine.Stats().commits, static_cast<uint64_t>(kTxns));
  engine.Stop();
}

TEST(BohmStreamingTest, WatermarksAreMonotoneAndOrdered) {
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 2;
  cfg.batch_size = 5;
  cfg.pipeline_depth = 4;
  BohmEngine engine(OneTable(32), cfg);
  uint64_t zero = 0;
  for (Key k = 0; k < 32; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
  ASSERT_TRUE(engine.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<bool> exec_regressed{false};
  std::atomic<bool> cc_regressed{false};
  std::atomic<bool> order_violated{false};
  std::thread monitor([&] {
    int64_t last_exec = INT64_MIN, last_cc = INT64_MIN;
    while (!stop.load(std::memory_order_acquire)) {
      // Read exec first: exec <= cc holds for reads in this order because
      // the exec fold can only admit batches the (monotone) CC fold
      // already passed.
      const int64_t e = engine.Watermark();
      const int64_t c = engine.CcWatermark();
      if (e < last_exec) exec_regressed.store(true);
      if (c < last_cc) cc_regressed.store(true);
      if (e > c) order_violated.store(true);
      last_exec = e;
      last_cc = c;
      std::this_thread::yield();
    }
  });

  Rng rng(4242);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(engine
                    .Submit(std::make_unique<IncrementProcedure>(
                        0, rng.Uniform(32)))
                    .ok());
  }
  engine.WaitForIdle();
  stop.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_FALSE(exec_regressed.load()) << "execution watermark regressed";
  EXPECT_FALSE(cc_regressed.load()) << "CC watermark regressed";
  EXPECT_FALSE(order_violated.load())
      << "execution watermark overtook the CC watermark";
  engine.Stop();
}

}  // namespace
}  // namespace bohm
