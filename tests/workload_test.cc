#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "workload/micro.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

#include "test_util.h"

namespace bohm {
namespace {

// ---------- YCSB ----------

TEST(YcsbTest, CatalogShape) {
  YcsbConfig cfg;
  cfg.record_count = 1000;
  cfg.record_size = 1000;
  Catalog c = YcsbCatalog(cfg);
  ASSERT_NE(c.Find(kYcsbTableId), nullptr);
  EXPECT_EQ(c.Find(kYcsbTableId)->record_size, 1000u);
  EXPECT_EQ(c.Find(kYcsbTableId)->capacity, 1000u);
  EXPECT_TRUE(c.Find(kYcsbTableId)->dense_keys);
}

TEST(YcsbTest, LoadVisitsEveryKeyOnce) {
  YcsbConfig cfg;
  cfg.record_count = 500;
  cfg.record_size = 16;
  std::set<Key> seen;
  ASSERT_TRUE(YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
                EXPECT_EQ(t, kYcsbTableId);
                EXPECT_NE(p, nullptr);
                EXPECT_TRUE(seen.insert(k).second);
                return Status::OK();
              }).ok());
  EXPECT_EQ(seen.size(), 500u);
}

TEST(YcsbTest, LoadPropagatesFailure) {
  YcsbConfig cfg;
  cfg.record_count = 10;
  int calls = 0;
  Status s = YcsbLoad(cfg, [&](TableId, Key, const void*) {
    return ++calls == 3 ? Status::ResourceExhausted("full") : Status::OK();
  });
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(calls, 3);
}

TEST(YcsbTest, DistinctKeysAreDistinct) {
  YcsbConfig cfg;
  cfg.record_count = 100;
  cfg.theta = 0.9;  // heavy skew maximizes collision pressure
  YcsbGenerator gen(cfg, 42);
  for (int i = 0; i < 50; ++i) {
    auto keys = gen.DrawDistinctKeys(10);
    std::set<Key> s(keys.begin(), keys.end());
    EXPECT_EQ(s.size(), 10u);
    for (Key k : keys) EXPECT_LT(k, 100u);
  }
}

TEST(YcsbTest, RmwProcedureFootprint) {
  YcsbConfig cfg;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg, 1);
  ProcedurePtr p = gen.Make(YcsbGenerator::TxnType::k10Rmw);
  EXPECT_EQ(p->rwset().reads().size(), 10u);
  EXPECT_EQ(p->rwset().writes().size(), 10u);
  EXPECT_TRUE(p->rwset().Validate().ok());
}

TEST(YcsbTest, MixedProcedureFootprint) {
  YcsbConfig cfg;
  cfg.record_count = 1000;
  YcsbGenerator gen(cfg, 2);
  ProcedurePtr p = gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  EXPECT_EQ(p->rwset().reads().size(), 10u);  // 2 RMW reads + 8 reads
  EXPECT_EQ(p->rwset().writes().size(), 2u);
  EXPECT_TRUE(p->rwset().Validate().ok());
}

TEST(YcsbTest, ScanFootprint) {
  YcsbConfig cfg;
  cfg.record_count = 10000;
  cfg.scan_size = 1000;
  YcsbGenerator gen(cfg, 3);
  ProcedurePtr p = gen.Make(YcsbGenerator::TxnType::kReadOnlyScan);
  EXPECT_EQ(p->rwset().reads().size(), 1000u);
  EXPECT_TRUE(p->rwset().writes().empty());
}

TEST(YcsbTest, MixedStreamRespectsReadOnlyFraction) {
  YcsbConfig cfg;
  cfg.record_count = 1000;
  cfg.scan_size = 20;
  YcsbGenerator gen(cfg, 4);
  int scans = 0;
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    ProcedurePtr p = gen.MakeMixed(0.25);
    if (p->rwset().writes().empty()) ++scans;
  }
  EXPECT_GT(scans, kN / 8);
  EXPECT_LT(scans, kN / 2);
}

TEST(YcsbTest, SkewConcentratesKeys) {
  YcsbConfig cfg;
  cfg.record_count = 10000;
  cfg.theta = 0.9;
  YcsbGenerator gen(cfg, 5);
  std::map<Key, int> counts;
  for (int i = 0; i < 2000; ++i) {
    for (Key k : gen.DrawDistinctKeys(10)) ++counts[k];
  }
  // Under theta=0.9 the hottest key must be drawn far more often than the
  // uniform expectation (20000 draws / 10000 keys = 2).
  int hottest = 0;
  for (auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 100);
}

// ---------- Micro ----------

TEST(MicroTest, CatalogIsEightByte) {
  MicroConfig cfg;
  cfg.record_count = 100;
  Catalog c = MicroCatalog(cfg);
  EXPECT_EQ(c.Find(kYcsbTableId)->record_size, 8u);
}

TEST(MicroTest, GeneratorProducesNRmws) {
  MicroConfig cfg;
  cfg.record_count = 1000;
  cfg.ops_per_txn = 10;
  MicroGenerator gen(cfg, 7);
  ProcedurePtr p = gen.Make();
  EXPECT_EQ(p->rwset().writes().size(), 10u);
  EXPECT_EQ(p->rwset().reads().size(), 10u);
}

// ---------- SmallBank ----------

TEST(SmallBankTest, CatalogHasThreeTables) {
  SmallBankConfig cfg;
  cfg.customers = 100;
  Catalog c = SmallBankCatalog(cfg);
  EXPECT_NE(c.Find(kSbCustomerTable), nullptr);
  EXPECT_NE(c.Find(kSbSavingsTable), nullptr);
  EXPECT_NE(c.Find(kSbCheckingTable), nullptr);
  EXPECT_EQ(c.Find(kSbSavingsTable)->record_size, 8u);
}

TEST(SmallBankTest, LoadPopulatesAllTables) {
  SmallBankConfig cfg;
  cfg.customers = 50;
  std::map<TableId, int> counts;
  ASSERT_TRUE(SmallBankLoad(cfg, [&](TableId t, Key, const void*) {
                ++counts[t];
                return Status::OK();
              }).ok());
  EXPECT_EQ(counts[kSbCustomerTable], 50);
  EXPECT_EQ(counts[kSbSavingsTable], 50);
  EXPECT_EQ(counts[kSbCheckingTable], 50);
}

TEST(SmallBankTest, FootprintsAreSmall) {
  SmallBankConfig cfg;
  cfg.customers = 100;
  SmallBankGenerator gen(cfg, 9);
  for (int i = 0; i < 200; ++i) {
    ProcedurePtr p = gen.Make();
    EXPECT_LE(p->rwset().reads().size(), 5u);
    EXPECT_LE(p->rwset().writes().size(), 3u);
    EXPECT_TRUE(p->rwset().Validate().ok());
  }
}

TEST(SmallBankTest, BalanceIsReadOnly) {
  SmallBankConfig cfg;
  cfg.customers = 10;
  SmallBankGenerator gen(cfg, 1);
  ProcedurePtr p = gen.Make(SmallBankGenerator::TxnType::kBalance);
  EXPECT_TRUE(p->rwset().writes().empty());
  EXPECT_EQ(p->rwset().reads().size(), 3u);
}

TEST(SmallBankTest, MixIsRoughlyUniform) {
  SmallBankConfig cfg;
  cfg.customers = 100;
  SmallBankGenerator gen(cfg, 13);
  int read_only = 0;
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Make()->rwset().writes().empty()) ++read_only;
  }
  // ~20% Balance (the paper: "a small part ... 20% of all transactions").
  EXPECT_GT(read_only, kN / 10);
  EXPECT_LT(read_only, kN * 3 / 10);
}

TEST(SmallBankTest, SpinRunsApproximatelyRequestedTime) {
  auto t0 = std::chrono::steady_clock::now();
  SmallBankSpin(200);
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_GE(us, 200);
}

TEST(SmallBankTest, AmalgamateNeedsTwoCustomers) {
  SmallBankConfig cfg;
  cfg.customers = 1;
  SmallBankGenerator gen(cfg, 3);
  // Must not loop forever or produce a two-customer txn.
  ProcedurePtr p = gen.Make(SmallBankGenerator::TxnType::kAmalgamate);
  ASSERT_NE(p, nullptr);
}

}  // namespace
}  // namespace bohm
