// Cross-engine serial-equivalence property tests.
//
// Single-threaded, every engine is trivially serial — so every engine
// must produce *exactly* the golden replay state for the same random
// transaction stream. This pins down the data-path semantics (RMW reads,
// blind writes, logic aborts, full-record copies) engine by engine, and
// catches any divergence between the five TxnOps implementations.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "bohm/engine.h"
#include "common/rand.h"
#include "harness/engines.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

constexpr uint64_t kKeys = 24;
constexpr int kTxns = 1000;

/// Applies one pseudo-random transaction to both an engine (via the
/// returned procedure) and the golden state.
ProcedurePtr NextTxn(Rng& rng, std::map<Key, uint64_t>& golden) {
  int kind = static_cast<int>(rng.Uniform(4));
  Key a = rng.Uniform(kKeys);
  Key b = rng.Uniform(kKeys);
  while (b == a) b = rng.Uniform(kKeys);
  switch (kind) {
    case 0: {
      uint64_t delta = rng.Uniform(100);
      golden[a] += delta;
      return std::make_unique<IncrementProcedure>(0, a, delta);
    }
    case 1: {
      uint64_t amount = rng.Uniform(50);
      golden[a] -= amount;
      golden[b] += amount;
      return std::make_unique<testutil::TransferProcedure>(0, a, b, amount);
    }
    case 2: {
      uint64_t factor = rng.Uniform(3) + 1;
      golden[b] = golden[a] * factor;
      return testutil::MakeMulWrite(0, a, b, factor);
    }
    default:
      // Logic abort: no state change.
      return std::make_unique<testutil::AbortingIncrement>(0, a);
  }
}

class SerialEquivalence
    : public ::testing::TestWithParam<std::tuple<EngineKind, uint64_t>> {};

TEST_P(SerialEquivalence, SingleThreadMatchesGoldenReplay) {
  const auto [kind, seed] = GetParam();
  auto engine = MakeExecutorEngine(kind, OneTable(kKeys), 1);
  std::map<Key, uint64_t> golden;
  uint64_t zero = 0;
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(engine->Load(0, k, &zero).ok());
    golden[k] = 0;
  }
  Rng rng(seed);
  for (int i = 0; i < kTxns; ++i) {
    ProcedurePtr p = NextTxn(rng, golden);
    Status s = engine->Execute(*p, 0);
    ASSERT_TRUE(s.ok() || s.IsAborted());
  }
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    bool found = false;
    GetProcedure get(0, k, &v, &found);
    ASSERT_TRUE(engine->Execute(get, 0).ok());
    ASSERT_TRUE(found);
    EXPECT_EQ(v, golden[k]) << engine->name() << " key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, SerialEquivalence,
    ::testing::Combine(::testing::Values(EngineKind::k2PL, EngineKind::kOCC,
                                         EngineKind::kSI,
                                         EngineKind::kHekaton),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& param_info) {
      return std::string(EngineKindName(std::get<0>(param_info.param))) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// Bohm is checked at pipeline depths 1, 2 and 8: depth 1 is the serial
// reference point (one batch in flight, no overlap), depth 2 is the
// minimal streamed pipeline, depth 8 lets the sequencer and CC stage run
// well ahead of execution. Equivalence across all three proves the
// streamed epoch-watermark handoff never lets stage overlap leak into
// the committed state.
class BohmSeedEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(BohmSeedEquivalence, PipelineMatchesGoldenReplay) {
  const auto [seed, depth] = GetParam();
  BohmConfig cfg;
  cfg.cc_threads = 3;
  cfg.exec_threads = 3;
  cfg.batch_size = 13;
  cfg.pipeline_depth = depth;
  BohmEngine engine(OneTable(kKeys), cfg);
  std::map<Key, uint64_t> golden;
  uint64_t zero = 0;
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(engine.Load(0, k, &zero).ok());
    golden[k] = 0;
  }
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(seed);
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(engine.Submit(NextTxn(rng, golden)).ok());
  }
  engine.WaitForIdle();
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
    EXPECT_EQ(v, golden[k]) << "depth " << depth << " key " << k;
  }
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDepths, BohmSeedEquivalence,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u),
                       ::testing::Values(1u, 2u, 8u)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_depth" + std::to_string(std::get<1>(param_info.param));
    });

// Cross-check: all five engines end in the same state for the same
// stream (single-threaded).
TEST(SerialEquivalenceTest, AllEnginesAgree) {
  constexpr uint64_t kSeed = 777;
  std::map<std::string, std::map<Key, uint64_t>> finals;

  for (EngineKind kind : {EngineKind::k2PL, EngineKind::kOCC,
                          EngineKind::kSI, EngineKind::kHekaton}) {
    auto engine = MakeExecutorEngine(kind, OneTable(kKeys), 1);
    uint64_t zero = 0;
    for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine->Load(0, k, &zero).ok());
    std::map<Key, uint64_t> sink;  // throwaway golden
    Rng rng(kSeed);
    for (int i = 0; i < 500; ++i) {
      ProcedurePtr p = NextTxn(rng, sink);
      Status s = engine->Execute(*p, 0);
      ASSERT_TRUE(s.ok() || s.IsAborted());
    }
    for (Key k = 0; k < kKeys; ++k) {
      uint64_t v = 0;
      bool found = false;
      GetProcedure get(0, k, &v, &found);
      ASSERT_TRUE(engine->Execute(get, 0).ok());
      finals[engine->name()][k] = v;
    }
  }

  // Bohm, same stream, once per pipeline depth — the streamed handoff
  // must agree with the executor engines at every depth.
  for (uint32_t depth : {1u, 2u, 8u}) {
    BohmConfig cfg;
    cfg.pipeline_depth = depth;
    BohmEngine engine(OneTable(kKeys), cfg);
    uint64_t zero = 0;
    for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(engine.Load(0, k, &zero).ok());
    ASSERT_TRUE(engine.Start().ok());
    std::map<Key, uint64_t> sink;
    Rng rng(kSeed);
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(engine.Submit(NextTxn(rng, sink)).ok());
    }
    engine.WaitForIdle();
    for (Key k = 0; k < kKeys; ++k) {
      uint64_t v = 0;
      ASSERT_TRUE(engine.ReadLatest(0, k, &v).ok());
      finals["Bohm_depth" + std::to_string(depth)][k] = v;
    }
    engine.Stop();
  }

  ASSERT_EQ(finals.size(), 7u);
  const auto& reference = finals.begin()->second;
  for (const auto& [name, state] : finals) {
    EXPECT_EQ(state, reference) << name << " diverged";
  }
}

}  // namespace
}  // namespace bohm
