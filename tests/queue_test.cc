#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace bohm {
namespace {

TEST(MpmcQueueTest, PushPopSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
}

TEST(MpmcQueueTest, EmptyPopFails) {
  MpmcQueue<int> q(8);
  int v;
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(MpmcQueueTest, FullPushFails) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
}

TEST(MpmcQueueTest, FifoWithinCapacityCycles) {
  MpmcQueue<int> q(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.TryPush(round * 4 + i));
    for (int i = 0; i < 4; ++i) {
      int v;
      ASSERT_TRUE(q.TryPop(&v));
      EXPECT_EQ(v, round * 4 + i);
    }
  }
}

TEST(MpmcQueueTest, MovesUniquePtrs) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  q.Push(std::make_unique<int>(5));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(*out, 5);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersConserveSum) {
  // 4 producers push 5000 values each; 4 consumers drain them. The sum of
  // consumed values must equal the sum of produced values, with no loss
  // and no duplication.
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 5000;
  MpmcQueue<uint64_t> q(256);
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(static_cast<uint64_t>(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (!done.load(std::memory_order_acquire) ||
             consumed_count.load(std::memory_order_acquire) <
                 kProducers * kPerProducer) {
        if (q.TryPop(&v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
        if (consumed_count.load(std::memory_order_acquire) ==
            kProducers * kPerProducer) {
          break;
        }
      }
    });
  }
  for (size_t i = 0; i < static_cast<size_t>(kProducers); ++i) {
    threads[i].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const uint64_t total = static_cast<uint64_t>(kProducers) * kPerProducer;
  uint64_t expected = total * (total - 1) / 2;
  EXPECT_EQ(consumed_count.load(), static_cast<int>(total));
  EXPECT_EQ(consumed_sum.load(), expected);
}

// ---------------------------------------------------------------------------
// SpscQueue — the per-stage pipeline feed behind the streamed Bohm
// handoff (sequencer -> CC / exec batch-id rings).
// ---------------------------------------------------------------------------

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.Empty());
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, EmptyPopFailsFullPushFails) {
  SpscQueue<int> q(4);
  int v;
  EXPECT_FALSE(q.TryPop(&v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  // Draining one slot re-admits exactly one push (cached-index refresh).
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.TryPush(99));
  EXPECT_FALSE(q.TryPush(100));
}

TEST(SpscQueueTest, FifoAcrossWraparoundBoundary) {
  // Enough cycles through a tiny ring to cross the capacity boundary many
  // times — and, with the offset start, to exercise every head/tail
  // alignment of the pow2 mask. Staying FIFO across wraparound is the
  // property the streamed pipeline's batch ordering rests on.
  SpscQueue<uint64_t> q(4);
  uint64_t next_push = 0, next_pop = 0;
  // Offset the indices so push/pop runs straddle the boundary rather than
  // landing on it.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.TryPush(next_push++));
  for (int round = 0; round < 64; ++round) {
    uint64_t v;
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, next_pop++);
    ASSERT_TRUE(q.TryPush(next_push++));
    ASSERT_TRUE(q.TryPush(next_push++));
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, next_pop++);
  }
  while (!q.Empty()) {
    uint64_t v;
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscQueueTest, MovesUniquePtrs) {
  SpscQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.TryPush(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscQueueTest, ConcurrentProducerConsumerPreservesOrder) {
  // TSan-targeted (runs 50x seeded in the tsan-stress CI job): one
  // producer, one consumer, a ring far smaller than the stream, so both
  // the full path (producer refreshes head_cache_) and the empty path
  // (consumer refreshes tail_cache_) run constantly. The consumer asserts
  // strict FIFO — any torn publication or reordered slot write shows up
  // as an out-of-order value (and as a TSan race on the slot).
  constexpr uint64_t kCount = 100'000;
  SpscQueue<uint64_t> q(8);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (q.TryPop(&v)) {
      ASSERT_EQ(v, expected) << "SPSC ring broke FIFO across wraparound";
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace bohm
