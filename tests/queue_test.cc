#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace bohm {
namespace {

TEST(MpmcQueueTest, PushPopSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
}

TEST(MpmcQueueTest, EmptyPopFails) {
  MpmcQueue<int> q(8);
  int v;
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(MpmcQueueTest, FullPushFails) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
}

TEST(MpmcQueueTest, FifoWithinCapacityCycles) {
  MpmcQueue<int> q(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.TryPush(round * 4 + i));
    for (int i = 0; i < 4; ++i) {
      int v;
      ASSERT_TRUE(q.TryPop(&v));
      EXPECT_EQ(v, round * 4 + i);
    }
  }
}

TEST(MpmcQueueTest, MovesUniquePtrs) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  q.Push(std::make_unique<int>(5));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(*out, 5);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersConserveSum) {
  // 4 producers push 5000 values each; 4 consumers drain them. The sum of
  // consumed values must equal the sum of produced values, with no loss
  // and no duplication.
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 5000;
  MpmcQueue<uint64_t> q(256);
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(static_cast<uint64_t>(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (!done.load(std::memory_order_acquire) ||
             consumed_count.load(std::memory_order_acquire) <
                 kProducers * kPerProducer) {
        if (q.TryPop(&v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
        if (consumed_count.load(std::memory_order_acquire) ==
            kProducers * kPerProducer) {
          break;
        }
      }
    });
  }
  for (size_t i = 0; i < static_cast<size_t>(kProducers); ++i) {
    threads[i].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  const uint64_t total = static_cast<uint64_t>(kProducers) * kPerProducer;
  uint64_t expected = total * (total - 1) / 2;
  EXPECT_EQ(consumed_count.load(), static_cast<int>(total));
  EXPECT_EQ(consumed_sum.load(), expected);
}

}  // namespace
}  // namespace bohm
