#include "occ/silo_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "test_util.h"

namespace bohm {
namespace {

using testutil::OneTable;

std::unique_ptr<SiloEngine> MakeEngine(uint64_t keys, uint32_t threads,
                                       uint64_t initial = 0) {
  SiloConfig cfg;
  cfg.threads = threads;
  cfg.epoch_period_us = 1000;
  auto engine = std::make_unique<SiloEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  return engine;
}

TEST(SiloTest, PutThenRead) {
  auto engine = MakeEngine(8, 1);
  PutProcedure put(0, 3, 42);
  ASSERT_TRUE(engine->Execute(put, 0).ok());
  uint64_t out = 0;
  bool found = false;
  GetProcedure get(0, 3, &out, &found);
  ASSERT_TRUE(engine->Execute(get, 0).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 42u);
}

TEST(SiloTest, SequentialIncrements) {
  auto engine = MakeEngine(4, 1);
  for (int i = 0; i < 300; ++i) {
    IncrementProcedure inc(0, 2);
    ASSERT_TRUE(engine->Execute(inc, 0).ok());
  }
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 300u);
}

TEST(SiloTest, ReadOwnBufferedWrite) {
  // Write then read the same record inside one transaction: the read must
  // observe the buffered write, not storage.
  auto engine = MakeEngine(4, 1, /*initial=*/7);
  class WriteThenRead final : public StoredProcedure {
   public:
    WriteThenRead() { set_.AddRmw(0, 1); }
    void Run(TxnOps& ops) override {
      testutil::WriteU64(ops, 0, 1, 99);
      observed_ = testutil::ReadU64(ops, 0, 1);
    }
    uint64_t observed() const { return observed_; }

   private:
    uint64_t observed_ = 0;
  };
  WriteThenRead proc;
  ASSERT_TRUE(engine->Execute(proc, 0).ok());
  EXPECT_EQ(proc.observed(), 99u);
}

TEST(SiloTest, LogicAbortDiscardsBufferedWrites) {
  auto engine = MakeEngine(4, 1, /*initial=*/50);
  testutil::AbortingIncrement proc(0, 2);
  EXPECT_TRUE(engine->Execute(proc, 0).IsAborted());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 50u);
}

TEST(SiloTest, TidAdvancesOnEveryCommit) {
  auto engine = MakeEngine(4, 1);
  SVSlot* slot = nullptr;
  uint64_t prev_tid = 0;
  for (int i = 0; i < 20; ++i) {
    IncrementProcedure inc(0, 0);
    ASSERT_TRUE(engine->Execute(inc, 0).ok());
    uint64_t v;
    ASSERT_TRUE(engine->ReadLatest(0, 0, &v).ok());
    (void)slot;
    // Indirect TID probe: re-execute and confirm monotonic effects.
    EXPECT_EQ(v, static_cast<uint64_t>(i + 1));
    (void)prev_tid;
  }
}

TEST(SiloTest, EpochAdvances) {
  auto engine = MakeEngine(1, 1);
  uint64_t e0 = engine->epoch();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(engine->epoch(), e0);
}

TEST(SiloTest, ContendedIncrementsExactlyOnce) {
  auto engine = MakeEngine(2, 4);
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        IncrementProcedure inc(0, 0);
        ASSERT_TRUE(engine->Execute(inc, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 4u * kPerThread);
  EXPECT_EQ(engine->Stats().commits, 4u * kPerThread);
}

TEST(SiloTest, TransfersConserveUnderContention) {
  constexpr uint64_t kKeys = 4, kInitial = 1000;
  auto engine = MakeEngine(kKeys, 4, kInitial);
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 40);
      for (int i = 0; i < kPerThread; ++i) {
        Key src = rng.Uniform(kKeys);
        Key dst = rng.Uniform(kKeys);
        while (dst == src) dst = rng.Uniform(kKeys);
        testutil::TransferProcedure xfer(0, src, dst, rng.Uniform(5));
        ASSERT_TRUE(engine->Execute(xfer, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, kKeys * kInitial);
}

TEST(SiloTest, ReadersSeeConsistentPairs) {
  // Seqlock reads + read validation: a pair-reader racing sum-preserving
  // writers must always observe the invariant (serializability).
  auto engine = MakeEngine(2, 3, /*initial=*/100);
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::vector<std::thread> writers;
  for (uint32_t t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(t);
      while (!stop.load()) {
        testutil::TransferProcedure xfer(0, t % 2, (t + 1) % 2,
                                         rng.Uniform(5));
        (void)engine->Execute(xfer, t);
      }
    });
  }
  for (int i = 0; i < 400; ++i) {
    testutil::ReadPairProcedure reader(0, 0, 1);
    ASSERT_TRUE(engine->Execute(reader, 2).ok());
    if (reader.sum() != 200) violated.store(true);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  EXPECT_FALSE(violated.load());
}

TEST(SiloTest, AbortsAreCountedUnderConflict) {
  auto engine = MakeEngine(1, 2);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        IncrementProcedure inc(0, 0);
        (void)engine->Execute(inc, t);
      }
    });
  }
  for (auto& th : threads) th.join();
  StatsSnapshot s = engine->Stats();
  EXPECT_EQ(s.commits, 1000u);
  EXPECT_EQ(s.retries, s.cc_aborts);
}

TEST(SiloTest, BadThreadIdRejected) {
  auto engine = MakeEngine(1, 1);
  PutProcedure p(0, 0, 1);
  EXPECT_TRUE(engine->Execute(p, 3).IsInvalidArgument());
}

TEST(SiloTest, LargeRecordsCopyCorrectly) {
  TableSpec spec;
  spec.id = 0;
  spec.name = "big";
  spec.record_size = 1000;
  spec.capacity = 4;
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(std::move(spec)).ok());
  SiloConfig cfg;
  cfg.threads = 1;
  SiloEngine engine(catalog, cfg);
  std::vector<char> init(1000, 0x42);
  ASSERT_TRUE(engine.Load(0, 0, init.data()).ok());

  class BigRmw final : public StoredProcedure {
   public:
    BigRmw() { set_.AddRmw(0, 0); }
    void Run(TxnOps& ops) override {
      const void* old = ops.Read(0, 0);
      void* buf = ops.Write(0, 0);
      std::memcpy(buf, old, 1000);
      static_cast<char*>(buf)[999] = 0x77;
    }
  };
  BigRmw proc;
  ASSERT_TRUE(engine.Execute(proc, 0).ok());
  std::vector<char> out(1000);
  ASSERT_TRUE(engine.ReadLatest(0, 0, out.data()).ok());
  EXPECT_EQ(out[0], 0x42);
  EXPECT_EQ(out[999], 0x77);
}

}  // namespace
}  // namespace bohm
