// Shared helpers for engine tests: small catalogs, arithmetic procedures
// with declared footprints, and a timed rendezvous used to force genuine
// transaction overlap in the anomaly tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "storage/schema.h"
#include "txn/procedure.h"

namespace bohm {
namespace testutil {

/// Catalog with one table (id 0) of 8-byte records.
inline Catalog OneTable(uint64_t capacity, TableId id = 0) {
  TableSpec spec;
  spec.id = id;
  spec.name = "t" + std::to_string(id);
  spec.record_size = 8;
  spec.capacity = capacity;
  Catalog c;
  (void)c.AddTable(std::move(spec));
  return c;
}

inline uint64_t ReadU64(TxnOps& ops, TableId t, Key k, bool* found = nullptr) {
  const void* p = ops.Read(t, k);
  if (found != nullptr) *found = (p != nullptr);
  uint64_t v = 0;
  if (p != nullptr) std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void WriteU64(TxnOps& ops, TableId t, Key k, uint64_t v) {
  void* p = ops.Write(t, k);
  if (p != nullptr) std::memcpy(p, &v, sizeof(v));
}

/// Moves `amount` from `src` to `dst` (no balance check): the sum of the
/// two records is invariant — the atomicity observable used by several
/// tests.
class TransferProcedure final : public StoredProcedure {
 public:
  TransferProcedure(TableId table, Key src, Key dst, uint64_t amount)
      : table_(table), src_(src), dst_(dst), amount_(amount) {
    set_.AddRmw(table, src);
    set_.AddRmw(table, dst);
  }
  void Run(TxnOps& ops) override {
    uint64_t s = ReadU64(ops, table_, src_);
    uint64_t d = ReadU64(ops, table_, dst_);
    WriteU64(ops, table_, src_, s - amount_);
    WriteU64(ops, table_, dst_, d + amount_);
  }

 private:
  TableId table_;
  Key src_, dst_;
  uint64_t amount_;
};

/// Reads two records and stores their values (snapshot-consistency probe).
class ReadPairProcedure final : public StoredProcedure {
 public:
  ReadPairProcedure(TableId table, Key a, Key b) : table_(table), a_(a), b_(b) {
    set_.AddRead(table, a);
    set_.AddRead(table, b);
  }
  void Run(TxnOps& ops) override {
    va_ = ReadU64(ops, table_, a_);
    vb_ = ReadU64(ops, table_, b_);
  }
  uint64_t sum() const { return va_ + vb_; }
  uint64_t a() const { return va_; }
  uint64_t b() const { return vb_; }

 private:
  TableId table_;
  Key a_, b_;
  uint64_t va_ = 0, vb_ = 0;
};

/// dst := src * factor — the building block of the write-skew tests
/// (reads one record, blind-writes another).
class MulWriteProcedure final : public StoredProcedure {
 public:
  MulWriteProcedure(TableId table, Key src, Key dst, uint64_t factor)
      : table_(table), src_(src), dst_(dst), factor_(factor) {}
  void Init() {
    set_.AddRead(table_, src_);
    set_.AddWrite(table_, dst_);
  }
  void Run(TxnOps& ops) override {
    uint64_t s = ReadU64(ops, table_, src_);
    BeforeWrite();
    WriteU64(ops, table_, dst_, s * factor_);
  }

 protected:
  /// Hook for rendezvous subclasses.
  virtual void BeforeWrite() {}

  TableId table_;
  Key src_, dst_;
  uint64_t factor_;
};

/// Helper to construct MulWriteProcedure with its footprint declared.
inline ProcedurePtr MakeMulWrite(TableId table, Key src, Key dst,
                                 uint64_t factor) {
  auto p = std::make_unique<MulWriteProcedure>(table, src, dst, factor);
  p->Init();
  return p;
}

/// Increments a record then aborts: the record must be unchanged.
class AbortingIncrement final : public StoredProcedure {
 public:
  AbortingIncrement(TableId table, Key key) : table_(table), key_(key) {
    set_.AddRmw(table, key);
  }
  void Run(TxnOps& ops) override {
    uint64_t v = ReadU64(ops, table_, key_);
    WriteU64(ops, table_, key_, v + 1000);
    ops.Abort();
  }

 private:
  TableId table_;
  Key key_;
};

/// A timed rendezvous: each arriver waits (yielding) until `expected`
/// participants arrived or the deadline passes. Retried executions pass
/// straight through (the count only grows).
class Rendezvous {
 public:
  explicit Rendezvous(int expected) : expected_(expected) {}

  void Arrive() {
    arrivals_.fetch_add(1, std::memory_order_acq_rel);
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (arrivals_.load(std::memory_order_acquire) < expected_ &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }

  bool Overlapped() const {
    return arrivals_.load(std::memory_order_acquire) >= expected_;
  }

 private:
  const int expected_;
  std::atomic<int> arrivals_{0};
};

/// MulWrite that rendezvouses between its read and its write, forcing two
/// such transactions to overlap (the write-skew window).
class RendezvousMulWrite final : public StoredProcedure {
 public:
  RendezvousMulWrite(TableId table, Key src, Key dst, uint64_t factor,
                     Rendezvous* rv)
      : table_(table), src_(src), dst_(dst), factor_(factor), rv_(rv) {
    set_.AddRead(table, src);
    set_.AddWrite(table, dst);
  }
  void Run(TxnOps& ops) override {
    uint64_t s = ReadU64(ops, table_, src_);
    rv_->Arrive();
    WriteU64(ops, table_, dst_, s * factor_);
  }

 private:
  TableId table_;
  Key src_, dst_;
  uint64_t factor_;
  Rendezvous* rv_;
};

}  // namespace testutil
}  // namespace bohm
