#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace bohm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, AbortedCarriesMessage) {
  Status s = Status::Aborted("ww conflict");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.message(), "ww conflict");
  EXPECT_EQ(s.ToString(), "Aborted: ww conflict");
}

TEST(StatusTest, EmptyMessageToString) {
  EXPECT_EQ(Status::NotFound().ToString(), "NotFound");
}

TEST(StatusTest, AllPredicatesMatchTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Rejected("x").IsRejected());
  EXPECT_FALSE(Status::Internal("x").IsAborted());
  EXPECT_FALSE(Status::Rejected("x").IsFailedPrecondition());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(CodeName(Code::kOk), "Ok");
  EXPECT_STREQ(CodeName(Code::kAborted), "Aborted");
  EXPECT_STREQ(CodeName(Code::kNotFound), "NotFound");
  EXPECT_STREQ(CodeName(Code::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(CodeName(Code::kFailedPrecondition), "FailedPrecondition");
  EXPECT_STREQ(CodeName(Code::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(CodeName(Code::kInternal), "Internal");
  EXPECT_STREQ(CodeName(Code::kRejected), "Rejected");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Fails() { return Status::Aborted("inner"); }
Status Propagates() {
  BOHM_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsAborted());
}

}  // namespace
}  // namespace bohm
