#include "twopl/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rand.h"
#include "test_util.h"
#include "twopl/lock_table.h"

namespace bohm {
namespace {

using testutil::OneTable;

std::unique_ptr<TwoPLEngine> MakeEngine(uint64_t keys, uint32_t threads,
                                        uint64_t initial = 0) {
  TwoPLConfig cfg;
  cfg.threads = threads;
  auto engine = std::make_unique<TwoPLEngine>(OneTable(keys), cfg);
  for (Key k = 0; k < keys; ++k) {
    EXPECT_TRUE(engine->Load(0, k, &initial).ok());
  }
  return engine;
}

// ---------- LockTable ----------

TEST(LockTableTest, SameRecordSameEntry) {
  LockTable lt(100);
  LockEntry* a = lt.GetOrCreate(RecordId{0, 5});
  LockEntry* b = lt.GetOrCreate(RecordId{0, 5});
  EXPECT_EQ(a, b);
  EXPECT_EQ(lt.size(), 1u);
}

TEST(LockTableTest, DistinctRecordsDistinctEntries) {
  LockTable lt(100);
  EXPECT_NE(lt.GetOrCreate(RecordId{0, 5}), lt.GetOrCreate(RecordId{1, 5}));
  EXPECT_NE(lt.GetOrCreate(RecordId{0, 5}), lt.GetOrCreate(RecordId{0, 6}));
  EXPECT_EQ(lt.size(), 3u);
}

TEST(LockTableTest, ConcurrentGetOrCreateConverges) {
  LockTable lt(1024);
  constexpr int kThreads = 4, kKeys = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (Key k = 0; k < kKeys; ++k) {
        (void)lt.GetOrCreate(RecordId{0, k});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lt.size(), static_cast<uint64_t>(kKeys));
}

TEST(LockTableTest, PreallocateCreatesEntry) {
  LockTable lt(16);
  lt.Preallocate(RecordId{2, 9});
  EXPECT_EQ(lt.size(), 1u);
}

// ---------- Engine ----------

TEST(TwoPLTest, PutThenRead) {
  auto engine = MakeEngine(8, 1);
  PutProcedure put(0, 3, 42);
  ASSERT_TRUE(engine->Execute(put, 0).ok());
  uint64_t out = 0;
  bool found = false;
  GetProcedure get(0, 3, &out, &found);
  ASSERT_TRUE(engine->Execute(get, 0).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(out, 42u);
}

TEST(TwoPLTest, LogicAbortRestoresUndoImage) {
  auto engine = MakeEngine(4, 1, /*initial=*/50);
  testutil::AbortingIncrement proc(0, 2);
  EXPECT_TRUE(engine->Execute(proc, 0).IsAborted());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 2, &out).ok());
  EXPECT_EQ(out, 50u);  // in-place write rolled back
}

TEST(TwoPLTest, AbortRestoresMultipleWrites) {
  auto engine = MakeEngine(4, 1, /*initial=*/10);
  class AbortingDoubleWrite final : public StoredProcedure {
   public:
    AbortingDoubleWrite() {
      set_.AddRmw(0, 0);
      set_.AddRmw(0, 1);
    }
    void Run(TxnOps& ops) override {
      testutil::WriteU64(ops, 0, 0, 111);
      testutil::WriteU64(ops, 0, 1, 222);
      ops.Abort();
    }
  };
  AbortingDoubleWrite proc;
  EXPECT_TRUE(engine->Execute(proc, 0).IsAborted());
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &a).ok());
  ASSERT_TRUE(engine->ReadLatest(0, 1, &b).ok());
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 10u);
}

TEST(TwoPLTest, NoLostUpdatesUnderContention) {
  auto engine = MakeEngine(2, 4);
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        IncrementProcedure inc(0, 0);
        ASSERT_TRUE(engine->Execute(inc, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 0, &out).ok());
  EXPECT_EQ(out, 4u * kPerThread);
  // 2PL never cc-aborts: every attempt commits.
  EXPECT_EQ(engine->Stats().cc_aborts, 0u);
}

TEST(TwoPLTest, CrossingTransfersNoDeadlock) {
  // Transfers in both directions on overlapping records: lexicographic
  // acquisition order makes deadlock impossible — the test must simply
  // terminate with the sum conserved.
  constexpr uint64_t kKeys = 3, kInitial = 1000;
  auto engine = MakeEngine(kKeys, 4, kInitial);
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 7);
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate directions to maximize crossing lock demands.
        Key a = t % kKeys;
        Key b = (t + 1 + i % (kKeys - 1)) % kKeys;
        if (a == b) b = (b + 1) % kKeys;
        testutil::TransferProcedure xfer(0, a, b, rng.Uniform(5));
        ASSERT_TRUE(engine->Execute(xfer, t).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(engine->ReadLatest(0, k, &v).ok());
    total += v;
  }
  EXPECT_EQ(total, kKeys * kInitial);
}

TEST(TwoPLTest, SharedLocksAllowConcurrentReaders) {
  auto engine = MakeEngine(2, 3, /*initial=*/100);
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        testutil::ReadPairProcedure reader(0, 0, 1);
        ASSERT_TRUE(engine->Execute(reader, t).ok());
        if (reader.sum() != 200) violated.store(true);
      }
    });
  }
  for (int i = 0; i < 300; ++i) {
    testutil::TransferProcedure xfer(0, 0, 1, 1);
    ASSERT_TRUE(engine->Execute(xfer, 2).ok());
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(violated.load());
}

TEST(TwoPLTest, RmwTakesExclusiveOnce) {
  // An RMW appears in both sets: the lock order must collapse it to one
  // exclusive acquisition (no self-deadlock on upgrade).
  auto engine = MakeEngine(2, 1, 5);
  IncrementProcedure inc(0, 1);
  ASSERT_TRUE(engine->Execute(inc, 0).ok());
  uint64_t out = 0;
  ASSERT_TRUE(engine->ReadLatest(0, 1, &out).ok());
  EXPECT_EQ(out, 6u);
}

TEST(TwoPLTest, BadThreadIdRejected) {
  auto engine = MakeEngine(1, 1);
  PutProcedure p(0, 0, 1);
  EXPECT_TRUE(engine->Execute(p, 9).IsInvalidArgument());
}

}  // namespace
}  // namespace bohm
