// Engine-comparison example: runs the same contended YCSB 2RMW-8R
// workload (the paper's Section 4.2.2 scenario) on all five systems —
// Bohm, Hekaton, SI, Silo-OCC and 2PL — through the shared harness, and
// prints a miniature version of the paper's Figure 6 along with abort
// counts, which explain *why* the optimistic multi-version baselines fall
// behind under contention.
//
//   ./build/examples/engine_comparison [threads]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main(int argc, char** argv) {
  const uint32_t threads =
      argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 2;

  YcsbConfig cfg;
  cfg.record_count = 20'000;
  cfg.record_size = 1000;
  cfg.theta = 0.9;  // high contention

  DriverOptions opt;
  opt.warmup_ms = 100;
  opt.measure_ms = 400;

  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  };

  std::printf("YCSB 2RMW-8R, theta=0.9, %u threads, %llu x 1000B records\n\n",
              threads, static_cast<unsigned long long>(cfg.record_count));
  std::printf("%-8s  %14s  %12s  %10s\n", "system", "txns/s", "cc-aborts",
              "abort-rate");
  for (const System& s : AllSystems()) {
    BenchResult r = s.is_bohm
                        ? YcsbBohmPoint(cfg, threads, fn, opt)
                        : YcsbExecutorPoint(s.kind, cfg, threads, fn, opt);
    std::printf("%-8s  %14.0f  %12llu  %9.1f%%\n", s.label.c_str(),
                r.Throughput(),
                static_cast<unsigned long long>(r.cc_aborts),
                100.0 * r.AbortRate());
  }
  std::printf(
      "\nBohm's row shows zero concurrency-control aborts: the CC phase "
      "fixed the serialization order before execution, so contended "
      "writes never waste work (the paper's key contrast with Hekaton "
      "and SI).\n");
  return 0;
}
