// Banking example: the SmallBank workload (Section 4.3 of the paper)
// running on the Bohm engine, with an audit that demonstrates
// serializability end-to-end: the Balance + Amalgamate mix moves money
// between accounts but never creates or destroys it, so the bank's total
// must be exactly preserved no matter how transactions interleave.
//
//   ./build/examples/banking [customers] [transactions]
#include <cstdio>
#include <cstdlib>

#include "bohm/engine.h"
#include "workload/smallbank.h"

using namespace bohm;

int main(int argc, char** argv) {
  SmallBankConfig cfg;
  cfg.customers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const uint64_t txns =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20'000;

  const int64_t initial_total =
      static_cast<int64_t>(cfg.customers) *
      (cfg.initial_savings + cfg.initial_checking);

  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 2;
  bcfg.batch_size = 128;
  BohmEngine engine(SmallBankCatalog(cfg), bcfg);

  Status s = SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
    return engine.Load(t, k, p);
  });
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!engine.Start().ok()) return 1;

  std::printf("bank open: %llu customers, initial total %lld\n",
              static_cast<unsigned long long>(cfg.customers),
              static_cast<long long>(initial_total));

  SmallBankGenerator gen(cfg, /*seed=*/2026);
  for (uint64_t i = 0; i < txns; ++i) {
    (void)engine.Submit(gen.MakeConserving());
  }
  engine.WaitForIdle();

  // Audit: sum every balance.
  int64_t total = 0;
  for (Key c = 0; c < cfg.customers; ++c) {
    uint64_t savings = 0, checking = 0;
    (void)engine.ReadLatest(kSbSavingsTable, c, &savings);
    (void)engine.ReadLatest(kSbCheckingTable, c, &checking);
    total += static_cast<int64_t>(savings) + static_cast<int64_t>(checking);
  }

  StatsSnapshot stats = engine.Stats();
  std::printf("processed: %s\n", stats.ToString().c_str());
  std::printf("audit: final total %lld (expected %lld) -> %s\n",
              static_cast<long long>(total),
              static_cast<long long>(initial_total),
              total == initial_total ? "BALANCED" : "CORRUPT");
  engine.Stop();
  return total == initial_total ? 0 : 1;
}
