// Analytics example: the paper's core promise in action — reads never
// block writes (Section 3). A stream of update transactions runs
// continuously while long "analytics" transactions scan the whole table.
// Because every transfer preserves the table total, each scan proves two
// things at once:
//   1. it observed a transactionally-consistent snapshot (the total is
//      exact, never a torn mix of old and new versions), and
//   2. the update stream kept committing while scans ran (the version
//      counters advance between scans).
//
//   ./build/examples/analytics_snapshot
#include <cstdio>
#include <cstring>
#include <vector>

#include "bohm/engine.h"
#include "common/rand.h"
#include "workload/ycsb.h"

using namespace bohm;

namespace {

/// Moves a random amount between two rows (total-preserving).
class Shuffle final : public StoredProcedure {
 public:
  Shuffle(Key a, Key b, uint64_t amount) : a_(a), b_(b), amount_(amount) {
    set_.AddRmw(kYcsbTableId, a);
    set_.AddRmw(kYcsbTableId, b);
  }
  void Run(TxnOps& ops) override {
    uint64_t va = 0, vb = 0;
    std::memcpy(&va, ops.Read(kYcsbTableId, a_), sizeof(va));
    std::memcpy(&vb, ops.Read(kYcsbTableId, b_), sizeof(vb));
    va -= amount_;
    vb += amount_;
    std::memcpy(ops.Write(kYcsbTableId, a_), &va, sizeof(va));
    std::memcpy(ops.Write(kYcsbTableId, b_), &vb, sizeof(vb));
  }

 private:
  Key a_, b_;
  uint64_t amount_;
};

}  // namespace

int main() {
  constexpr uint64_t kRows = 10'000;
  constexpr uint64_t kInitial = 100;

  YcsbConfig cfg;
  cfg.record_count = kRows;
  cfg.record_size = 8;

  BohmConfig bcfg;
  bcfg.cc_threads = 2;
  bcfg.exec_threads = 2;
  bcfg.batch_size = 128;
  BohmEngine engine(YcsbCatalog(cfg), bcfg);
  for (Key k = 0; k < kRows; ++k) {
    (void)engine.Load(kYcsbTableId, k, &kInitial);
  }
  if (!engine.Start().ok()) return 1;

  // Interleave update bursts with full-table analytics scans. The scans
  // carry results we read back afterwards, so they stay caller-owned and
  // go through SubmitBorrowed (Submit()-owned procedures are destroyed
  // once their batch slot is recycled).
  Rng rng(7);
  std::vector<std::unique_ptr<YcsbScanProcedure>> scans;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 2000; ++i) {
      Key a = rng.Uniform(kRows);
      Key b = rng.Uniform(kRows);
      while (b == a) b = rng.Uniform(kRows);
      (void)engine.Submit(
          std::make_unique<Shuffle>(a, b, rng.Uniform(50)));
    }
    std::vector<Key> all(kRows);
    for (Key k = 0; k < kRows; ++k) all[k] = k;
    scans.push_back(std::make_unique<YcsbScanProcedure>(std::move(all)));
    (void)engine.SubmitBorrowed(scans.back().get());
  }
  engine.WaitForIdle();

  const uint64_t expected = kRows * kInitial;
  bool all_consistent = true;
  std::printf("scan  observed-total  expected  consistent\n");
  for (size_t i = 0; i < scans.size(); ++i) {
    bool ok = scans[i]->observed_sum() == expected;
    all_consistent &= ok;
    std::printf("%4zu  %14llu  %8llu  %s\n", i,
                static_cast<unsigned long long>(scans[i]->observed_sum()),
                static_cast<unsigned long long>(expected),
                ok ? "yes" : "NO");
  }
  StatsSnapshot stats = engine.Stats();
  std::printf("\nupdates + scans all committed: %s\n",
              stats.ToString().c_str());
  std::printf("%s\n", all_consistent
                          ? "every analytics scan saw a perfect snapshot "
                            "while updates flowed — reads never block writes."
                          : "CONSISTENCY VIOLATION");
  engine.Stop();
  return all_consistent ? 0 : 1;
}
