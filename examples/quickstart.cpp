// Quickstart: define a table, write a stored procedure, run it through
// the Bohm engine.
//
//   cmake --build build && ./build/examples/quickstart
//
// Demonstrates the full public API surface in ~80 lines: Catalog /
// TableSpec, StoredProcedure with a declared read/write set, BohmConfig,
// Load / Start / Submit / WaitForIdle / Stop, and engine statistics.
#include <cstdio>
#include <cstring>

#include "bohm/engine.h"

using namespace bohm;

namespace {

constexpr TableId kAccounts = 0;

// A stored procedure declares its footprint in the constructor (Bohm needs
// the write-set before execution; the read-set enables the annotation
// optimization) and implements Run() against the engine-provided TxnOps.
class PayInterest final : public StoredProcedure {
 public:
  PayInterest(Key account, uint64_t rate_percent)
      : account_(account), rate_(rate_percent) {
    set_.AddRmw(kAccounts, account);  // read-modify-write of one record
  }

  void Run(TxnOps& ops) override {
    uint64_t balance = 0;
    const void* current = ops.Read(kAccounts, account_);
    if (current != nullptr) std::memcpy(&balance, current, sizeof(balance));
    balance += balance * rate_ / 100;
    void* next = ops.Write(kAccounts, account_);
    std::memcpy(next, &balance, sizeof(balance));
  }

 private:
  Key account_;
  uint64_t rate_;
};

}  // namespace

int main() {
  // 1. Describe the schema: one table of 8-byte records.
  TableSpec accounts;
  accounts.id = kAccounts;
  accounts.name = "accounts";
  accounts.record_size = 8;
  accounts.capacity = 1024;
  Catalog catalog({accounts});

  // 2. Configure the engine: m concurrency-control threads, n execution
  //    threads, batched coordination (see the paper, Section 3).
  BohmConfig config;
  config.cc_threads = 2;
  config.exec_threads = 2;
  config.batch_size = 64;

  BohmEngine engine(catalog, config);

  // 3. Load initial data (before Start).
  for (Key account = 0; account < 10; ++account) {
    uint64_t initial = 1000 * (account + 1);
    Status s = engine.Load(kAccounts, account, &initial);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. Start the pipeline and submit transactions.
  if (Status s = engine.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int round = 0; round < 3; ++round) {
    for (Key account = 0; account < 10; ++account) {
      (void)engine.Submit(std::make_unique<PayInterest>(account, 5));
    }
  }
  engine.WaitForIdle();

  // 5. Inspect results.
  std::printf("account  balance\n");
  for (Key account = 0; account < 10; ++account) {
    uint64_t balance = 0;
    (void)engine.ReadLatest(kAccounts, account, &balance);
    std::printf("%7llu  %llu\n", static_cast<unsigned long long>(account),
                static_cast<unsigned long long>(balance));
  }
  StatsSnapshot stats = engine.Stats();
  std::printf("\n%s\n", stats.ToString().c_str());
  std::printf("all %llu transactions committed, zero aborts — Bohm is "
              "pessimistic and serializable.\n",
              static_cast<unsigned long long>(stats.commits));

  engine.Stop();
  return 0;
}
