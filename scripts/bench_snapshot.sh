#!/usr/bin/env bash
# Capture the committed bench trajectory: run the snapshot benchmarks
# with their default parameters (any BOHM_BENCH_* knobs already in the
# environment are honored) and write one BENCH_<figure>.json per binary
# at the repo root. Re-run after perf-relevant changes and commit the
# diff — the JSON embeds throughput and the full latency percentiles per
# point, so the git history of these files is the perf trajectory.
#
# Usage: bench_snapshot.sh [build-dir]   (default: <repo>/build)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-$root/build}

benches=(fig5_ycsb_10rmw fig7_theta_sweep abl_durability fig11_hotspot)

for b in "${benches[@]}"; do
  bin="$build/$b"
  if [[ ! -x "$bin" ]]; then
    echo "FAIL: $bin not built (run: cmake --build $build -j)" >&2
    exit 1
  fi
done

# Write each snapshot to a temp file and mv it into place: an interrupted
# or crashed bench run must never leave a truncated BENCH_*.json behind
# for git to commit as if it were a real measurement.
for b in "${benches[@]}"; do
  out="$root/BENCH_$b.json"
  tmp=$(mktemp "$out.XXXXXX.tmp")
  trap 'rm -f "$tmp"' EXIT
  echo "== $b -> $out"
  BOHM_BENCH_JSON="$tmp" "$build/$b"
  if [[ ! -s "$tmp" ]]; then
    echo "FAIL: $b wrote no JSON" >&2
    exit 1
  fi
  mv "$tmp" "$out"
  trap - EXIT
done

echo "Snapshots written. Review and commit the BENCH_*.json diffs."
