#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every translation unit under
# src/, using a compile_commands.json produced by any configured build
# directory. CI runs this with --werror; locally it reports and exits 0
# unless --werror is given.
#
# Usage: scripts/run_clang_tidy.sh [--werror] [build-dir]
#   build-dir defaults to the first of build/lint, build/release, build
#   that contains compile_commands.json (configure one with
#   `cmake --preset lint` or `cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON`).
set -u

cd "$(dirname "$0")/.."

WERROR=0
if [[ "${1:-}" == "--werror" ]]; then
  WERROR=1
  shift
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  # The dev container ships only GCC; clang-tidy runs in the dedicated CI
  # job. Exiting 0 here keeps the script safe to call unconditionally.
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (CI runs it)"
  exit 0
fi

BUILD_DIR="${1:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  for d in build/lint build/release build; do
    if [[ -f "$d/compile_commands.json" ]]; then
      BUILD_DIR="$d"
      break
    fi
  done
fi
if [[ -z "${BUILD_DIR}" || ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
  exit 2
fi

ARGS=(-p "${BUILD_DIR}" --quiet)
if [[ "${WERROR}" == 1 ]]; then
  ARGS+=(--warnings-as-errors='*')
fi

# All product TUs; tests/bench are linted by compiler warnings only.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

echo "run_clang_tidy: ${#SOURCES[@]} files, build dir ${BUILD_DIR}"
FAILED=0
for f in "${SOURCES[@]}"; do
  if ! clang-tidy "${ARGS[@]}" "$f"; then
    FAILED=1
  fi
done

if [[ "${FAILED}" == 1 && "${WERROR}" == 1 ]]; then
  echo "run_clang_tidy: FAILED (warnings treated as errors)" >&2
  exit 1
fi
echo "run_clang_tidy: done"
