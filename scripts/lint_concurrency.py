#!/usr/bin/env python3
"""Concurrency house-rules lint (docs/CONCURRENCY.md).

Three rules, all over src/ (the product tree; tests and benches may use
relaxed atomics freely in scaffolding):

1. relaxed-justification — every `memory_order_relaxed` /
   `__ATOMIC_RELAXED` use must carry a `// relaxed:` justification
   comment on the same line or within the preceding JUSTIFY_WINDOW lines.
   Relaxed ordering is the one memory order whose correctness argument
   lives entirely outside the type system; the argument must be written
   down where the code is.

2. suppression-citation — every `race:`/`deadlock:`/... entry in
   tsan.supp must cite a symbol that still exists somewhere under src/.
   Stale suppressions silently widen to nothing or to unrelated code.

3. plain-copy — a plain `memcpy`/`memmove`/`memset` whose arguments
   involve `payload()` (the SVSlot bytes that the Silo seqlock also
   accesses via word-wise atomics, common/atomic_words.h) must carry a
   `// plain-copy:` justification (e.g. "exclusive record lock held",
   "single-threaded load phase"). Mixing plain and atomic access to the
   same bytes without a stated exclusion argument is how the original
   tsan.supp entries were born.

4. raw-io — raw durability syscalls (`fsync`, `fdatasync`, `::write`,
   `pwrite`, `ftruncate`, ...) are confined to src/log/ (rule R6,
   docs/CONCURRENCY.md and docs/DURABILITY.md): the durable-watermark
   ordering argument only covers I/O routed through the LogEnv
   abstraction, and scattered write paths are also invisible to
   FaultLogEnv, so the crash matrix could not exercise them.

Exit status 0 when clean; 1 with file:line diagnostics otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SUPP = REPO / "tsan.supp"

# How many lines above a flagged line a justification comment may sit.
JUSTIFY_WINDOW = 6

RELAXED_RE = re.compile(r"memory_order_relaxed|__ATOMIC_RELAXED")
RELAXED_TAG = "relaxed:"

PLAIN_COPY_RE = re.compile(r"\b(?:std::)?(?:memcpy|memmove|memset)\s*\(")
PLAIN_COPY_FIELD_RE = re.compile(r"\bpayload\s*\(\s*\)")
PLAIN_COPY_TAG = "plain-copy:"

# Raw durability syscalls. `write` is matched only in its `::write(...)`
# spelling (the codebase idiom for the syscall) so that TxnOps::Write,
# prose like "write-write", and fopen/fprintf stay out of scope.
RAW_IO_RE = re.compile(
    r"(?:\b(?:fsync|fdatasync|pwrite|pread|ftruncate)\s*\("
    r"|\b(?:O_DIRECT|O_SYNC)\b"
    r"|::\s*write\s*\()"
)
RAW_IO_ALLOWED = "log"  # src/log/ owns the durable write path

# tsan.supp entry: "<type>:<pattern>" (see TSan SuppressionTypes).
SUPP_ENTRY_RE = re.compile(
    r"^(race|race_top|thread|mutex|signal|deadlock|called_from_lib)"
    r":(?P<pattern>\S+)\s*$"
)


def source_files() -> list[Path]:
    return sorted(
        p
        for p in SRC.rglob("*")
        if p.suffix in {".h", ".cc", ".cpp", ".hpp"} and p.is_file()
    )


def has_tag(lines: list[str], idx: int, tag: str) -> bool:
    """True if lines[idx] or the JUSTIFY_WINDOW lines above carry `tag`."""
    lo = max(0, idx - JUSTIFY_WINDOW)
    return any(tag in line for line in lines[lo : idx + 1])


def check_relaxed(path: Path, lines: list[str], errors: list[str]) -> None:
    for i, line in enumerate(lines):
        if RELAXED_RE.search(line) and not has_tag(lines, i, RELAXED_TAG):
            errors.append(
                f"{path.relative_to(REPO)}:{i + 1}: relaxed atomic without a "
                f"'// {RELAXED_TAG}' justification within {JUSTIFY_WINDOW} "
                f"lines"
            )


def check_plain_copy(path: Path, lines: list[str], errors: list[str]) -> None:
    for i, line in enumerate(lines):
        if not PLAIN_COPY_RE.search(line):
            continue
        # The call may wrap; consider the call line plus the next two for
        # the sensitive-field test.
        call_text = " ".join(lines[i : i + 3])
        if not PLAIN_COPY_FIELD_RE.search(call_text):
            continue
        if not has_tag(lines, i, PLAIN_COPY_TAG):
            errors.append(
                f"{path.relative_to(REPO)}:{i + 1}: plain memory copy on a "
                f"seqlock-shared payload() without a '// {PLAIN_COPY_TAG}' "
                f"justification within {JUSTIFY_WINDOW} lines"
            )


def check_raw_io(path: Path, lines: list[str], errors: list[str]) -> None:
    rel = path.relative_to(SRC)
    if rel.parts and rel.parts[0] == RAW_IO_ALLOWED:
        return
    for i, line in enumerate(lines):
        if RAW_IO_RE.search(line):
            errors.append(
                f"{path.relative_to(REPO)}:{i + 1}: raw durability I/O "
                f"outside src/{RAW_IO_ALLOWED}/ — route it through LogEnv "
                f"(rule R6; keeps fault injection and the durable-watermark "
                f"ordering argument complete)"
            )


def check_suppressions(errors: list[str]) -> None:
    if not SUPP.exists():
        return
    entries: list[tuple[int, str]] = []
    for i, line in enumerate(SUPP.read_text().splitlines()):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = SUPP_ENTRY_RE.match(line)
        if m is None:
            errors.append(
                f"tsan.supp:{i + 1}: unrecognized suppression syntax: {line!r}"
            )
            continue
        entries.append((i + 1, m.group("pattern")))
    if not entries:
        return
    blob = "\n".join(p.read_text() for p in source_files())
    for lineno, pattern in entries:
        # A suppression pattern is a glob over mangled-ish symbol names;
        # its identifier components must appear in the tree. Check the
        # final identifier (function/method name), the most specific part.
        ident = re.split(r"[:*]", pattern.rstrip("*"))[-1]
        if not ident:
            errors.append(
                f"tsan.supp:{lineno}: cannot extract a symbol from "
                f"{pattern!r}"
            )
        elif not re.search(rf"\b{re.escape(ident)}\b", blob):
            errors.append(
                f"tsan.supp:{lineno}: suppression cites '{ident}' "
                f"(from {pattern!r}) which no longer exists under src/ — "
                f"delete or update the entry"
            )


def main() -> int:
    errors: list[str] = []
    for path in source_files():
        lines = path.read_text().splitlines()
        check_relaxed(path, lines, errors)
        check_plain_copy(path, lines, errors)
        check_raw_io(path, lines, errors)
    check_suppressions(errors)
    if errors:
        print(f"lint_concurrency: {len(errors)} violation(s)", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(
        f"lint_concurrency: OK "
        f"({len(source_files())} files, suppressions clean)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
