#!/usr/bin/env bash
# Smoke-check a benchmark binary's JSON output: run it with tiny
# parameters (the caller sets the BOHM_BENCH_* knobs; CTest does), then
# assert that every Bohm point carries a real latency distribution —
# lat_count > 0 and 0 < p50 <= p99 <= p999. Guards the end-to-end
# latency path (Submit stamp -> exec-stage record -> fold -> JSON)
# against silently reporting zeros.
#
# Usage: bench_smoke.sh <bench-binary> <json-output-path>
set -euo pipefail

bin=${1:?usage: bench_smoke.sh <bench-binary> <json-output-path>}
out=${2:?usage: bench_smoke.sh <bench-binary> <json-output-path>}

rm -f "$out"
BOHM_BENCH_JSON="$out" "$bin"

if [[ ! -s "$out" ]]; then
  echo "FAIL: $bin did not write $out" >&2
  exit 1
fi

# One point per line with a fixed key order (see src/harness/report.cc),
# so awk can assert without a JSON parser.
awk '
  /"system": "Bohm"/ {
    bohm++
    lat_count = p50 = p99 = p999 = -1
    for (i = 1; i <= NF; ++i) {
      gsub(/[",:{}]/, "", $i)
      if ($i == "lat_count") lat_count = $(i + 1) + 0
      if ($i == "p50_us") p50 = $(i + 1) + 0
      if ($i == "p99_us") p99 = $(i + 1) + 0
      if ($i == "p999_us") p999 = $(i + 1) + 0
    }
    if (lat_count <= 0) { print "FAIL: Bohm point with lat_count<=0: " $0; bad++ }
    else if (p50 <= 0) { print "FAIL: Bohm point with p50_us<=0: " $0; bad++ }
    else if (p50 > p99 || p99 > p999) {
      print "FAIL: non-monotone percentiles (p50 " p50 ", p99 " p99 ", p999 " p999 "): " $0
      bad++
    }
  }
  END {
    if (bohm == 0) { print "FAIL: no Bohm points in output"; exit 1 }
    if (bad > 0) exit 1
    print "OK: " bohm " Bohm points, all with non-zero monotone latency"
  }
' "$out"
