#!/usr/bin/env bash
# Smoke-check a benchmark binary's JSON output: run it with tiny
# parameters (the caller sets the BOHM_BENCH_* knobs; CTest does), then
# assert that every Bohm point carries
#   - a real latency distribution: lat_count > 0 and
#     0 < p50 <= p99 <= p999 (guards the end-to-end latency path,
#     Submit stamp -> exec-stage record -> fold -> JSON), and
#   - the per-stage pipeline stall attribution of the streamed handoff:
#     seq_stall_us / cc_stall_us / exec_stall_us present and >= 0
#     (guards the stall accounting path, stage counters -> snapshot
#     delta -> JSON), and
#   - the durable-log accounting: log_stall_us and fsyncs present and
#     >= 0 on every Bohm point (zero when the bench runs without
#     durability — the keys must still be emitted so the ablation JSON
#     stays line-compatible), and
#   - the adaptive-repartitioning counters: cc_migrations and
#     cc_imbalance present and >= 0 on every Bohm point (zero / 1.0 when
#     the engine runs the static assignment — again, the keys must be
#     emitted unconditionally).
#
# With BOHM_SMOKE_REQUIRE_MIGRATIONS=1 (the hotspot-bench smoke sets it:
# that bench runs an adaptive point under skewed traffic, so a zero
# migration count means the controller rotted), at least one Bohm point
# must additionally report cc_migrations > 0.
#
# When BOHM_SMOKE_MIN_TPUT > 0 (CTest sets it on Release builds only —
# sanitizer and debug presets run an order of magnitude slower), the
# best Bohm 1-thread point must also clear that throughput floor.
# Baseline for the floor: the barriered (pre-streaming) pipeline at the
# same smoke knobs (BOHM_BENCH_THREADS=1,2 RECORDS=512 WARMUP_MS=10
# MEASURE_MS=50) measured ~323K txn/s at 1 thread on the CI host; the
# floor is set well below it (see CMakeLists.txt) because 50ms windows
# on a loaded host are noisy — it catches an order-of-magnitude
# regression (e.g. a stage accidentally serialized against a sleeping
# wait), while regression *to a barrier* is caught structurally by the
# bohm_streaming_test overlap tests, not by timing.
#
# Usage: bench_smoke.sh <bench-binary> <json-output-path>
set -euo pipefail

bin=${1:?usage: bench_smoke.sh <bench-binary> <json-output-path>}
out=${2:?usage: bench_smoke.sh <bench-binary> <json-output-path>}
min_tput=${BOHM_SMOKE_MIN_TPUT:-0}
require_migrations=${BOHM_SMOKE_REQUIRE_MIGRATIONS:-0}

rm -f "$out"
BOHM_BENCH_JSON="$out" "$bin"

if [[ ! -s "$out" ]]; then
  echo "FAIL: $bin did not write $out" >&2
  exit 1
fi

# One point per line with a fixed key order (see src/harness/report.cc),
# so awk can assert without a JSON parser.
awk -v min_tput="$min_tput" -v require_migrations="$require_migrations" '
  # Prefix match: the hotspot ablation emits "Bohm-static"/"Bohm-adaptive"
  # variants; all Bohm points run through the same driver, so every
  # assertion below applies to them unchanged.
  /"system": "Bohm/ {
    bohm++
    lat_count = p50 = p99 = p999 = -1
    seq_stall = cc_stall = exec_stall = -1
    log_stall = fsyncs = -1
    cc_migr = cc_imb = -1
    threads = tput = -1
    # Strip JSON punctuation up front so values quoted as strings (the
    # swept parameters, e.g. "threads": "1") parse numerically too.
    gsub(/[",:{}]/, "", $0)
    for (i = 1; i <= NF; ++i) {
      if ($i == "lat_count") lat_count = $(i + 1) + 0
      if ($i == "p50_us") p50 = $(i + 1) + 0
      if ($i == "p99_us") p99 = $(i + 1) + 0
      if ($i == "p999_us") p999 = $(i + 1) + 0
      if ($i == "seq_stall_us") seq_stall = $(i + 1) + 0
      if ($i == "cc_stall_us") cc_stall = $(i + 1) + 0
      if ($i == "exec_stall_us") exec_stall = $(i + 1) + 0
      if ($i == "log_stall_us") log_stall = $(i + 1) + 0
      if ($i == "fsyncs") fsyncs = $(i + 1) + 0
      if ($i == "cc_migrations") cc_migr = $(i + 1) + 0
      if ($i == "cc_imbalance") cc_imb = $(i + 1) + 0
      if ($i == "threads") threads = $(i + 1) + 0
      if ($i == "tput_txns_per_sec") tput = $(i + 1) + 0
    }
    if (lat_count <= 0) { print "FAIL: Bohm point with lat_count<=0: " $0; bad++ }
    else if (p50 <= 0) { print "FAIL: Bohm point with p50_us<=0: " $0; bad++ }
    else if (p50 > p99 || p99 > p999) {
      print "FAIL: non-monotone percentiles (p50 " p50 ", p99 " p99 ", p999 " p999 "): " $0
      bad++
    }
    # Stall attribution must be emitted (>= 0 means the key was present;
    # the sentinel -1 survives only when the field is missing). Zero is a
    # legal value — a perfectly balanced pipeline may not stall at all.
    if (seq_stall < 0 || cc_stall < 0 || exec_stall < 0) {
      print "FAIL: Bohm point missing stall attribution (seq " seq_stall \
            ", cc " cc_stall ", exec " exec_stall "): " $0
      bad++
    }
    if (log_stall < 0 || fsyncs < 0) {
      print "FAIL: Bohm point missing durable-log accounting (log_stall_us " \
            log_stall ", fsyncs " fsyncs "): " $0
      bad++
    }
    # Adaptive counters must be emitted on every Bohm point; zero
    # migrations / imbalance 1.0 is the legal static-assignment reading.
    if (cc_migr < 0 || cc_imb < 0) {
      print "FAIL: Bohm point missing adaptive counters (cc_migrations " \
            cc_migr ", cc_imbalance " cc_imb "): " $0
      bad++
    }
    total_migr += cc_migr > 0 ? cc_migr : 0
    if (threads == 1 && tput > best_1t) best_1t = tput
  }
  END {
    if (bohm == 0) { print "FAIL: no Bohm points in output"; exit 1 }
    if (min_tput > 0) {
      if (best_1t + 0 < min_tput) {
        print "FAIL: Bohm 1-thread throughput " best_1t + 0 \
              " txn/s below floor " min_tput " (barriered baseline ~323K)"
        bad++
      } else {
        print "OK: Bohm 1-thread throughput " best_1t " txn/s >= floor " min_tput
      }
    }
    if (require_migrations + 0 > 0) {
      if (total_migr + 0 == 0) {
        print "FAIL: BOHM_SMOKE_REQUIRE_MIGRATIONS set but no Bohm point reported cc_migrations > 0"
        bad++
      } else {
        print "OK: adaptive points reported " total_migr " migrations"
      }
    }
    if (bad > 0) exit 1
    print "OK: " bohm " Bohm points, all with non-zero monotone latency and stall attribution"
  }
' "$out"
