// Figure 10: SmallBank throughput vs. thread count, high contention
// (50 customers, top) and low contention (100,000 customers, bottom).
// Every transaction additionally spins 50us (Section 4.3).
// Paper shape: high contention — 2PL best but Bohm closer than in the
// YCSB RMW experiment (small 8-byte records + 20% read-only Balance);
// Hekaton/SI drop from aborts. Low contention — 2PL/OCC/Bohm similar,
// Hekaton/SI capped by the timestamp counter (~3x below Bohm at scale).
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

void RunContention(uint64_t customers, const char* label, const char* tag,
                   JsonReport& json) {
  SmallBankConfig cfg;
  cfg.customers = customers;
  cfg.spin_us = BenchSpinUs();
  const DriverOptions opt = BenchDriverOptions();

  std::vector<std::string> cols = {"threads"};
  for (const System& s : AllSystems()) cols.push_back(s.label + " (txns/s)");
  Report report(std::string("Figure 10 (") + label + "): SmallBank, " +
                    std::to_string(customers) + " customers, spin " +
                    std::to_string(cfg.spin_us) + "us",
                cols);

  for (int threads : BenchThreads()) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? SmallBankBohmPoint(cfg, static_cast<uint32_t>(threads), opt)
              : SmallBankExecutorPoint(s.kind, cfg,
                                       static_cast<uint32_t>(threads), opt);
      row.push_back(Report::FormatTput(r.Throughput()));
      json.AddPoint({{"contention", tag},
                     {"customers", std::to_string(customers)},
                     {"threads", std::to_string(threads)}},
                    s.label, r);
    }
    report.AddRow(std::move(row));
  }
  report.Print();
}

}  // namespace

int main() {
  JsonReport json("fig10_smallbank");
  RunContention(
      static_cast<uint64_t>(EnvInt64("BOHM_BENCH_HIGH_CUSTOMERS", 50)),
      "top: high contention", "high", json);
  RunContention(
      static_cast<uint64_t>(EnvInt64("BOHM_BENCH_LOW_CUSTOMERS", 100'000)),
      "bottom: low contention", "low", json);
  json.Write();
  std::printf(
      "\nPaper shape: high contention — 2PL best, Bohm second and close; "
      "Hekaton/SI drop (aborts + counter). Low contention — 2PL/OCC/Bohm "
      "cluster; Hekaton/SI ~3x lower (global counter).\n");
  return 0;
}
