// Figure 8: throughput with long-running read-only transactions mixed
// into a low-contention 10RMW update stream. The read-only fraction
// sweeps 0% to 100% (the paper plots 1%..100% on a log axis). Read-only
// transactions read `scan_size` uniformly-chosen records (paper: 10,000).
// Paper shape: with a small read-only fraction, the multi-version systems
// beat the single-version systems by ~an order of magnitude; at 100%
// read-only all systems converge.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = 0.0;  // low-contention updates (Section 4.2.3)
  cfg.scan_size = BenchScanSize(cfg.record_count);
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();

  std::vector<double> fractions = {0.0, 0.01, 0.05, 0.2, 0.5, 1.0};

  JsonReport json("fig8_readonly_mix");
  std::vector<std::string> cols = {"readonly%"};
  for (const System& s : AllSystems()) cols.push_back(s.label + " (txns/s)");
  Report report(
      "Figure 8: YCSB 10RMW + long read-only transactions (scan " +
          std::to_string(cfg.scan_size) + " records), " +
          std::to_string(threads) + " threads",
      cols);

  for (double frac : fractions) {
    auto fn = [frac](YcsbGenerator& gen) { return gen.MakeMixed(frac); };
    std::vector<std::string> row = {Report::FormatDouble(100 * frac, 0)};
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
              : YcsbExecutorPoint(s.kind, cfg,
                                  static_cast<uint32_t>(threads), fn, opt);
      row.push_back(Report::FormatTput(r.Throughput()));
      json.AddPoint({{"readonly_pct", Report::FormatDouble(100 * frac, 0)},
                     {"threads", std::to_string(threads)}},
                    s.label, r);
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  json.Write();
  std::printf(
      "\nPaper shape: multi-version systems (Bohm, SI, Hekaton) dominate "
      "single-version (OCC, 2PL) when a small fraction of transactions is "
      "read-only; all converge at 100%% read-only.\n");
  return 0;
}
