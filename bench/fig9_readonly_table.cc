// Figure 9 (table): YCSB throughput with 1% long-running read-only
// transactions — the same rows the paper prints: absolute throughput per
// system plus each system's throughput as a percentage of Bohm's.
// Paper values for reference: Bohm 181,565 (100%); SI 64.32%; Hekaton
// 60.64%; 2PL 15.64%; OCC 8.89%.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = 0.0;
  cfg.scan_size = BenchScanSize(cfg.record_count);
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) { return gen.MakeMixed(0.01); };

  // Bohm first: it is the 100% reference.
  BenchResult bohm_r =
      YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt);
  const double bohm_tput = bohm_r.Throughput();

  JsonReport json("fig9_readonly_table");
  json.AddPoint({{"threads", std::to_string(threads)}}, "Bohm", bohm_r);
  Report report(
      "Figure 9: YCSB throughput with 1% long read-only transactions, " +
          std::to_string(threads) + " threads",
      {"System", "Throughput (txns/sec)", "% Bohm's Throughput"});
  report.AddRow({"Bohm", Report::FormatTput(bohm_tput), "100%"});
  for (const System& s : AllSystems()) {
    if (s.is_bohm) continue;
    BenchResult r = YcsbExecutorPoint(s.kind, cfg,
                                      static_cast<uint32_t>(threads), fn, opt);
    double pct = bohm_tput > 0 ? 100.0 * r.Throughput() / bohm_tput : 0;
    report.AddRow({s.label, Report::FormatTput(r.Throughput()),
                   Report::FormatDouble(pct, 2) + "%"});
    json.AddPoint({{"threads", std::to_string(threads)}}, s.label, r);
  }
  report.Print();
  json.Write();
  std::printf(
      "\nPaper row order (40 threads): Bohm 100%%, SI 64.3%%, Hekaton "
      "60.6%%, 2PL 15.6%%, OCC 8.9%% — multi-version systems ~an order of "
      "magnitude above single-version ones.\n");
  return 0;
}
