// Figure 4: interaction between the concurrency-control and transaction-
// execution modules. Workload: 10 RMWs per transaction over 1M 8-byte
// records, uniform key choice (Section 4.1). The x-axis sweeps execution
// threads; one series per CC-thread count. Expected shape: throughput
// rises with execution threads until it matches the CC layer's capacity,
// then plateaus at a level that grows with the number of CC threads.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"
#include "workload/micro.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  MicroConfig mcfg;
  mcfg.record_count = BenchRecords(1'000'000);
  const DriverOptions opt = BenchDriverOptions();
  std::vector<int> exec_threads = BenchThreads();
  std::vector<int> cc_threads =
      EnvIntList("BOHM_BENCH_CC_THREADS", {1, 2, 4});

  YcsbConfig ycfg;
  ycfg.record_count = mcfg.record_count;
  ycfg.record_size = 8;
  ycfg.theta = 0.0;

  JsonReport json("fig4_cc_scalability");
  std::vector<std::string> cols = {"exec_threads"};
  for (int cc : cc_threads) {
    cols.push_back("cc=" + std::to_string(cc) + " (txns/s)");
  }
  Report report(
      "Figure 4: CC/execution module interaction (10RMW, 8B records, "
      "uniform)",
      cols);

  for (int et : exec_threads) {
    std::vector<std::string> row = {std::to_string(et)};
    for (int cc : cc_threads) {
      BohmConfig bcfg;
      bcfg.cc_threads = static_cast<uint32_t>(cc);
      bcfg.exec_threads = static_cast<uint32_t>(et);
      bcfg.batch_size =
          static_cast<uint32_t>(EnvInt64("BOHM_BENCH_BATCH_SIZE", 256));
      BenchResult r = YcsbBohmPoint(
          ycfg, 0,
          [](YcsbGenerator& gen) {
            return gen.Make(YcsbGenerator::TxnType::k10Rmw);
          },
          opt, &bcfg);
      row.push_back(Report::FormatTput(r.Throughput()));
      json.AddPoint({{"cc_threads", std::to_string(cc)},
                     {"exec_threads", std::to_string(et)}},
                    "Bohm", r);
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  json.Write();
  std::printf(
      "\nPaper shape: each series rises with execution threads, then "
      "plateaus at the CC layer's capacity; the plateau grows with CC "
      "threads (intra-transaction parallelism).\n");
  return 0;
}
