// Ablation: the read-set annotation optimization (Section 3.2.3). With
// annotation on, a transaction gets a direct reference to the version it
// must read; with annotation off, execution threads traverse the version
// chain. The paper credits this optimization for Bohm's margin over
// Hekaton/SI in the long-read-only experiment (Section 4.2.3), so the
// ablation uses that workload: hot updates + scans.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(50'000);
  cfg.record_size = 64;
  cfg.theta = 0.9;  // hot keys => long version chains
  cfg.scan_size = BenchScanSize(cfg.record_count);
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) { return gen.MakeMixed(0.05); };

  Report report(
      "Ablation: read-set annotation (hot 10RMW + 5% scans, theta=0.9)",
      {"annotation", "throughput (txns/s)"});
  for (bool annotation : {true, false}) {
    BohmConfig bcfg = BohmSplit(static_cast<uint32_t>(threads));
    bcfg.read_annotation = annotation;
    BenchResult r = YcsbBohmPoint(cfg, 0, fn, opt, &bcfg);
    report.AddRow({annotation ? "on" : "off",
                   Report::FormatTput(r.Throughput())});
  }
  report.Print();
  std::printf(
      "\nExpected: annotation >= traversal; the gap grows with version "
      "chain length (hot keys, GC lag).\n");
  return 0;
}
