// Ablation: transaction pre-processing (Section 3.2.2). Without it,
// every CC thread scans every transaction's read/write set to find keys
// in its partition — serially-replicated work that Amdahl's law turns
// into a ceiling as CC threads grow. With it, the sequencer annotates
// each transaction with the CC threads it concerns, and foreign
// transactions are skipped with one bit test.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 8;
  cfg.theta = 0.0;
  const DriverOptions opt = BenchDriverOptions();
  auto fn = [](YcsbGenerator& gen) {
    // Single-record transactions maximize the fraction of CC work that is
    // pure scanning: with m CC threads, only ~1/m of scans find work.
    return std::make_unique<YcsbRmwProcedure>(gen.DrawDistinctKeys(1), 8);
  };

  std::vector<int> cc_threads = EnvIntList("BOHM_BENCH_CC_THREADS", {1, 2, 4});

  std::vector<std::string> cols = {"cc_threads", "preprocessing on (txns/s)",
                                   "preprocessing off (txns/s)"};
  Report report("Ablation: CC interest pre-processing (1RMW, 8B records)",
                cols);
  for (int cc : cc_threads) {
    std::vector<std::string> row = {std::to_string(cc)};
    for (bool pre : {true, false}) {
      BohmConfig bcfg;
      bcfg.cc_threads = static_cast<uint32_t>(cc);
      bcfg.exec_threads = 2;
      bcfg.interest_preprocessing = pre;
      BenchResult r = YcsbBohmPoint(cfg, 0, fn, opt, &bcfg);
      row.push_back(Report::FormatTput(r.Throughput()));
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  std::printf(
      "\nExpected: with pre-processing the per-CC-thread scan cost stops "
      "growing with thread count (the paper's proposed fix for the "
      "every-thread-examines-every-transaction bottleneck).\n");
  return 0;
}
