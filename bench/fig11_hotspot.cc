// Shifting-hotspot benchmark (not a paper figure — the adaptive-CC
// ablation): most traffic hits a small moving window of keys, so a
// handful of physical partitions carry the load and the hot set changes
// mid-run. Compares Bohm with a static partition -> CC-thread map against
// Bohm with adaptive repartitioning (plus 2PL as the
// partitioning-oblivious reference). The JSON rows carry cc_migrations,
// cc_imbalance and cc_stall_us so the win is attributable: static Bohm
// shows a high imbalance gauge and execution stalled on the hot CC
// thread's watermark; adaptive shows migrations > 0 and the gauge pulled
// back toward 1.0.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "common/env.h"
#include "workload/hotspot.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

TxnSourceMaker HotspotSource(const HotspotConfig& cfg) {
  return [cfg](uint32_t tid) -> TxnSource {
    auto gen = std::make_shared<HotspotGenerator>(cfg, 0x407000 + tid);
    return [gen]() { return gen->Make(); };
  };
}

BenchResult HotspotExecutorPoint(EngineKind kind, const HotspotConfig& cfg,
                                 uint32_t threads, const DriverOptions& opt) {
  auto engine = MakeExecutorEngine(kind, YcsbCatalog(cfg.Ycsb()), threads);
  (void)YcsbLoad(cfg.Ycsb(), [&](TableId t, Key k, const void* p) {
    return engine->Load(t, k, p);
  });
  return RunExecutorBench(*engine, HotspotSource(cfg), opt);
}

BenchResult HotspotBohmPoint(const HotspotConfig& cfg, uint32_t threads,
                             const DriverOptions& opt, bool adaptive) {
  BohmConfig bcfg = BohmSplit(threads);
  bcfg.adaptive.enabled = adaptive;
  bcfg.adaptive.max_imbalance =
      EnvInt64("BOHM_BENCH_MAX_IMB_X100", 125) / 100.0;
  bcfg.adaptive.interval_batches =
      static_cast<uint32_t>(EnvInt64("BOHM_BENCH_CC_INTERVAL", 8));
  BohmEngine engine(YcsbCatalog(cfg.Ycsb()), bcfg);
  (void)YcsbLoad(cfg.Ycsb(), [&](TableId t, Key k, const void* p) {
    return engine.Load(t, k, p);
  });
  (void)engine.Start();
  // Generating an 8-RMW hotspot transaction is not free; two feeders can
  // become the bottleneck before the CC stage does at higher thread
  // counts, which would mask the effect this bench measures.
  const uint32_t clients = threads / 2 < 2 ? 2 : threads / 2;
  BenchResult r = RunBohmBench(engine, HotspotSource(cfg), clients, opt);
  engine.Stop();
  return r;
}

}  // namespace

int main() {
  const DriverOptions opt = BenchDriverOptions();
  const HotspotConfig base = [] {
    HotspotConfig cfg;
    cfg.record_count = BenchRecords(100'000);
    // Smaller records than YCSB's 1000 bytes: this bench measures the CC
    // stage, and full-record copies would make execution the bottleneck,
    // masking any CC (im)balance.
    cfg.record_size =
        static_cast<uint32_t>(EnvInt64("BOHM_BENCH_RECORD_SIZE", 64));
    cfg.hot_keys =
        static_cast<uint64_t>(EnvInt64("BOHM_BENCH_HOT_KEYS", 16));
    cfg.shift_period = static_cast<uint64_t>(
        EnvInt64("BOHM_BENCH_SHIFT_PERIOD", 50'000));
    return cfg;
  }();

  JsonReport json("fig11_hotspot");
  Report report(
      "Shifting hotspot: " + std::to_string(base.hot_keys) +
          " hot keys, shift every " + std::to_string(base.shift_period) +
          " draws",
      {"threads", "2PL (txns/s)", "Bohm-static (txns/s)",
       "Bohm-adaptive (txns/s)", "migrations", "imbalance"});

  for (int threads : BenchThreads()) {
    const auto t = static_cast<uint32_t>(threads);
    auto params = [&](const char* variant) {
      return JsonReport::Params{
          {"threads", std::to_string(threads)},
          {"hot_keys", std::to_string(base.hot_keys)},
          {"shift_period", std::to_string(base.shift_period)},
          {"variant", variant}};
    };

    BenchResult twopl = HotspotExecutorPoint(EngineKind::k2PL, base, t, opt);
    json.AddPoint(params("2PL"), "2PL", twopl);

    BenchResult stat = HotspotBohmPoint(base, t, opt, /*adaptive=*/false);
    json.AddPoint(params("static"), "Bohm-static", stat);

    BenchResult adpt = HotspotBohmPoint(base, t, opt, /*adaptive=*/true);
    json.AddPoint(params("adaptive"), "Bohm-adaptive", adpt);

    report.AddRow({std::to_string(threads),
                   Report::FormatTput(twopl.Throughput()),
                   Report::FormatTput(stat.Throughput()),
                   Report::FormatTput(adpt.Throughput()),
                   std::to_string(adpt.cc_migrations),
                   Report::FormatDouble(
                       static_cast<double>(adpt.cc_imbalance_x1000) / 1000.0,
                       3)});
  }
  report.Print();
  json.Write();
  std::printf(
      "\nExpected shape: static Bohm bottlenecks on the CC threads owning "
      "the hot partitions (high cc_imbalance, exec stalled on their "
      "watermark); adaptive migrates the hot partitions between batches "
      "and closes the gap.\n");
  return 0;
}
