// Figure 5: YCSB 10RMW throughput vs. thread count, under high contention
// (theta = 0.9, top graph) and low contention (theta = 0, bottom graph).
// Paper shape: 2PL wins (multi-versioning pays version-creation cost with
// no concurrency benefit on a 100% RMW workload); Bohm beats Hekaton/SI
// under high contention because it never aborts.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

void RunContention(double theta, const char* label) {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = theta;
  const DriverOptions opt = BenchDriverOptions();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k10Rmw);
  };

  std::vector<std::string> cols = {"threads"};
  for (const System& s : AllSystems()) cols.push_back(s.label + " (txns/s)");
  Report report(std::string("Figure 5 (") + label +
                    "): YCSB 10RMW, theta=" + Report::FormatDouble(theta, 2),
                cols);

  for (int threads : BenchThreads()) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
              : YcsbExecutorPoint(s.kind, cfg,
                                  static_cast<uint32_t>(threads), fn, opt);
      row.push_back(Report::FormatTput(r.Throughput()));
    }
    report.AddRow(std::move(row));
  }
  report.Print();
}

}  // namespace

int main() {
  RunContention(0.9, "top: high contention");
  RunContention(0.0, "bottom: low contention");
  std::printf(
      "\nPaper shape: 2PL highest on this all-RMW workload; Bohm > Hekaton "
      "and SI under high contention (no aborts); multi-version systems pay "
      "1000-byte version creation on every update.\n");
  return 0;
}
