// Figure 5: YCSB 10RMW throughput vs. thread count, under high contention
// (theta = 0.9, top graph) and low contention (theta = 0, bottom graph).
// Paper shape: 2PL wins (multi-versioning pays version-creation cost with
// no concurrency benefit on a 100% RMW workload); Bohm beats Hekaton/SI
// under high contention because it never aborts.
//
// Beyond the paper's throughput axis, the table (and the JSON dump) also
// reports Bohm's end-to-end submit→commit-ack latency percentiles — the
// pipelined design trades batching delay for throughput, and the latency
// columns are what keep that trade honest.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

void RunContention(double theta, const char* label, const char* tag,
                   JsonReport& json) {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = theta;
  const DriverOptions opt = BenchDriverOptions();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k10Rmw);
  };

  std::vector<std::string> cols = {"threads"};
  for (const System& s : AllSystems()) cols.push_back(s.label + " (txns/s)");
  cols.push_back("Bohm p50(us)");
  cols.push_back("Bohm p99(us)");
  cols.push_back("Bohm p999(us)");
  Report report(std::string("Figure 5 (") + label +
                    "): YCSB 10RMW, theta=" + Report::FormatDouble(theta, 2),
                cols);

  for (int threads : BenchThreads()) {
    std::vector<std::string> row = {std::to_string(threads)};
    uint64_t bohm_p50 = 0, bohm_p99 = 0, bohm_p999 = 0;
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
              : YcsbExecutorPoint(s.kind, cfg,
                                  static_cast<uint32_t>(threads), fn, opt);
      row.push_back(Report::FormatTput(r.Throughput()));
      if (s.is_bohm) {
        bohm_p50 = r.P50Us();
        bohm_p99 = r.P99Us();
        bohm_p999 = r.P999Us();
      }
      json.AddPoint({{"contention", tag},
                     {"theta", Report::FormatDouble(theta, 2)},
                     {"threads", std::to_string(threads)}},
                    s.label, r);
    }
    row.push_back(std::to_string(bohm_p50));
    row.push_back(std::to_string(bohm_p99));
    row.push_back(std::to_string(bohm_p999));
    report.AddRow(std::move(row));
  }
  report.Print();
}

}  // namespace

int main() {
  JsonReport json("fig5_ycsb_10rmw");
  RunContention(0.9, "top: high contention", "high", json);
  RunContention(0.0, "bottom: low contention", "low", json);
  json.Write();
  std::printf(
      "\nPaper shape: 2PL highest on this all-RMW workload; Bohm > Hekaton "
      "and SI under high contention (no aborts); multi-version systems pay "
      "1000-byte version creation on every update.\n");
  return 0;
}
