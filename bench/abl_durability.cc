// Ablation: durability cost. The paper logs batches of transactions
// before execution (the sequenced input stream is the recovery log,
// Section 2.3) and argues the cost is small because logging is
// sequential, batched, and off the critical path. This sweep quantifies
// that claim on the high-contention 10RMW workload: no log at all, then
// asynchronous logging (fsync=none), then increasingly eager durability
// (group commit, fsync per batch), with the durable-ack gate on — so the
// fsync columns price "no acknowledged commit is ever lost".
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

struct Mode {
  const char* label;
  bool enabled;
  FsyncPolicy policy;
  uint32_t group_size;
};

std::string FreshLogDir(const char* label) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("bohm_abl_durability_") + label);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = 0.9;
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k10Rmw);
  };

  const Mode kModes[] = {
      {"nolog", false, FsyncPolicy::kNone, 0},
      {"fsync=none", true, FsyncPolicy::kNone, 0},
      {"fsync=group8", true, FsyncPolicy::kGroup, 8},
      {"fsync=batch", true, FsyncPolicy::kBatch, 0},
  };

  Report report(
      "Ablation: durable sequencer log (YCSB 10RMW, 1000B, theta=0.9)",
      {"mode", "throughput (txns/s)", "p99(us)", "log MB/s", "fsyncs/s",
       "log stall (ms)"});
  JsonReport json("abl_durability");

  for (const Mode& m : kModes) {
    BohmConfig bcfg = BohmSplit(static_cast<uint32_t>(threads));
    std::string dir;
    if (m.enabled) {
      dir = FreshLogDir(m.label);
      bcfg.durability.enabled = true;
      bcfg.durability.dir = dir;
      bcfg.durability.fsync_policy = m.policy;
      if (m.group_size != 0) bcfg.durability.group_size = m.group_size;
    }
    BenchResult r = YcsbBohmPoint(cfg, 0, fn, opt, &bcfg);
    report.AddRow(
        {m.label, Report::FormatTput(r.Throughput()),
         std::to_string(r.P99Us()),
         Report::FormatDouble(
             static_cast<double>(r.log_bytes) / (1e6 * r.seconds), 1),
         Report::FormatDouble(static_cast<double>(r.log_fsyncs) / r.seconds,
                              1),
         Report::FormatDouble(static_cast<double>(r.log_stall_ns) / 1e6,
                              1)});
    json.AddPoint(
        {{"mode", m.label}, {"threads", std::to_string(threads)}}, "Bohm",
        r);
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
  report.Print();
  json.Write();
  std::printf(
      "\nExpected: fsync=none within noise of nolog (the log writer rides "
      "a dedicated thread and the sequencer only pays an SPSC push); group "
      "commit costs a few percent; fsync-per-batch is bounded by the "
      "device's sync latency, which the stall column attributes.\n");
  return 0;
}
