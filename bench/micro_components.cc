// Component microbenchmarks (google-benchmark): the primitive costs the
// paper's arguments rest on — above all, the contended global timestamp
// counter (Section 2.1) versus Bohm's uncontended log append, and version
// chain traversal versus annotated reads (Section 3.2.3).
#include <benchmark/benchmark.h>

#include <atomic>

#include "bohm/table.h"
#include "bohm/version.h"
#include "common/arena.h"
#include "common/hash.h"
#include "common/queue.h"
#include "common/rand.h"
#include "common/zipf.h"
#include "twopl/lock_table.h"
#include "txn/rwset.h"

namespace bohm {
namespace {

// The pattern every conventional multi-version engine uses for timestamps:
// a single fetch-and-increment word shared by all threads. Run with
// ->Threads(N) to see the cache-line ping-pong the paper blames.
std::atomic<uint64_t> g_clock{0};
void BM_GlobalCounterFetchAdd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_clock.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GlobalCounterFetchAdd)->Threads(1)->Threads(2)->Threads(4);

// Bohm's timestamp assignment: a plain private increment on the
// sequencer thread.
void BM_SequencerLocalIncrement(benchmark::State& state) {
  uint64_t ts = 0;
  for (auto _ : state) {
    ++ts;
    benchmark::DoNotOptimize(ts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequencerLocalIncrement);

void BM_ZipfDraw(benchmark::State& state) {
  ZipfGenerator gen(1'000'000, static_cast<double>(state.range(0)) / 100.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfDraw)->Arg(0)->Arg(50)->Arg(90);

void BM_HashKey(benchmark::State& state) {
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(++k));
  }
}
BENCHMARK(BM_HashKey);

void BM_ArenaAllocate(benchmark::State& state) {
  Arena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.Allocate(64));
    if (arena.allocated_bytes() > (64u << 20)) arena.Reset();
  }
}
BENCHMARK(BM_ArenaAllocate);

// Version-chain traversal cost as chains grow (the cost the read-set
// annotation optimization removes, Section 4.2.3).
void BM_VersionChainTraversal(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  VersionAllocator alloc;
  Version* head = nullptr;
  for (int i = 0; i < depth; ++i) {
    Version* v = alloc.Alloc(0, 8);
    v->begin_ts = static_cast<uint64_t>(i + 10);
    v->prev = head;
    head = v;
  }
  for (auto _ : state) {
    // A reader with an old timestamp walks the full chain.
    Version* v = head;
    while (v != nullptr && v->begin_ts >= 5) v = v->prev;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_VersionChainTraversal)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_BohmIndexLookup(benchmark::State& state) {
  TableSpec spec;
  spec.id = 0;
  spec.record_size = 8;
  spec.capacity = 100'000;
  BohmTable table(spec, 1);
  VersionAllocator alloc;
  for (Key k = 0; k < 100'000; ++k) {
    bool inserted = false;
    (void)table.GetOrInsert(0, k, alloc.Alloc(0, spec.record_size),
                            &inserted);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(0, rng.Uniform(100'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BohmIndexLookup);

void BM_LockTableGetOrCreate(benchmark::State& state) {
  LockTable lt(100'000);
  for (Key k = 0; k < 100'000; ++k) lt.Preallocate(RecordId{0, k});
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lt.GetOrCreate(RecordId{0, rng.Uniform(100'000)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockTableGetOrCreate);

void BM_MpmcQueueRoundTrip(benchmark::State& state) {
  MpmcQueue<uint64_t> q(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    q.Push(v);
    uint64_t out;
    benchmark::DoNotOptimize(q.TryPop(&out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueueRoundTrip);

void BM_LockOrderComputation(benchmark::State& state) {
  ReadWriteSet set;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) set.AddRead(0, rng.Uniform(1'000'000));
  for (int i = 0; i < 2; ++i) set.AddRmw(0, rng.Uniform(1'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.LockOrder());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockOrderComputation);

}  // namespace
}  // namespace bohm

BENCHMARK_MAIN();
