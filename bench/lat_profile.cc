// Latency profile: per-transaction latency percentiles on the contended
// 2RMW-8R workload. The paper reports throughput only; latency
// percentiles expose the same phenomena from the other side — retries
// inflate the tail for the optimistic engines, lock waits inflate it for
// 2PL, and Bohm's tail is batching delay (submit→commit-ack through the
// sequencer/CC/execution pipeline) rather than contention.
//
// Apples-to-oranges caveat: the executor engines' numbers are on-thread
// Execute() latency; Bohm's are end-to-end from Submit() to commit
// publication, which includes queueing and batch formation.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(20'000);
  cfg.record_size = 1000;
  cfg.theta = 0.9;
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  };

  JsonReport json("lat_profile");
  // The stall columns attribute pipeline wait to the stage doing the
  // waiting (sequencer: slot-reuse back-pressure; CC: sealed-batch feed
  // dry; exec: feed dry or CC watermark behind) — only Bohm has a
  // pipeline, so the executor rows read 0.
  Report report("Latency profile: YCSB 2RMW-8R, theta=0.9, " +
                    std::to_string(threads) + " threads",
                {"system", "txns/s", "mean(us)", "p50(us)", "p99(us)",
                 "p999(us)", "max(us)", "seq_stall(ms)", "cc_stall(ms)",
                 "exec_stall(ms)"});
  for (const System& s : AllSystems()) {
    BenchResult r =
        s.is_bohm
            ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
            : YcsbExecutorPoint(s.kind, cfg, static_cast<uint32_t>(threads),
                                fn, opt);
    report.AddRow({s.is_bohm ? s.label + " (e2e)" : s.label,
                   Report::FormatTput(r.Throughput()),
                   Report::FormatDouble(r.latency_us.Mean(), 1),
                   std::to_string(r.P50Us()), std::to_string(r.P99Us()),
                   std::to_string(r.P999Us()),
                   std::to_string(r.latency_us.max()),
                   Report::FormatDouble(
                       static_cast<double>(r.seq_stall_ns) / 1e6, 1),
                   Report::FormatDouble(
                       static_cast<double>(r.cc_stall_ns) / 1e6, 1),
                   Report::FormatDouble(
                       static_cast<double>(r.exec_stall_ns) / 1e6, 1)});
    json.AddPoint({{"threads", std::to_string(threads)}}, s.label, r);
  }
  report.Print();
  json.Write();
  std::printf(
      "\nExpected: optimistic engines (OCC, Hekaton, SI) show retry-driven "
      "tails under contention; 2PL's tail comes from lock waits; Bohm's "
      "end-to-end numbers carry batch-formation delay but no "
      "contention-driven tail. The stall columns attribute Bohm's pipeline "
      "wait per stage (streamed epoch-watermark handoff, no barriers).\n");
  return 0;
}
