// Latency profile: per-transaction latency percentiles for the four
// executor baselines on the contended 2RMW-8R workload. The paper reports
// throughput only; latency percentiles expose the same phenomena from the
// other side — retries inflate the tail for the optimistic engines, lock
// waits inflate it for 2PL.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(20'000);
  cfg.record_size = 1000;
  cfg.theta = 0.9;
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  };

  Report report("Latency profile: YCSB 2RMW-8R, theta=0.9, " +
                    std::to_string(threads) + " threads",
                {"system", "txns/s", "mean(us)", "p50(us)", "p99(us)",
                 "max(us)"});
  for (const System& s : AllSystems()) {
    if (s.is_bohm) continue;  // Bohm's client latency is pipelined; see docs
    BenchResult r = YcsbExecutorPoint(s.kind, cfg,
                                      static_cast<uint32_t>(threads), fn, opt);
    report.AddRow({s.label, Report::FormatTput(r.Throughput()),
                   Report::FormatDouble(r.latency_us.Mean(), 1),
                   std::to_string(r.latency_us.Percentile(0.5)),
                   std::to_string(r.latency_us.Percentile(0.99)),
                   std::to_string(r.latency_us.max())});
  }
  report.Print();
  std::printf(
      "\nExpected: optimistic engines (OCC, Hekaton, SI) show retry-driven "
      "tails under contention; 2PL's tail comes from lock waits.\n");
  return 0;
}
