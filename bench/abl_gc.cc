// Ablation: Condition-3 garbage collection (Section 3.3.2). Hot-key
// updates create versions at the full transaction rate; with GC on,
// versions are recycled through thread-local free lists (bounded memory);
// with GC off, every version lives forever (the configuration the paper
// uses for its Hekaton/SI baselines). Reports throughput and version
// recycling volume.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(10'000);
  cfg.record_size = 1000;
  cfg.theta = 0.9;  // hot keys: maximal version churn
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k10Rmw);
  };

  Report report("Ablation: garbage collection (hot 10RMW, 1000B records)",
                {"gc", "throughput (txns/s)", "versions recycled"});
  for (bool gc : {true, false}) {
    BohmConfig bcfg = BohmSplit(static_cast<uint32_t>(threads));
    bcfg.gc_enabled = gc;

    BohmEngine engine(YcsbCatalog(cfg), bcfg);
    (void)YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
      return engine.Load(t, k, p);
    });
    (void)engine.Start();
    BenchResult r = RunBohmBench(engine, YcsbSource(cfg, fn), 2, opt);
    uint64_t freed = engine.gc_freed_versions();
    engine.Stop();

    report.AddRow({gc ? "on" : "off", Report::FormatTput(r.Throughput()),
                   std::to_string(freed)});
  }
  report.Print();
  std::printf(
      "\nExpected: GC recycles nearly every superseded version (bounded "
      "memory) at no throughput cost — typically a gain, since thread-local "
      "free-list reuse beats unbounded arena growth. The paper notes GC was "
      "a major cost for Hekaton; Bohm's Condition-3 scheme is nearly free.\n");
  return 0;
}
