// Ablation: commit dependencies (speculative reads of uncommitted data)
// in the Hekaton/SI baselines. The paper's implementations include this
// optimization and credit it for Hekaton/SI sustaining throughput at
// slightly higher thread counts than OCC under contention (Section
// 4.2.1). Without speculation, a reader skips Preparing versions and
// reads the older committed version instead, which under Hekaton
// validation turns into extra aborts.
#include <cstdio>

#include "bench/bench_common.h"
#include "mvocc/engine.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(10'000);
  cfg.record_size = 64;
  cfg.theta = 0.9;  // contention makes speculation matter
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();

  Report report(
      "Ablation: commit dependencies (YCSB 2RMW-8R, theta=0.9, " +
          std::to_string(threads) + " threads)",
      {"engine", "speculation", "throughput (txns/s)", "abort%"});

  for (MVOccMode mode :
       {MVOccMode::kHekaton, MVOccMode::kSnapshotIsolation}) {
    for (bool spec : {true, false}) {
      MVOccConfig mcfg;
      mcfg.mode = mode;
      mcfg.threads = static_cast<uint32_t>(threads);
      mcfg.commit_dependencies = spec;
      MVOccEngine engine(YcsbCatalog(cfg), mcfg);
      (void)YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
        return engine.Load(t, k, p);
      });
      BenchResult r = RunExecutorBench(
          engine,
          YcsbSource(cfg,
                     [](YcsbGenerator& gen) {
                       return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
                     }),
          opt);
      report.AddRow({engine.name(), spec ? "on" : "off",
                     Report::FormatTput(r.Throughput()),
                     Report::FormatDouble(100 * r.AbortRate(), 1)});
    }
  }
  report.Print();
  std::printf(
      "\nExpected: speculation reduces aborts under contention (reads of "
      "Preparing writers' versions commit together instead of failing "
      "validation).\n");
  return 0;
}
