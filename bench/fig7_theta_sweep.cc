// Figure 7: YCSB 2RMW-8R throughput at a fixed (maximal) thread count
// while sweeping the zipfian contention parameter theta from 0 to ~1.
// Paper shape: Hekaton and SI sit on top of each other across low/medium
// theta — both pinned by the global timestamp counter — and only diverge
// (downward) under high contention when aborts take over.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  std::vector<double> thetas = {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99};

  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  };

  JsonReport json("fig7_theta_sweep");
  std::vector<std::string> cols = {"theta"};
  for (const System& s : AllSystems()) cols.push_back(s.label + " (txns/s)");
  cols.push_back("Bohm p50(us)");
  cols.push_back("Bohm p99(us)");
  Report report("Figure 7: YCSB 2RMW-8R vs. contention (theta), " +
                    std::to_string(threads) + " threads",
                cols);

  for (double theta : thetas) {
    YcsbConfig cfg;
    cfg.record_count = BenchRecords(100'000);
    cfg.record_size = 1000;
    cfg.theta = theta;
    std::vector<std::string> row = {Report::FormatDouble(theta, 2)};
    uint64_t bohm_p50 = 0, bohm_p99 = 0;
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
              : YcsbExecutorPoint(s.kind, cfg,
                                  static_cast<uint32_t>(threads), fn, opt);
      row.push_back(Report::FormatTput(r.Throughput()));
      if (s.is_bohm) {
        bohm_p50 = r.P50Us();
        bohm_p99 = r.P99Us();
      }
      json.AddPoint({{"theta", Report::FormatDouble(theta, 2)},
                     {"threads", std::to_string(threads)}},
                    s.label, r);
    }
    row.push_back(std::to_string(bohm_p50));
    row.push_back(std::to_string(bohm_p99));
    report.AddRow(std::move(row));
  }
  report.Print();
  json.Write();
  std::printf(
      "\nPaper shape: Hekaton and SI nearly identical until high theta "
      "(timestamp-counter bound), then drop as aborts dominate; Bohm "
      "degrades gracefully.\n");
  return 0;
}
