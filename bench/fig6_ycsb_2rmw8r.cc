// Figure 6: YCSB 2RMW-8R throughput vs. thread count, high contention
// (theta = 0.9, top) and low contention (theta = 0, bottom).
// Paper shape: under high contention the multi-versioned systems win and
// Bohm beats even SI (SI wastes work on ww-conflict aborts); under low
// contention OCC wins narrowly while Hekaton/SI flatten on their global
// timestamp counter.
#include <cstdio>

#include "bench/bench_common.h"

using namespace bohm;
using namespace bohm::bench;

namespace {

void RunContention(double theta, const char* label, const char* tag,
                   JsonReport& json) {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 1000;
  cfg.theta = theta;
  const DriverOptions opt = BenchDriverOptions();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k2Rmw8R);
  };

  std::vector<std::string> cols = {"threads"};
  for (const System& s : AllSystems()) {
    cols.push_back(s.label + " (txns/s)");
    cols.push_back(s.label + " abort%");
  }
  Report report(std::string("Figure 6 (") + label +
                    "): YCSB 2RMW-8R, theta=" + Report::FormatDouble(theta, 2),
                cols);

  for (int threads : BenchThreads()) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const System& s : AllSystems()) {
      BenchResult r =
          s.is_bohm
              ? YcsbBohmPoint(cfg, static_cast<uint32_t>(threads), fn, opt)
              : YcsbExecutorPoint(s.kind, cfg,
                                  static_cast<uint32_t>(threads), fn, opt);
      row.push_back(Report::FormatTput(r.Throughput()));
      row.push_back(Report::FormatDouble(100.0 * r.AbortRate(), 1));
      json.AddPoint({{"contention", tag},
                     {"theta", Report::FormatDouble(theta, 2)},
                     {"threads", std::to_string(threads)}},
                    s.label, r);
    }
    report.AddRow(std::move(row));
  }
  report.Print();
}

}  // namespace

int main() {
  JsonReport json("fig6_ycsb_2rmw8r");
  RunContention(0.9, "top: high contention", "high", json);
  RunContention(0.0, "bottom: low contention", "low", json);
  json.Write();
  std::printf(
      "\nPaper shape: high contention — multi-version systems beat "
      "single-version; Bohm > SI (no ww-abort waste) > Hekaton. Low "
      "contention — OCC best, Bohm close behind.\n");
  return 0;
}
