// Shared plumbing for the figure/table benchmarks: construct + load an
// engine, run one measurement point, tear it down. Every point uses a
// fresh engine instance so no state leaks across points (the paper's
// baselines accumulate versions without GC — a fresh engine per point
// also bounds memory).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bohm/engine.h"
#include "harness/driver.h"
#include "harness/engines.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "workload/smallbank.h"
#include "workload/ycsb.h"

namespace bohm {
namespace bench {

/// Produces one transaction from a per-thread YCSB generator.
using YcsbTxnFn = std::function<ProcedurePtr(YcsbGenerator&)>;

inline TxnSourceMaker YcsbSource(const YcsbConfig& cfg, YcsbTxnFn fn) {
  return [cfg, fn](uint32_t tid) -> TxnSource {
    auto gen = std::make_shared<YcsbGenerator>(cfg, 0x9000 + tid);
    return [gen, fn]() { return fn(*gen); };
  };
}

inline TxnSourceMaker SmallBankSource(const SmallBankConfig& cfg) {
  return [cfg](uint32_t tid) -> TxnSource {
    auto gen = std::make_shared<SmallBankGenerator>(cfg, 0x5b000 + tid);
    return [gen]() { return gen->Make(); };
  };
}

/// One measurement point on a baseline engine.
inline BenchResult YcsbExecutorPoint(EngineKind kind, const YcsbConfig& cfg,
                                     uint32_t threads, const YcsbTxnFn& fn,
                                     const DriverOptions& opt) {
  auto engine = MakeExecutorEngine(kind, YcsbCatalog(cfg), threads);
  (void)YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
    return engine->Load(t, k, p);
  });
  return RunExecutorBench(*engine, YcsbSource(cfg, fn), opt);
}

/// One measurement point on Bohm with `total_threads` split between the
/// CC and execution stages.
inline BenchResult YcsbBohmPoint(const YcsbConfig& cfg,
                                 uint32_t total_threads, const YcsbTxnFn& fn,
                                 const DriverOptions& opt,
                                 BohmConfig* override_cfg = nullptr) {
  BohmConfig bcfg =
      override_cfg != nullptr ? *override_cfg : BohmSplit(total_threads);
  BohmEngine engine(YcsbCatalog(cfg), bcfg);
  (void)YcsbLoad(cfg, [&](TableId t, Key k, const void* p) {
    return engine.Load(t, k, p);
  });
  (void)engine.Start();
  BenchResult r = RunBohmBench(engine, YcsbSource(cfg, fn),
                               /*client_threads=*/2, opt);
  engine.Stop();
  return r;
}

inline BenchResult SmallBankExecutorPoint(EngineKind kind,
                                          const SmallBankConfig& cfg,
                                          uint32_t threads,
                                          const DriverOptions& opt) {
  auto engine = MakeExecutorEngine(kind, SmallBankCatalog(cfg), threads);
  (void)SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
    return engine->Load(t, k, p);
  });
  return RunExecutorBench(*engine, SmallBankSource(cfg), opt);
}

inline BenchResult SmallBankBohmPoint(const SmallBankConfig& cfg,
                                      uint32_t total_threads,
                                      const DriverOptions& opt) {
  BohmEngine engine(SmallBankCatalog(cfg), BohmSplit(total_threads));
  (void)SmallBankLoad(cfg, [&](TableId t, Key k, const void* p) {
    return engine.Load(t, k, p);
  });
  (void)engine.Start();
  BenchResult r =
      RunBohmBench(engine, SmallBankSource(cfg), /*client_threads=*/2, opt);
  engine.Stop();
  return r;
}

/// The five systems in the paper's plotting order.
struct System {
  std::string label;
  bool is_bohm;
  EngineKind kind;  // valid when !is_bohm
};

inline std::vector<System> AllSystems() {
  return {{"2PL", false, EngineKind::k2PL},
          {"Bohm", true, EngineKind::k2PL},
          {"OCC", false, EngineKind::kOCC},
          {"SI", false, EngineKind::kSI},
          {"Hekaton", false, EngineKind::kHekaton}};
}

}  // namespace bench
}  // namespace bohm
