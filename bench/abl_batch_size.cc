// Ablation: batch size (Section 3.2.4). Bohm amortizes one CC barrier per
// batch; tiny batches re-introduce per-transaction coordination, huge
// batches add latency but little throughput. Sweep batch size on the
// 10RMW microbenchmark.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/env.h"

using namespace bohm;
using namespace bohm::bench;

int main() {
  YcsbConfig cfg;
  cfg.record_count = BenchRecords(100'000);
  cfg.record_size = 8;
  cfg.theta = 0.0;
  const DriverOptions opt = BenchDriverOptions();
  const int threads = BenchThreads().back();
  auto fn = [](YcsbGenerator& gen) {
    return gen.Make(YcsbGenerator::TxnType::k10Rmw);
  };

  Report report("Ablation: Bohm batch size (10RMW, 8B records, uniform)",
                {"batch_size", "throughput (txns/s)"});
  for (int batch : {1, 4, 16, 64, 256, 1024, 4096}) {
    BohmConfig bcfg = BohmSplit(static_cast<uint32_t>(threads));
    bcfg.batch_size = static_cast<uint32_t>(batch);
    BenchResult r = YcsbBohmPoint(cfg, 0, fn, opt, &bcfg);
    report.AddRow(
        {std::to_string(batch), Report::FormatTput(r.Throughput())});
  }
  report.Print();
  std::printf(
      "\nExpected: throughput climbs steeply away from batch=1 (barrier "
      "per transaction) and saturates once the barrier cost is amortized.\n");
  return 0;
}
